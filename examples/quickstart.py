#!/usr/bin/env python3
"""Quickstart: parse dependencies, check termination criteria, run the chase.

This walks through the paper's running example (Σ1 of Example 1):

* the dependency set mixes TGDs and EGDs;
* every classical criterion fails on it, because none analyses the EGD;
* the paper's semi-stratification and semi-acyclicity accept it;
* and indeed a terminating chase sequence exists — the ``full_first``
  strategy finds the universal model {N(a), E(a, a)}.

Run:  python examples/quickstart.py
"""

from repro import classify, parse_dependencies, parse_facts, run_chase
from repro.chase import explore_chase

SIGMA = """
r1: N(x) -> exists y. E(x, y)
r2: E(x, y) -> N(y)
r3: E(x, y) -> x = y
"""


def main() -> None:
    sigma = parse_dependencies(SIGMA)
    print("dependencies (Σ1 of Example 1):")
    print(f"{sigma}\n")

    # 1. Which termination criteria recognise Σ1?
    report = classify(sigma)
    print(report)
    print()

    # 2. The chase itself: the strategy decides termination.
    db = parse_facts('N("a")')
    good = run_chase(db, sigma, strategy="full_first", max_steps=100)
    print(f"full_first strategy:         {good.status.value}, "
          f"result = {good.instance}")

    bad = run_chase(db, sigma, strategy="existential_first", max_steps=100)
    print(f"existential_first strategy:  {bad.status.value} "
          f"(the alternating r1/r2 sequence of Example 1 never ends)")

    # 3. Exhaustive exploration of the nondeterminism confirms both facts.
    exploration = explore_chase(db, sigma, max_depth=8, max_states=5_000)
    print(f"\nexploring every chase sequence up to depth 8: "
          f"{exploration.verdict.value}")
    print(f"  terminating leaves: {exploration.terminating_paths}, "
          f"cut-off paths: {exploration.capped_paths}")


if __name__ == "__main__":
    main()
