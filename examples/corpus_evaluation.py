#!/usr/bin/env python3
"""Mini corpus evaluation: the Table 2 pipeline on a small sample.

Generates a down-scaled slice of the synthetic ontology corpus (same class
structure as the paper's 178 ontologies), runs Adn∃ and the bounded chase
on each, and prints the per-class summary — a miniature of the paper's
Section 7 evaluation.  The full run lives in
``benchmarks/test_bench_table2.py``.

Run:  python examples/corpus_evaluation.py
"""

from repro.analysis.evaluation import evaluate_ontology, render_table2, summarise
from repro.generators import generate_corpus


def main() -> None:
    corpus = generate_corpus(scale=0.03, tests_scale=0.12, max_size=25)
    print(f"generated {len(corpus)} ontologies "
          f"(classes: {sorted({o.class_name for o in corpus})})\n")

    evaluations = []
    for ont in corpus:
        ev = evaluate_ontology(ont, chase_steps=800)
        evaluations.append(ev)
        verdict = "SAC✓" if ev.semi_acyclic else "SAC✗"
        chase = "halted" if ev.chase_halted else "no halt"
        print(f"  {ont.name:<24} {ont.character:<17} |Σ|={ev.size:>3} "
              f"|Σµ|/|Σ|={ev.ratio:4.1f}  {verdict}  chase: {chase}")

    print()
    print(render_table2(summarise(evaluations)))


if __name__ == "__main__":
    main()
