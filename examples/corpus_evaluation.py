#!/usr/bin/env python3
"""Mini corpus evaluation: the Table 2 pipeline on a small sample.

Generates a down-scaled slice of the synthetic ontology corpus (same class
structure as the paper's 178 ontologies) and runs it through the batch
evaluation engine (``repro.batch``) — twice, against one cache directory,
to show the content-addressed reuse that makes repeated corpus-scale runs
cheap: the cold run evaluates every ontology (Adn∃ + bounded chase), the
warm run evaluates none.  The per-class summary is the miniature of the
paper's Section 7 evaluation; the full run lives in
``benchmarks/test_bench_table2.py``.

Run:  python examples/corpus_evaluation.py
"""

import tempfile
import time

from repro.analysis.evaluation import render_table2, summarise
from repro.batch import BatchConfig, evaluate_corpus
from repro.generators import generate_corpus


def main() -> None:
    corpus = generate_corpus(scale=0.03, tests_scale=0.12, max_size=25)
    print(f"generated {len(corpus)} ontologies "
          f"(classes: {sorted({o.class_name for o in corpus})})\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        config = BatchConfig(cache_dir=cache_dir, chase_steps=800)

        start = time.perf_counter()
        cold = evaluate_corpus(corpus, config)
        cold_s = time.perf_counter() - start

        for ev in cold.evaluations():
            verdict = "SAC✓" if ev.semi_acyclic else "SAC✗"
            chase = "halted" if ev.chase_halted else "no halt"
            print(f"  {ev.name:<24} {ev.character:<17} |Σ|={ev.size:>3} "
                  f"|Σµ|/|Σ|={ev.ratio:4.1f}  {verdict}  chase: {chase}")

        print()
        print(render_table2(summarise(cold.evaluations())))

        start = time.perf_counter()
        warm = evaluate_corpus(corpus, config)
        warm_s = time.perf_counter() - start

        print()
        print(f"cold run: {cold.computed} evaluated in {cold_s:.2f}s; "
              f"warm run: {warm.computed} evaluated in {warm_s:.2f}s "
              f"(hit rate {warm.hit_rate:.0%})")
        assert warm.computed == 0, "warm run must be served from the cache"


if __name__ == "__main__":
    main()
