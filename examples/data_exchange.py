#!/usr/bin/env python3
"""Data exchange: computing a universal solution with the chase.

The scenario is the classic source-to-target exchange (Fagin et al., the
setting the chase termination literature grew out of): a source schema
``Emp``/``Mgr`` is mapped to a target schema with existential TGDs, target
constraints include an EGD (a functional dependency on departments), and
the question is whether the chase can materialise a universal solution.

Because the mapping's target constraints include EGDs interacting with
existential TGDs, weak acyclicity & friends cannot certify termination;
the paper's SAC can — and the chase produces a universal solution, which
we verify by checking homomorphisms into alternative solutions.

Run:  python examples/data_exchange.py
"""

from repro import (
    classify,
    core_chase,
    parse_dependencies,
    parse_facts,
    run_chase,
)
from repro.homomorphism import instance_maps_into, is_model

# Source-to-target TGDs + target constraints.  Emp(name, dept),
# Mgr(dept, boss); the target has Works(name, dept), Dept(dept, boss).
MAPPING = """
m1: Emp(n, d) -> Works(n, d)
m2: Emp(n, d) -> exists b. Dept(d, b)
m3: Mgr(d, b) -> Dept(d, b)
t1: Dept(d, b) & Dept(d, c) -> b = c
t2: Works(n, d) -> exists b. Dept(d, b)
"""

SOURCE = """
Emp("ann", "cs")  Emp("bob", "cs")  Emp("eve", "math")
Mgr("cs", "carol")
"""


def main() -> None:
    sigma = parse_dependencies(MAPPING)
    source = parse_facts(SOURCE)

    print("schema mapping:")
    print(f"{sigma}\n")
    report = classify(sigma, criteria=["WA", "SC", "S-Str", "SAC"])
    print(report)
    print()

    # Chase the source instance to a universal solution.
    result = run_chase(source, sigma, strategy="full_first", max_steps=1_000)
    print(f"standard chase: {result.status.value} after {result.step_count} steps")
    solution = result.instance
    print("universal solution:")
    for fact in sorted(solution, key=str):
        print(f"  {fact}")

    # The EGD merged the null introduced by m2 with the known boss "carol"
    # for the cs department; math keeps a labelled null.
    assert is_model(solution, source, sigma)

    # Universality check: the core chase produces the canonical universal
    # solution; ours must map homomorphically into it and vice versa.
    canonical = core_chase(source, sigma, max_rounds=20)
    assert canonical.successful
    fwd = instance_maps_into(solution, canonical.instance)
    bwd = instance_maps_into(canonical.instance, solution)
    print(f"\nhomomorphically equivalent to the core-chase solution: "
          f"{fwd is not None and bwd is not None}")

    # Certain answers to "which departments have a boss?" are read off the
    # null-free part of the universal solution.
    bosses = sorted(
        str(f.args[0]) for f in solution.with_predicate("Dept") if not f.nulls()
    )
    print(f"departments with a certain boss: {bosses}")


if __name__ == "__main__":
    main()
