#!/usr/bin/env python3
"""Ontological query answering: certain answers via a universal model.

An existential-rules ontology (the dependency dialect of description
logics) describes a small university domain with an EGD stating that
supervision is functional.  Certain answers to a conjunctive query are
computed by chasing the ABox into a universal model and evaluating the
query on it, keeping only null-free answers (Section 2 of the paper).

The interplay here is the paper's motivation in miniature: the
supervision axioms are cyclic (every PhD student has a supervisor, who is
a researcher, who may supervise...), so TGD-only criteria reject the
ontology — but the functionality EGD plus the base facts close the loop,
and a terminating chase sequence exists.

Run:  python examples/ontology_reasoning.py
"""

from repro import classify, parse_dependencies, parse_facts, run_chase
from repro.model import Atom, Variable
from repro.query import ConjunctiveQuery

ONTOLOGY = """
a1: PhD(x) -> exists y. SupervisedBy(x, y)
a2: SupervisedBy(x, y) -> Researcher(y)
a3: Researcher(x) -> Member(x)
a4: PhD(x) -> Member(x)
a5: SupervisedBy(x, y) & SupervisedBy(x, z) -> y = z
a6: SupervisedBy(x, y) -> Advises(y, x)
"""

ABOX = """
PhD("dana")  PhD("lee")
SupervisedBy("dana", "prof_g")
Researcher("prof_g")
"""


def certain_answers(instance, query_atoms, answer_vars):
    """Evaluate a conjunctive query, keep null-free answers (Q(I)↓)."""
    q = ConjunctiveQuery.make(query_atoms, answer_vars)
    return sorted(q.evaluate_null_free(instance), key=str)


def main() -> None:
    sigma = parse_dependencies(ONTOLOGY)
    abox = parse_facts(ABOX)

    print("ontology:")
    print(f"{sigma}\n")
    print(classify(sigma, criteria=["WA", "SwA", "MFA", "S-Str", "SAC"]))
    print()

    result = run_chase(abox, sigma, strategy="full_first", max_steps=500)
    print(f"chase: {result.status.value} after {result.step_count} steps, "
          f"{len(result.instance)} facts")
    model = result.instance

    # Q1(x) :- Member(x)
    x, y = Variable("qx"), Variable("qy")
    q1 = [Atom("Member", (x,))]
    print("\ncertain members:")
    for (t,) in certain_answers(model, q1, [x]):
        print(f"  {t}")

    # Q2(x, y) :- SupervisedBy(x, y)  — dana's supervisor is certain (the
    # EGD merged the invented null with prof_g); lee's supervisor is a
    # labelled null, hence not a certain answer.
    q2 = [Atom("SupervisedBy", (x, y))]
    print("\ncertain supervision pairs:")
    for row in certain_answers(model, q2, [x, y]):
        print(f"  {row[0]} -> {row[1]}")

    # Q3(y) :- Advises(y, x), PhD(x) — who certainly advises a PhD student?
    q3 = [Atom("Advises", (y, x)), Atom("PhD", (x,))]
    print("\ncertain advisors of PhD students:")
    for (t,) in certain_answers(model, q3, [y]):
        print(f"  {t}")


if __name__ == "__main__":
    main()
