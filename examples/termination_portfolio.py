#!/usr/bin/env python3
"""The criterion landscape on every dependency set from the paper.

Reproduces, as a matrix, the expressivity story told across the paper:

* Σ1 / Σ11 — only the paper's S-Str and SAC apply (Theorem 5, Theorem 9);
* Σ8        — recognised by stratification-family criteria directly, but by
              *no* TGD-only criterion through the substitution-free
              simulation (Theorem 2's incompleteness);
* Σ10       — nothing applies, and indeed no chase sequence terminates;
* Σ3 / Σ6   — easy sets every criterion accepts.

Also demonstrates the Adn∃-C combination (Theorem 11): criteria that fail
on Σ directly can succeed on the adorned set Adn∃(Σ)[1], and the shared
analysis substrate (DESIGN.md §6): every portfolio run computes each
artifact — affected positions, chase/firing graphs, firing-edge
decisions, adornment rewritings — once per program and shares it across
the criteria; the stats after the matrix show how much rebuild work that
saves.

Run:  python examples/termination_portfolio.py
"""

from repro import classify
from repro.core import AdnCombined
from repro.data import all_paper_sets

CRITERIA = [
    "WA", "SC", "SwA", "AC", "LS", "MSA", "MFA",
    "CStr", "SR", "IR", "Str", "S-Str", "SAC",
]


def main() -> None:
    sets = all_paper_sets()
    header = f"{'set':<10}" + "".join(f"{c:>7}" for c in CRITERIA)
    print(header)
    print("-" * len(header))
    artifact_hits = artifact_misses = decision_hits = decision_misses = 0
    for name, sigma in sets.items():
        report = classify(sigma, criteria=CRITERIA)
        row = f"{name:<10}"
        for c in CRITERIA:
            row += f"{'✓' if report.results[c].accepted else '·':>7}"
        print(row)
        ctx = report.details["context"]
        artifact_hits += ctx["artifacts"]["hits"]
        artifact_misses += ctx["artifacts"]["misses"]
        decision_hits += ctx["decisions"]["hits"]
        decision_misses += ctx["decisions"]["misses"]

    built = artifact_hits + artifact_misses
    probed = decision_hits + decision_misses
    print(
        f"\nshared-context stats across {len(sets)} programs: "
        f"{artifact_misses} artifacts built, {artifact_hits} reused "
        f"(hit rate {artifact_hits / built:.0%}); "
        f"{decision_misses} firing edges probed, {decision_hits} reused "
        f"(hit rate {decision_hits / probed:.0%})"
    )

    print("\nAdn∃-C combination (Theorem 11: C ⊊ Adn∃-C):")
    sigma1 = sets["sigma_1"]
    for inner in ["WA", "SC"]:
        direct = classify(sigma1, criteria=[inner]).results[inner].accepted
        combined = AdnCombined(inner).check(sigma1)
        print(
            f"  Σ1: {inner} directly: {direct};  "
            f"Adn∃-{inner}: {combined.accepted} "
            f"(adorned set has {combined.details['size_adorned']} dependencies)"
        )


if __name__ == "__main__":
    main()
