"""repro — reproduction of "Exploiting Equality Generating Dependencies in
Checking Chase Termination" (Calautti, Greco, Molinaro, Trubitsyna;
PVLDB 9(5), 2016).

The package provides, from scratch:

* a relational model with TGDs/EGDs and a textual dependency syntax;
* standard / oblivious / semi-oblivious / core chase engines and a
  bounded exhaustive chase-sequence explorer;
* the firing relations ``≺`` and ``<`` with the chase graph and firing
  graph (Figure 1);
* the termination criteria landscape: WA, SC, SwA, Str, CStr, AC, MFA,
  MSA, plus EGD→TGD simulations for the TGD-only criteria;
* the paper's contributions — semi-stratification (S-Str), the Adn∃
  adornment algorithm, semi-acyclicity (SAC) and the Adn∃-C combination;
* a synthetic ontology corpus and benches regenerating every table and
  figure of the paper's evaluation;
* a corpus-scale batch engine (:mod:`repro.batch`): process-pool
  sharding plus a content-addressed on-disk result cache, so re-running
  a corpus only evaluates new or changed programs.

Quickstart::

    from repro import parse_dependencies, classify, run_chase, parse_facts

    sigma = parse_dependencies('''
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> x = y
    ''')
    print(classify(sigma))
    result = run_chase(parse_facts('N("a")'), sigma, strategy="full_first")
    print(result.instance)
"""

from .analysis import (
    AnalysisContext,
    ClassificationReport,
    ClassifyConfig,
    classify,
)
from .batch import (
    BatchConfig,
    BatchReport,
    canonical_fingerprint,
    evaluate_corpus,
)
from .budget import Budget, BudgetExhausted, Cancellation, budget_scope
from .chase import (
    ChaseResult,
    ChaseStatus,
    core_chase,
    explore_chase,
    run_chase,
)
from .core import (
    AdnCombined,
    AdnResult,
    SemiAcyclicity,
    SemiStratification,
    adn_exists,
    is_semi_acyclic,
    is_semi_stratified,
)
from .criteria import (
    CriterionResult,
    Guarantee,
    TerminationCriterion,
    get_criterion,
    registry,
)
from .firing import FiringOracle, chase_graph, firing_graph
from .homomorphism import core, find_homomorphism, satisfies_all
from .model import (
    EGD,
    TGD,
    Atom,
    Constant,
    DependencySet,
    Instance,
    Null,
    Variable,
    database,
    parse_dependencies,
    parse_dependency,
    parse_facts,
)
from .simulation import natural_simulation, substitution_free_simulation

__version__ = "1.0.0"

__all__ = [
    "BatchConfig",
    "BatchReport",
    "canonical_fingerprint",
    "evaluate_corpus",
    "Budget",
    "BudgetExhausted",
    "Cancellation",
    "budget_scope",
    "AnalysisContext",
    "ClassificationReport",
    "ClassifyConfig",
    "classify",
    "ChaseResult",
    "ChaseStatus",
    "core_chase",
    "explore_chase",
    "run_chase",
    "AdnCombined",
    "AdnResult",
    "SemiAcyclicity",
    "SemiStratification",
    "adn_exists",
    "is_semi_acyclic",
    "is_semi_stratified",
    "CriterionResult",
    "Guarantee",
    "TerminationCriterion",
    "get_criterion",
    "registry",
    "FiringOracle",
    "chase_graph",
    "firing_graph",
    "core",
    "find_homomorphism",
    "satisfies_all",
    "EGD",
    "TGD",
    "Atom",
    "Constant",
    "DependencySet",
    "Instance",
    "Null",
    "Variable",
    "database",
    "parse_dependencies",
    "parse_dependency",
    "parse_facts",
    "natural_simulation",
    "substitution_free_simulation",
    "__version__",
]
