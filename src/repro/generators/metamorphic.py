"""Metamorphic transformations of dependency sets.

A *metamorphic relation* is a transformation of the input under which the
output is known to be invariant — here: termination verdicts do not care
what predicates or variables are called, nor in which order the
dependencies of Σ are listed.  These three transformations generate the
isomorphism class over which the batch engine's canonical fingerprint
(:mod:`repro.batch.fingerprint`) must not distinguish programs; the
metamorphic suite (``tests/test_metamorphic.py``) checks both directions:

* **verdict invariance** — every criterion decides a transformed program
  exactly as it decides the original (the soundness assumption behind
  serving a cached verdict to a renamed twin);
* **fingerprint invariance** — the transformed program hits the same
  cache entry.

All transformations are seeded and deterministic: a given ``rng`` state
produces the same renaming every time.
"""

from __future__ import annotations

import random

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.terms import Term, Variable


def rename_predicates(
    sigma: DependencySet, rng: random.Random, prefix: str = "MP"
) -> DependencySet:
    """A schema-wide random bijective renaming of the predicates.

    Fresh names never collide with existing ones (the prefix is suffixed
    with a distinguishing counter drawn from the permutation), so the
    result is isomorphic to Σ, never a quotient of it.
    """
    preds = sorted(sigma.predicates())
    existing = set(preds)
    while any(f"{prefix}{i}" in existing for i in range(len(preds))):
        prefix += "_"
    perm = list(range(len(preds)))
    rng.shuffle(perm)
    mapping = {p: f"{prefix}{perm[i]}" for i, p in enumerate(preds)}

    def ren(atom: Atom) -> Atom:
        return Atom(mapping[atom.predicate], atom.args)

    out = DependencySet()
    for dep in sigma:
        if isinstance(dep, TGD):
            out.add(
                TGD(
                    [ren(a) for a in dep.body],
                    [ren(a) for a in dep.head],
                    existential=dep.existential,
                    label=dep.label,
                )
            )
        else:
            out.add(EGD([ren(a) for a in dep.body], dep.lhs, dep.rhs, label=dep.label))
    return out


def rename_variables(sigma: DependencySet, rng: random.Random) -> DependencySet:
    """A per-dependency random bijective renaming of the variables.

    Variables are quantified per dependency, so each dependency gets its
    own permutation — a stronger transformation than one global renaming.
    """
    out = DependencySet()
    for dep in sigma:
        names = sorted(v.name for v in dep.variables())
        perm = list(range(len(names)))
        rng.shuffle(perm)
        mapping: dict[Term, Term] = {
            Variable(n): Variable(f"mv{perm[i]}") for i, n in enumerate(names)
        }
        if isinstance(dep, TGD):
            out.add(
                TGD(
                    [a.apply(mapping) for a in dep.body],
                    [a.apply(mapping) for a in dep.head],
                    existential=[mapping[v] for v in dep.existential],  # type: ignore[misc]
                    label=dep.label,
                )
            )
        else:
            out.add(
                EGD(
                    [a.apply(mapping) for a in dep.body],
                    mapping[dep.lhs],  # type: ignore[arg-type]
                    mapping[dep.rhs],  # type: ignore[arg-type]
                    label=dep.label,
                )
            )
    return out


def reorder_dependencies(
    sigma: DependencySet, rng: random.Random
) -> DependencySet:
    """A random permutation of the listing order of Σ."""
    deps: list[AnyDependency] = list(sigma)
    rng.shuffle(deps)
    return DependencySet(deps)


#: The full metamorphic family, composable in any order.
TRANSFORMS = (rename_predicates, rename_variables, reorder_dependencies)


def random_isomorph(
    sigma: DependencySet, seed: int
) -> DependencySet:
    """All three transformations composed under one seed."""
    rng = random.Random(seed)
    out = sigma
    for t in TRANSFORMS:
        out = t(out, rng)
    return out
