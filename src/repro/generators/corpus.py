"""Synthetic ontology corpus mirroring Table 2(a) of the paper.

The paper evaluates on 178 real ontologies (Gardiner corpus, LUBM,
Phenoscape, OBO) translated to dependencies and partitioned into eight
classes by (|Σ∃|, |Σegd|).  Those artefacts are not available offline, so
this module generates a *seeded synthetic corpus* with the same class
structure: identical per-class test counts and matched average |Σ| (both
scalable), using the dependency motifs ontology translations produce —
concept hierarchies, role domain/range, inverse and transitive roles,
existential role successors, functional roles and keys as EGDs.

Each ontology's termination character is controlled by its *cycle motifs*:

* ``acyclic``         — existential successors only point down a concept
  DAG: every chase sequence terminates, all criteria should accept;
* ``egd_rescued``     — a Σ1-style cycle closed by a reflexivising EGD:
  only some sequences terminate (∈ CTstd∃ \\ CTstd∀); the paper's
  contributions are exactly the criteria that can accept these;
* ``unguarded``       — an existential cycle with no EGD: no terminating
  sequence, nothing should accept;
* ``functional_guard``— a cycle "guarded" by a functional-role EGD: the
  chase diverges on databases without matching role edges, yet the
  adornment algorithm's ``Dµ`` analysis merges the free symbol anyway.
  This motif exercises the soundness corner of the literal Algorithm 1
  documented in DESIGN.md §2 and EXPERIMENTS.md;
* ``sigma8_like``     — the Example 8 pattern (terminating, but the
  substitution-free simulation of it is not): a source of false negatives
  for TGD-only criteria.

The default mix per class is tuned so the *shape* of Table 2(c) — most
chase-terminating ontologies recognised, a few false negatives in the
large classes — is measured, not hard-coded.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.terms import Variable

#: Table 2(a) ground truth: (|Σ∃| interval, |Σegd| interval) → (#tests, avg |Σ|).
TABLE2A_CLASSES: list[dict] = [
    {"name": "E1-10/G1-10", "exist": (1, 10), "egd": (1, 10), "tests": 50, "avg_size": 86},
    {"name": "E1-10/G11-100", "exist": (1, 10), "egd": (11, 100), "tests": 7, "avg_size": 451},
    {"name": "E11-100/G1-10", "exist": (11, 100), "egd": (1, 10), "tests": 15, "avg_size": 406},
    {"name": "E11-100/G11-100", "exist": (11, 100), "egd": (11, 100), "tests": 26, "avg_size": 1210},
    {"name": "E101-1000/G1-10", "exist": (101, 1000), "egd": (1, 10), "tests": 51, "avg_size": 3113},
    {"name": "E101-1000/G11-100", "exist": (101, 1000), "egd": (11, 100), "tests": 13, "avg_size": 3176},
    {"name": "E1001-5000/G1-10", "exist": (1001, 5000), "egd": (1, 10), "tests": 9, "avg_size": 9117},
    {"name": "E1001-5000/G11-100", "exist": (1001, 5000), "egd": (11, 100), "tests": 7, "avg_size": 19587},
]

DEFAULT_SEED = 20160396  # PVLDB 9(5), pages 396-407


@dataclass
class GeneratedOntology:
    """One synthetic ontology with its provenance."""

    name: str
    class_name: str
    sigma: DependencySet
    seed: int
    character: str  # dominant cycle motif
    profile: dict = field(default_factory=dict)


def _concept(i: int) -> str:
    return f"C{i}"


def _role(i: int) -> str:
    return f"R{i}"


def _prole(i: int) -> str:
    return f"S{i}"


class OntologyBuilder:
    """Builds one ontology-like dependency set from a seeded RNG.

    Structure discipline keeping the "acyclic" character honest:

    * concepts carry a topological order; subclass/successor axioms point
      strictly forward along it;
    * roles split into *successor roles* (carry labelled nulls, used by
      existential axioms) and *plain roles* (database constants only);
    * domain/range axioms on successor roles may only target concepts
      strictly after every concept already touching the role, so no
      backward concept edge sneaks in;
    * inverse/transitive axioms pair plain roles only (nulls never flow
      through them).

    The explicit cycle motifs then add the single backward edge that gives
    each ontology its termination character.
    """

    def __init__(self, rng: random.Random, n_exist: int, n_egd: int, n_full: int):
        self.rng = rng
        self.n_exist = max(1, n_exist)
        self.n_egd = max(1, n_egd)
        self.n_full = max(1, n_full)
        # Concept/role pools sized to the ontology: enough structure for
        # hierarchies without making bodies huge.
        self.n_concepts = max(4, (self.n_exist + self.n_full) // 2 + 2)
        self.n_succ_roles = max(2, self.n_exist // 2 + 1)
        self.n_plain_roles = max(2, self.n_full // 6 + 1)
        self.n_roles = self.n_succ_roles  # successor-role pool size
        self.deps: list[AnyDependency] = []
        self.x, self.y, self.z = Variable("x"), Variable("y"), Variable("z")
        # Per successor role: highest concept position touching it (as
        # subject or object), for the domain/range level constraint.
        self.role_level: dict[int, int] = {}
        # Successor roles frozen after receiving a domain/range axiom.
        self.frozen_roles: set[int] = set()
        # Roles reserved by the character motif: random EGDs must not touch
        # them, or they would silently change the termination character
        # (e.g. a functional EGD on an unguarded cycle's role).
        self.reserved_roles: set[int] = set()

    # -- motif emitters -------------------------------------------------

    def subclass(self, a: int, b: int) -> None:
        self.deps.append(
            TGD([Atom(_concept(a), (self.x,))], [Atom(_concept(b), (self.x,))])
        )

    def conj_subclass(self, a: int, b: int, c: int) -> None:
        self.deps.append(
            TGD(
                [Atom(_concept(a), (self.x,)), Atom(_concept(b), (self.x,))],
                [Atom(_concept(c), (self.x,))],
            )
        )

    def domain_axiom(self, r: int, a: int) -> None:
        self.deps.append(
            TGD([Atom(_role(r), (self.x, self.y))], [Atom(_concept(a), (self.x,))])
        )

    def range_axiom(self, r: int, a: int) -> None:
        self.deps.append(
            TGD([Atom(_role(r), (self.x, self.y))], [Atom(_concept(a), (self.y,))])
        )

    def domain_axiom_plain(self, r: int, a: int) -> None:
        self.deps.append(
            TGD([Atom(_prole(r), (self.x, self.y))], [Atom(_concept(a), (self.x,))])
        )

    def range_axiom_plain(self, r: int, a: int) -> None:
        self.deps.append(
            TGD([Atom(_prole(r), (self.x, self.y))], [Atom(_concept(a), (self.y,))])
        )

    def inverse_axiom_plain(self, r: int, s: int) -> None:
        self.deps.append(
            TGD([Atom(_prole(r), (self.x, self.y))], [Atom(_prole(s), (self.y, self.x))])
        )

    def transitive_axiom_plain(self, r: int) -> None:
        self.deps.append(
            TGD(
                [Atom(_prole(r), (self.x, self.y)), Atom(_prole(r), (self.y, self.z))],
                [Atom(_prole(r), (self.x, self.z))],
            )
        )

    def functional_egd_plain(self, r: int) -> None:
        self.deps.append(
            EGD(
                [Atom(_prole(r), (self.x, self.y)), Atom(_prole(r), (self.x, self.z))],
                self.y,
                self.z,
            )
        )

    def key_egd_plain(self, r: int) -> None:
        self.deps.append(
            EGD(
                [Atom(_prole(r), (self.x, self.z)), Atom(_prole(r), (self.y, self.z))],
                self.x,
                self.y,
            )
        )

    def successor_axiom(self, a: int, r: int, b: int) -> None:
        """A(x) → ∃y R(x,y) ∧ B(y)  — the existential motif."""
        self.deps.append(
            TGD(
                [Atom(_concept(a), (self.x,))],
                [Atom(_role(r), (self.x, self.y)), Atom(_concept(b), (self.y,))],
                existential=[self.y],
            )
        )

    def functional_egd(self, r: int) -> None:
        self.deps.append(
            EGD(
                [Atom(_role(r), (self.x, self.y)), Atom(_role(r), (self.x, self.z))],
                self.y,
                self.z,
            )
        )

    def key_egd(self, r: int) -> None:
        self.deps.append(
            EGD(
                [Atom(_role(r), (self.x, self.z)), Atom(_role(r), (self.y, self.z))],
                self.x,
                self.y,
            )
        )

    def reflexivising_egd(self, r: int) -> None:
        """R(x,y) → x = y — the Σ1-style EGD that truly rescues cycles."""
        self.deps.append(
            EGD([Atom(_role(r), (self.x, self.y))], self.x, self.y)
        )

    def sigma8_block(self, base: int) -> None:
        """An Example 8 block over fresh concepts (A, B, C shifted)."""
        a, b, c = _concept(base), _concept(base + 1), _concept(base + 2)
        x, y = self.x, self.y
        self.deps.append(TGD([Atom(a, (x,)), Atom(b, (x,))], [Atom(c, (x,))]))
        self.deps.append(
            TGD([Atom(c, (x,))], [Atom(a, (x,)), Atom(b, (y,))], existential=[y])
        )
        self.deps.append(
            TGD([Atom(c, (x,))], [Atom(a, (y,)), Atom(b, (x,))], existential=[y])
        )
        self.deps.append(EGD([Atom(a, (x,)), Atom(a, (y,))], x, y))
        self.deps.append(EGD([Atom(b, (x,)), Atom(b, (y,))], x, y))

    def mirror_block(self, r: int) -> None:
        """``R(x,y) → ∃z R(y,z) ∧ R(z,y)``: in CTstd∀ — every firing
        produces its own satisfaction witnesses, so the standard chase
        halts after one round — yet every static criterion, semi-acyclicity
        included, rejects it.  The corpus' source of false negatives."""
        x, y, z = self.x, self.y, self.z
        rr = _role(r)
        self.deps.append(
            TGD(
                [Atom(rr, (x, y))],
                [Atom(rr, (y, z)), Atom(rr, (z, y))],
                existential=[z],
            )
        )

    # -- assembly ---------------------------------------------------------

    def _touch_role(self, r: int, level: int) -> None:
        self.role_level[r] = max(self.role_level.get(r, 0), level)

    def _forward_successor(self) -> None:
        """One acyclic existential successor axiom.

        Roles that already received a domain/range axiom are frozen for
        further successor usage (a later, higher successor target would
        slip a backward edge past the axiom's level constraint).
        """
        rng = self.rng
        frozen = self.frozen_roles | self.reserved_roles
        candidates = [r for r in range(self.n_succ_roles) if r not in frozen]
        if not candidates:
            candidates = [
                r for r in range(self.n_succ_roles)
                if r not in self.reserved_roles
            ] or list(range(self.n_succ_roles))
        i = rng.randrange(self.n_concepts - 1)
        j = rng.randrange(i + 1, self.n_concepts)
        r = rng.choice(candidates)
        if r in frozen:
            ceiling = self.role_level.get(r, self.n_concepts)
            if j > ceiling:
                return  # cannot place safely; skip this axiom
        self.successor_axiom(i, r, j)
        self._touch_role(r, j)

    def build(self, character: str) -> DependencySet:
        rng = self.rng
        exist_left = self.n_exist
        egd_left = self.n_egd
        full_left = self.n_full

        # 1. Cycle motif(s) defining the termination character.  Each adds
        #    the one backward concept edge (b -> a with a < b).
        if character == "egd_rescued" and egd_left >= 1:
            r = rng.randrange(self.n_succ_roles)
            self.reserved_roles.add(r)
            self.successor_axiom(0, r, 1)
            self._touch_role(r, 1)
            self.subclass(1, 0)  # backward: closes the concept cycle
            self.reflexivising_egd(r)
            exist_left -= 1
            egd_left -= 1
            full_left = max(0, full_left - 1)
        elif character == "unguarded":
            r = rng.randrange(self.n_succ_roles)
            self.reserved_roles.add(r)
            self.successor_axiom(0, r, 1)
            self._touch_role(r, 1)
            self.subclass(1, 0)
            exist_left -= 1
            full_left = max(0, full_left - 1)
        elif character == "functional_guard" and egd_left >= 1:
            r = rng.randrange(self.n_succ_roles)
            self.reserved_roles.add(r)
            self.successor_axiom(0, r, 1)
            self._touch_role(r, 1)
            self.subclass(1, 0)
            self.functional_egd(r)
            exist_left -= 1
            egd_left -= 1
            full_left = max(0, full_left - 1)
        elif character == "sigma8_like":
            self.sigma8_block(self.n_concepts)
            exist_left = max(0, exist_left - 2)
            egd_left = max(0, egd_left - 2)
            full_left = max(0, full_left - 1)
        elif character == "mirror":
            # A dedicated role index past both pools, untouched elsewhere.
            self.mirror_block(self.n_succ_roles + self.n_plain_roles)
            exist_left -= 1
        # "acyclic": nothing special; everything below is acyclic.

        # 2. Acyclic existential successors (forward along the order).
        for _ in range(max(0, exist_left)):
            self._forward_successor()

        # 3. EGDs: functional roles and keys; successor roles and plain
        #    roles both occur (functional successor roles are realistic —
        #    and are what exercises the Dµ merge analysis).
        for k in range(max(0, egd_left)):
            if rng.random() < 0.5:
                free = [r for r in range(self.n_succ_roles)
                        if r not in self.reserved_roles]
                if not free:
                    continue
                self.functional_egd(rng.choice(free))
            else:
                r = rng.randrange(self.n_plain_roles)
                if rng.random() < 0.6:
                    self.functional_egd_plain(r)
                else:
                    self.key_egd_plain(r)

        # 4. Full TGDs: hierarchy and role axioms, all forward/harmless.
        emitted = 0
        guard = 0
        while emitted < full_left and guard < full_left * 8 + 32:
            guard += 1
            kind = rng.random()
            if kind < 0.40:
                i = rng.randrange(self.n_concepts - 1)
                j = rng.randrange(i + 1, self.n_concepts)
                self.subclass(i, j)
            elif kind < 0.52 and self.n_concepts >= 3:
                i = rng.randrange(self.n_concepts - 2)
                j = rng.randrange(i + 1, self.n_concepts - 1)
                k = rng.randrange(j + 1, self.n_concepts)
                self.conj_subclass(i, j, k)
            elif kind < 0.66:
                # Domain/range on a successor role: only forward targets,
                # and the role is frozen for further successor axioms.
                r = rng.randrange(self.n_succ_roles)
                floor = self.role_level.get(r, 0)
                if floor + 1 >= self.n_concepts:
                    continue
                c = rng.randrange(floor + 1, self.n_concepts)
                if rng.random() < 0.5:
                    self.domain_axiom(r, c)
                else:
                    self.range_axiom(r, c)
                self._touch_role(r, c)
                self.frozen_roles.add(r)
            elif kind < 0.86:
                # Domain/range on a plain role: unconstrained (no nulls).
                r = rng.randrange(self.n_plain_roles)
                c = rng.randrange(self.n_concepts)
                if rng.random() < 0.5:
                    self.domain_axiom_plain(r, c)
                else:
                    self.range_axiom_plain(r, c)
            else:
                r = rng.randrange(self.n_plain_roles)
                s = rng.randrange(self.n_plain_roles)
                if r != s:
                    self.inverse_axiom_plain(r, s)
                else:
                    self.transitive_axiom_plain(r)
            emitted += 1

        out = DependencySet()
        for d in self.deps:
            out.add(d)
        return out.relabel()


#: Per-class character mix (probabilities).  Tuned so the corpus-level
#: shape matches Table 2(c): ~43% of ontologies chase-terminating, false
#: negatives concentrated in the mid/large classes.
DEFAULT_CHARACTER_MIX: dict[str, list[tuple[str, float]]] = {
    "E1-10/G1-10": [
        ("acyclic", 0.50), ("egd_rescued", 0.26), ("unguarded", 0.12),
        ("functional_guard", 0.12), ("sigma8_like", 0.0),
    ],
    "E1-10/G11-100": [
        ("acyclic", 0.45), ("egd_rescued", 0.30), ("unguarded", 0.15),
        ("functional_guard", 0.10), ("sigma8_like", 0.0),
    ],
    "E11-100/G1-10": [
        ("acyclic", 0.25), ("egd_rescued", 0.15), ("unguarded", 0.45),
        ("functional_guard", 0.15), ("sigma8_like", 0.0),
    ],
    "E11-100/G11-100": [
        ("acyclic", 0.30), ("egd_rescued", 0.20), ("unguarded", 0.40),
        ("functional_guard", 0.10), ("sigma8_like", 0.0),
    ],
    "E101-1000/G1-10": [
        ("acyclic", 0.05), ("egd_rescued", 0.03), ("unguarded", 0.80),
        ("functional_guard", 0.12), ("sigma8_like", 0.0),
    ],
    "E101-1000/G11-100": [
        ("acyclic", 0.04), ("egd_rescued", 0.04), ("unguarded", 0.64),
        ("functional_guard", 0.05), ("sigma8_like", 0.08), ("mirror", 0.15),
    ],
    "E1001-5000/G1-10": [
        ("acyclic", 0.0), ("egd_rescued", 0.0), ("unguarded", 1.0),
        ("functional_guard", 0.0), ("sigma8_like", 0.0),
    ],
    "E1001-5000/G11-100": [
        ("acyclic", 0.0), ("egd_rescued", 0.0), ("unguarded", 1.0),
        ("functional_guard", 0.0), ("sigma8_like", 0.0),
    ],
}


def resolve_scale(scale: float | str | None = None) -> float:
    """Resolve the corpus scale: an explicit number, the ``REPRO_SCALE``
    environment variable, or the CI-friendly default."""
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "0.06")
    if isinstance(scale, str):
        if scale == "paper":
            return 1.0
        scale = float(scale)
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return scale


def generate_corpus(
    scale: float | str | None = None,
    tests_scale: float | None = None,
    seed: int = DEFAULT_SEED,
    character_mix: dict | None = None,
    max_size: int | None = 60,
    classes: list[str] | None = None,
) -> list[GeneratedOntology]:
    """Generate the full eight-class corpus.

    ``scale`` multiplies the per-ontology sizes (1.0 = paper sizes, the
    default keeps the whole harness CI-friendly); ``tests_scale``
    multiplies the per-class test counts (default 1.0: all 178 sets);
    ``max_size`` caps the per-ontology dependency count after scaling
    (None = uncapped, used by REPRO_SCALE=paper runs).  The cap compresses
    the inter-class size ratios; EXPERIMENTS.md reports both the paper's
    sizes and ours.  ``classes`` restricts generation to the named
    Table 2(a) classes (e.g. the batch bench's class-1-only corpus);
    per-ontology seeds are always drawn in full-corpus order, so a
    restricted corpus contains exactly the ontologies the full corpus
    would for those classes.
    """
    if isinstance(scale, str) and scale == "paper":
        max_size = None
    if os.environ.get("REPRO_SCALE") == "paper" and scale is None:
        max_size = None
    scale = resolve_scale(scale)
    tests_scale = 1.0 if tests_scale is None else tests_scale
    if classes is not None:
        known = {c["name"] for c in TABLE2A_CLASSES}
        unknown = set(classes) - known
        if unknown:
            raise ValueError(f"unknown corpus classes {sorted(unknown)}")
    mix = character_mix or DEFAULT_CHARACTER_MIX
    master = random.Random(seed)
    corpus: list[GeneratedOntology] = []
    for cls in TABLE2A_CLASSES:
        tests = max(1, round(cls["tests"] * tests_scale))
        if classes is not None and cls["name"] not in classes:
            for _ in range(tests):  # keep the seed stream aligned
                master.randrange(2**31)
            continue
        lo_e, hi_e = cls["exist"]
        lo_g, hi_g = cls["egd"]
        for t in range(tests):
            sub_seed = master.randrange(2**31)
            rng = random.Random(sub_seed)
            n_exist = max(1, round(rng.randint(lo_e, hi_e) * scale))
            n_egd = max(1, round(rng.randint(lo_g, hi_g) * scale))
            size = max(
                n_exist + n_egd + 2,
                round(cls["avg_size"] * rng.uniform(0.7, 1.3) * scale),
            )
            if max_size is not None and size > max_size:
                shrink = max_size / size
                size = max_size
                n_exist = max(1, round(n_exist * shrink))
                n_egd = max(1, round(n_egd * shrink))
            n_full = max(1, size - n_exist - n_egd)
            character = _pick_character(rng, mix[cls["name"]])
            builder = OntologyBuilder(rng, n_exist, n_egd, n_full)
            sigma = builder.build(character)
            corpus.append(
                GeneratedOntology(
                    name=f"{cls['name']}#{t + 1}",
                    class_name=cls["name"],
                    sigma=sigma,
                    seed=sub_seed,
                    character=character,
                    profile={
                        "n_exist": len(sigma.existential),
                        "n_egd": len(sigma.egds),
                        "size": len(sigma),
                    },
                )
            )
    return corpus


def _pick_character(rng: random.Random, mix: list[tuple[str, float]]) -> str:
    roll = rng.random()
    acc = 0.0
    for name, p in mix:
        acc += p
        if roll < acc:
            return name
    return mix[-1][0]


def corpus_by_class(
    corpus: list[GeneratedOntology],
) -> dict[str, list[GeneratedOntology]]:
    """Group generated ontologies by their Table 2(a) class name."""
    out: dict[str, list[GeneratedOntology]] = {}
    for ont in corpus:
        out.setdefault(ont.class_name, []).append(ont)
    return out
