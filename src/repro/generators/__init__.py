"""Workload generators: the Table 2 corpus, seed databases, random sets."""

from .corpus import (
    DEFAULT_CHARACTER_MIX,
    DEFAULT_SEED,
    TABLE2A_CLASSES,
    GeneratedOntology,
    OntologyBuilder,
    corpus_by_class,
    generate_corpus,
    resolve_scale,
)
from .databases import seed_database, sparse_database
from .metamorphic import (
    random_isomorph,
    rename_predicates,
    rename_variables,
    reorder_dependencies,
)
from .random_deps import random_dependency_set

__all__ = [
    "random_isomorph",
    "rename_predicates",
    "rename_variables",
    "reorder_dependencies",
    "DEFAULT_CHARACTER_MIX",
    "DEFAULT_SEED",
    "TABLE2A_CLASSES",
    "GeneratedOntology",
    "OntologyBuilder",
    "corpus_by_class",
    "generate_corpus",
    "resolve_scale",
    "seed_database",
    "sparse_database",
    "random_dependency_set",
]
