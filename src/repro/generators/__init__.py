"""Workload generators: the Table 2 corpus, seed databases, random sets."""

from .corpus import (
    DEFAULT_CHARACTER_MIX,
    DEFAULT_SEED,
    TABLE2A_CLASSES,
    GeneratedOntology,
    OntologyBuilder,
    corpus_by_class,
    generate_corpus,
    resolve_scale,
)
from .databases import seed_database, sparse_database
from .random_deps import random_dependency_set

__all__ = [
    "DEFAULT_CHARACTER_MIX",
    "DEFAULT_SEED",
    "TABLE2A_CLASSES",
    "GeneratedOntology",
    "OntologyBuilder",
    "corpus_by_class",
    "generate_corpus",
    "resolve_scale",
    "seed_database",
    "sparse_database",
    "random_dependency_set",
]
