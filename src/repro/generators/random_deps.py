"""Unstructured random dependency sets.

Used by property-based tests and the substrate micro-benchmarks: unlike
:mod:`repro.generators.corpus` these make no attempt to look like
ontologies — they sample small TGDs/EGDs over a random schema, which is a
better stressor for the homomorphism and firing machinery.
"""

from __future__ import annotations

import random

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.terms import Variable


def random_dependency_set(
    seed: int,
    n_deps: int = 5,
    n_predicates: int = 3,
    max_arity: int = 3,
    max_body_atoms: int = 2,
    egd_fraction: float = 0.3,
    existential_fraction: float = 0.5,
) -> DependencySet:
    """A reproducible random Σ.  Guaranteed syntactically valid."""
    rng = random.Random(seed)
    arities = {
        f"P{i}": rng.randint(1, max_arity) for i in range(n_predicates)
    }
    preds = sorted(arities)
    vars_pool = [Variable(f"v{i}") for i in range(6)]
    out = DependencySet()
    attempts = 0
    while len(out) < n_deps and attempts < n_deps * 20:
        attempts += 1
        body = [
            _random_atom(rng, preds, arities, vars_pool)
            for _ in range(rng.randint(1, max_body_atoms))
        ]
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        if not body_vars:
            continue
        if rng.random() < egd_fraction and len(body_vars) >= 2:
            lhs, rhs = rng.sample(body_vars, 2)
            out.add(EGD(body, lhs, rhs))
            continue
        head_vars = list(body_vars)
        existential: list[Variable] = []
        if rng.random() < existential_fraction:
            z = Variable(f"z{rng.randint(0, 2)}")
            if z not in body_vars:
                existential.append(z)
                head_vars.append(z)
        head = [_random_atom(rng, preds, arities, head_vars)]
        head_used = {v for a in head for v in a.variables()}
        ex_used = [z for z in existential if z in head_used]
        try:
            out.add(TGD(body, head, existential=ex_used or None))
        except ValueError:
            continue
    return out.relabel()


def _random_atom(rng, preds, arities, vars_pool) -> Atom:
    p = rng.choice(preds)
    args = [rng.choice(list(vars_pool)) for _ in range(arities[p])]
    return Atom(p, args)
