"""Seed databases for chasing generated ontologies.

The paper chases each ontology (for the Table 2(c) ground truth) over a
database; for synthetic ontologies we seed every concept and role with a
couple of constants — a small "critical-ish" database that exercises each
dependency without blowing up the chase.
"""

from __future__ import annotations

import random

from ..model.atoms import Atom
from ..model.dependencies import DependencySet
from ..model.instances import Instance
from ..model.terms import Constant


def seed_database(
    sigma: DependencySet,
    constants_per_predicate: int = 1,
    seed: int = 7,
) -> Instance:
    """One fact per predicate over a tiny constant pool.

    Unary predicates get ``P(c0)``; binary predicates ``R(c0, c1)``; higher
    arities cycle through the pool.  Deterministic given the seed.
    """
    rng = random.Random(seed)
    pool = [Constant(f"a{i}") for i in range(max(2, constants_per_predicate + 1))]
    db = Instance()
    for pred, arity in sorted(sigma.predicates().items()):
        for k in range(constants_per_predicate):
            args = [pool[(k + i) % len(pool)] for i in range(arity)]
            if arity == 0:
                db.add(Atom(pred, ()))
                break
            db.add(Atom(pred, args))
        if rng.random() < 0:  # placeholder for future randomised variants
            pass
    return db


def sparse_database(sigma: DependencySet, fraction: float = 0.3, seed: int = 7) -> Instance:
    """Facts for a random subset of predicates — closer to real ABoxes,
    where most schema predicates have no instances."""
    rng = random.Random(seed)
    pool = [Constant("a0"), Constant("a1")]
    db = Instance()
    preds = sorted(sigma.predicates().items())
    for pred, arity in preds:
        if rng.random() > fraction:
            continue
        args = [pool[i % len(pool)] for i in range(arity)]
        db.add(Atom(pred, args))
    if len(db) == 0 and preds:
        pred, arity = preds[0]
        db.add(Atom(pred, [pool[i % len(pool)] for i in range(arity)]))
    return db
