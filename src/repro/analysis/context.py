"""The shared analysis-artifact substrate (DESIGN.md §6).

The termination criteria form one hierarchy over shared machinery —
affected positions, the position graphs, the chase/firing graphs, and
above all the firing relation whose edges are decided by expensive
witness-engine chase probes — yet each criterion historically re-derived
every artifact for itself (SR, IR and CStr each rebuilt the oblivious
chase graph; Safety, SR and IR each recomputed the affected positions;
AC and LS each ran the full adornment rewriting).

:class:`AnalysisContext` computes each artifact **once per program** and
shares it everywhere: a lazy, memoized, thread-safe store that every
:meth:`~repro.criteria.base.TerminationCriterion.check` receives and
consults instead of rebuilding its own.  The classification portfolio
creates one context per program and passes it to every criterion
(``backend="shared"``); a criterion checked on its own creates a private
context, which degenerates to per-criterion memoization — the historical
behaviour, kept as the ``"standalone"`` reference backend and pinned
byte-identical to the shared path by the differential suite.

Thread-safety contract
----------------------

Artifacts are built **single-flight**: concurrent requests for the same
artifact elect one leader; the rest block until the leader finishes and
then read the memoized value.  The artifact dependency graph (propagation
→ affected, AC-rewriting → simulation, …) is acyclic, so leaders never
wait on each other.  A follower may therefore wait longer than its own
budget would have allowed it to compute — the trade is deliberate: the
artifact arrives complete and *exact* instead of truncated.

Budgets and memoization
-----------------------

Criteria run under per-criterion budgets, so an artifact built while a
budget is ambient may be cut short — and a truncated artifact is not a
function of the program alone (it depends on how much the interrupted
criterion had already spent).  The store therefore memoizes an artifact
only when it is **deterministic**: the ambient budget (if any) had not
blown by the time the build finished, and the artifact's own exhaustion
marker is clear.  A non-memoized build returns its (truncated, flagged)
value to the requesting criterion only; the next requester rebuilds
under its own budget.  Firing-edge decisions follow the same rule one
level down, inside :class:`~repro.firing.relations.DecisionCache`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..budget import current_budget
from ..concurrency import SingleFlightCache
from ..firing.relations import DecisionCache, FiringOracle, current_firing_cache
from ..firing.witness import DEFAULT_BUDGET
from ..model.dependencies import DependencySet


def _ambient_ok() -> bool:
    """Did the build just finished run to completion, reproducibly?

    True when no ambient budget is installed or the installed one never
    blew: every oracle probe underneath then either completed or was
    truncated by its deterministic per-pair allowance, and every
    saturation loop ran to its fixpoint (or its deterministic cap).
    """
    budget = current_budget()
    return budget is None or budget.exhausted is None


class AnalysisContext(SingleFlightCache):
    """Lazy, memoized, cancellation-aware artifact store for one program.

    Artifact accessors either return the memoized value (a *hit*) or
    build it (a *miss*), memoizing only deterministic builds — see the
    module docstring.  The memoization core is the shared
    :class:`~repro.concurrency.SingleFlightCache`.  ``decisions`` is the
    firing-edge :class:`~repro.firing.relations.DecisionCache` every
    oracle handed out by :meth:`oracle` shares; when not given, the
    context adopts the cache installed by the enclosing
    :func:`~repro.firing.relations.shared_firing_cache` scope (so a
    private per-criterion context inside a classify run still shares
    edge decisions with its siblings, exactly as the pre-context code
    did), or creates a fresh one.
    """

    def __init__(
        self,
        sigma: DependencySet,
        decisions: DecisionCache | None = None,
    ) -> None:
        super().__init__()
        self.sigma = sigma
        if decisions is None:
            decisions = current_firing_cache()
        self.decisions = decisions if decisions is not None else DecisionCache()
        self.hits = 0
        self.misses = 0
        self.uncached_builds = 0

    def _on_hit(self) -> None:
        self.hits += 1

    def _on_miss(self) -> None:
        self.misses += 1

    def _on_uncached(self) -> None:
        self.uncached_builds += 1

    # -- the memoization core ------------------------------------------------

    def _get(
        self,
        key: tuple,
        build: Callable[[], Any],
        deterministic: Callable[[Any], bool] | None = None,
    ) -> Any:
        """Memoized single-flight build of one artifact.

        ``deterministic`` vetoes memoization for values whose own
        exhaustion markers show truncation (on top of the ambient-budget
        gate that applies to every artifact).
        """

        def build_checked() -> tuple[Any, bool]:
            value = build()
            cacheable = _ambient_ok() and (
                deterministic is None or deterministic(value)
            )
            return value, cacheable

        return self._get_or_build(key, build_checked)

    # -- position-level artifacts ---------------------------------------------

    def affected_positions(self) -> set:
        """The affected positions of Σ (Safety, SR and IR all need them)."""

        def build() -> set:
            from ..criteria.safety import affected_positions

            return affected_positions(self.sigma)

        return self._get(("affected",), build)

    def dependency_graph(self):
        """WA's position dependency graph."""

        def build():
            from ..criteria.weak_acyclicity import dependency_graph

            return dependency_graph(self.sigma)

        return self._get(("dependency_graph",), build)

    def propagation_graph(self):
        """Safety's propagation graph over the affected positions."""

        def build():
            from ..criteria.safety import propagation_graph

            return propagation_graph(
                self.sigma, affected=self.affected_positions()
            )

        return self._get(("propagation_graph",), build)

    # -- firing-level artifacts -------------------------------------------------

    def oracle(
        self, step_variant: str = "standard", budget: int = DEFAULT_BUDGET
    ) -> FiringOracle:
        """A fresh oracle wired to the shared decision cache.

        Oracles are deliberately *not* memoized: they are cheap shells
        around the shared :class:`DecisionCache` (which is where every
        expensive probe lands exactly once), while their per-oracle
        ``ever_inexact`` flag must stay per-consumer so one criterion's
        truncated probes never mark another criterion's verdict
        approximate.
        """
        return FiringOracle(
            self.sigma, step_variant=step_variant, budget=budget,
            decisions=self.decisions,
        )

    def chase_graph(self, step_variant: str = "standard"):
        """``(G(Σ), exact)`` under the given chase-step variant."""

        def build():
            from ..firing.graphs import chase_graph

            oracle = self.oracle(step_variant)
            graph = chase_graph(self.sigma, oracle)
            return graph, not oracle.ever_inexact

        return self._get(("chase_graph", step_variant), build)

    def firing_graph(self):
        """``(Gf(Σ), exact)`` — Definition 2's graph, standard steps."""

        def build():
            from ..firing.graphs import firing_graph

            oracle = self.oracle("standard")
            graph = firing_graph(self.sigma, oracle)
            return graph, not oracle.ever_inexact

        return self._get(("firing_graph",), build)

    def firing_sccs(self) -> tuple:
        """The SCC decomposition of Gf(Σ), as a tuple of frozensets."""

        def build() -> tuple:
            import networkx as nx

            graph, _ = self.firing_graph()
            return tuple(
                frozenset(scc) for scc in nx.strongly_connected_components(graph)
            )

        return self._get(("firing_sccs",), build)

    def restriction_graph(self):
        """``(graph, exact)``: the oblivious chase graph restricted to
        null-propagating edges — the precedence structure SR and IR share."""

        def build():
            from ..criteria.restriction import null_propagating_subgraph
            from ..firing.graphs import oblivious_chase_graph

            oracle = self.oracle("oblivious")
            graph = null_propagating_subgraph(
                self.sigma,
                oblivious_chase_graph(self.sigma, oracle=oracle),
                affected=self.affected_positions(),
            )
            return graph, not oracle.ever_inexact

        return self._get(("restriction_graph",), build)

    # -- rewriting / simulation artifacts -----------------------------------------

    def simulated(self) -> DependencySet:
        """Σ with EGDs lifted through the substitution-free simulation
        (Σ itself when TGD-only) — the input every TGD-only criterion
        (SwA, AC, LS, MFA, MSA) analyses."""

        def build() -> DependencySet:
            if not self.sigma.egds:
                return self.sigma
            from ..simulation.substitution_free import (
                substitution_free_simulation,
            )

            return substitution_free_simulation(self.sigma)

        return self._get(("simulated",), build)

    def skolem_rules(self, variant: str = "semi_oblivious") -> tuple:
        """The Skolemised rules of the (simulated) TGD set — MFA and MSA
        both saturate over them."""

        def build() -> tuple:
            from ..chase.skolem import skolemise

            return tuple(skolemise(self.simulated(), variant=variant))

        return self._get(("skolem_rules", variant), build)

    def critical_instance(self):
        """A fresh copy of the critical instance of the (simulated) set.

        The template is memoized; callers get a copy because the MFA/MSA
        saturations mutate their instance in place.
        """

        def build():
            from ..chase.skolem import critical_instance

            return critical_instance(self.simulated())

        return self._get(("critical_instance",), build).copy()

    def ac_rewriting(self):
        """The AC adornment rewriting of the (simulated) TGD set — shared
        by the AC criterion and LS (whose Σα it c-stratifies)."""

        def build():
            from ..core.adornment import ac_rewriting

            return ac_rewriting(self.simulated())

        return self._get(
            ("ac_rewriting",), build, deterministic=lambda r: r.exhausted is None
        )

    def adn_result(self):
        """``Adn∃(Σ)`` — SAC's artifact (and Adn∃-C combinations')."""

        def build():
            from ..core.adornment import adn_exists

            return adn_exists(self.sigma)

        return self._get(
            ("adn_exists",), build, deterministic=lambda r: r.exhausted is None
        )

    # -- introspection --------------------------------------------------------------

    def stats(self) -> dict:
        """Artifact and firing-decision cache statistics (``--stats``)."""
        with self._lock:
            total = self.hits + self.misses
            artifacts = {
                "entries": len(self._values),
                "hits": self.hits,
                "misses": self.misses,
                "uncached_builds": self.uncached_builds,
                "hit_rate": self.hits / total if total else 0.0,
            }
        return {"artifacts": artifacts, "decisions": self.decisions.stats()}

    def __repr__(self) -> str:
        return (
            f"AnalysisContext({len(self.sigma)} deps, "
            f"{len(self._values)} artifacts, "
            f"{len(self.decisions)} decisions)"
        )
