"""Analysis facade: criterion portfolio, corpus evaluation, Table 1 checks."""

from .classify import (
    BACKENDS,
    DEFAULT_ORDER,
    HIERARCHY_IMPLIES,
    ClassificationReport,
    ClassifyConfig,
    classify,
)
from .context import AnalysisContext
from .evaluation import (
    HALT_STRATEGIES,
    ClassSummary,
    OntologyEvaluation,
    chase_ground_truth,
    evaluate_ontology,
    render_table2,
    summarise,
)
from .hierarchy import ClaimCheck, check_claim, render_table1, verify_cases

__all__ = [
    "AnalysisContext",
    "BACKENDS",
    "DEFAULT_ORDER",
    "HIERARCHY_IMPLIES",
    "ClassificationReport",
    "ClassifyConfig",
    "classify",
    "HALT_STRATEGIES",
    "ClassSummary",
    "OntologyEvaluation",
    "chase_ground_truth",
    "evaluate_ontology",
    "render_table2",
    "summarise",
    "ClaimCheck",
    "check_claim",
    "render_table1",
    "verify_cases",
]
