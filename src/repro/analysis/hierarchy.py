"""Empirical verification of the Table 1 relationships.

Each :class:`~repro.data.witnesses.WitnessCase` claim is checked with the
chase explorer (bounded exhaustive exploration of the nondeterministic
choice tree) and, for the core chase, the deterministic core-chase runner.

The checks are necessarily bounded: "∈ CTc∃" is verified by *finding* a
terminating sequence (conclusive); "∉ CTc∀" by finding a cut-off path
(conclusive for non-termination only in combination with the witness's
analytical argument, which the docstrings carry); "∉ CTc∃" by exhausting
the bounded tree without a terminating leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chase.core_chase import core_chase
from ..chase.explorer import ExplorationVerdict, explore_chase
from ..data.witnesses import Claim, WitnessCase


@dataclass
class ClaimCheck:
    """One verified (or refuted) witness claim with its evidence."""

    case: str
    claim: Claim
    holds: bool
    evidence: str


def check_claim(case: WitnessCase, claim: Claim, max_depth: int = 14,
                max_states: int = 30_000) -> ClaimCheck:
    if claim.variant == "core":
        result = core_chase(case.database, case.sigma, max_rounds=50)
        holds = result.terminated == claim.member
        return ClaimCheck(
            case.name, claim, holds,
            f"core chase status: {result.status.value}",
        )
    exp = explore_chase(
        case.database, case.sigma, variant=claim.variant,
        max_depth=max_depth, max_states=max_states,
    )
    if claim.quantifier == "exists":
        observed = exp.some_terminating
    else:
        observed = exp.verdict is ExplorationVerdict.ALL_TERMINATING
    holds = observed == claim.member
    evidence = (
        f"{claim.variant}: verdict={exp.verdict.name} "
        f"terminating={exp.terminating_paths} failing={exp.failing_paths} "
        f"capped={exp.capped_paths} states={exp.explored_states}"
    )
    return ClaimCheck(case.name, claim, holds, evidence)


def verify_cases(cases: list[WitnessCase]) -> list[ClaimCheck]:
    """Check every claim of every witness case."""
    out = []
    for case in cases:
        for claim in case.claims:
            out.append(check_claim(case, claim))
    return out


def render_table1(checks: list[ClaimCheck]) -> str:
    """Summarise the relationship verifications in Table 1's terms."""
    lines = [
        "Table 1 — relationships among the CT classes (TGDs and EGDs)",
        "",
        f"{'witness':<14} {'claim':<28} {'holds':>6}  evidence",
        "-" * 100,
    ]
    for c in checks:
        member = "∈" if c.claim.member else "∉"
        q = "∀" if c.claim.quantifier == "all" else "∃"
        claim_txt = f"{member} CT{c.claim.variant[:4]}{q}"
        lines.append(
            f"{c.case:<14} {claim_txt:<28} {str(c.holds):>6}  {c.evidence}"
        )
    relationships = [
        "CTc∀ ⊊ CTc∃ for c ∈ {obl, sobl, std}   — witnessed by sigma_1",
        "CTobl∃ ∦ CTsobl∀                        — sigma_1 vs sigma_6",
        "CTsobl∃ ∦ CTstd∀ and CTobl∃ ∦ CTstd∀    — sigma_1 vs mirror_pair",
        "EGDs can destroy termination            — sigma_10",
        "CTstd∀ ⊊ CTstd∃ already for TGDs        — sigma_11",
    ]
    lines.append("")
    lines.append("relationships covered:")
    lines.extend(f"  * {r}" for r in relationships)
    return "\n".join(lines)
