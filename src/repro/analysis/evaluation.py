"""The paper's experimental pipeline (Section 7, Table 2) over a corpus.

For every generated ontology we measure what the paper measured:

* Table 2(b): ``|Σµ|/|Σ|`` and the Adn∃ running time;
* Table 2(c): semi-acyclicity vs. a chase-termination ground truth — the
  paper ran the standard chase with a 24h timeout; we run a bounded chase
  (steps budget standing in for wall-clock) with a termination-friendly
  strategy, plus an adversarial strategy to separate "some sequences
  terminate" from "the chase halted".

Columns reproduced per class:

* ``A+NT``: ontologies that are semi-acyclic, plus ontologies that are not
  semi-acyclic and whose chase did not halt within the budget;
* ``FN``:  ontologies whose chase halted but that are not semi-acyclic
  ("false negatives").

We additionally report ``FP?`` — accepted by SAC while *no* chase strategy
we try halts within budget.  The paper's methodology cannot observe this
column (a non-halting accepted ontology lands in A+NT); see DESIGN.md §2
and EXPERIMENTS.md for why it is interesting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..chase.result import ChaseStatus
from ..chase.runner import run_chase
from ..core.adornment import adn_exists
from ..generators.corpus import GeneratedOntology
from ..generators.databases import seed_database
from ..model.dependencies import DependencySet


@dataclass
class OntologyEvaluation:
    """Everything measured for one corpus ontology."""

    name: str
    class_name: str
    character: str
    size: int
    adorned_size: int
    adn_ms: float
    semi_acyclic: bool
    chase_halted: bool
    halted_strategy: str | None = None

    @property
    def ratio(self) -> float:
        return self.adorned_size / max(1, self.size)


@dataclass
class ClassSummary:
    """Aggregates of one (|Σ∃|, |Σegd|) corpus class."""

    class_name: str
    tests: int = 0
    sizes: list[int] = field(default_factory=list)
    ratios: list[float] = field(default_factory=list)
    times_ms: list[float] = field(default_factory=list)
    accepted: int = 0
    accepted_not_halted: int = 0
    not_accepted_not_halted: int = 0
    false_negatives: int = 0

    @property
    def avg_size(self) -> float:
        return sum(self.sizes) / max(1, len(self.sizes))

    @property
    def avg_ratio(self) -> float:
        return sum(self.ratios) / max(1, len(self.ratios))

    @property
    def avg_time_ms(self) -> float:
        return sum(self.times_ms) / max(1, len(self.times_ms))

    @property
    def a_plus_nt(self) -> int:
        """The paper's A+NT column: accepted ∪ (rejected ∧ not halted)."""
        return self.accepted + self.not_accepted_not_halted


#: Strategies tried, in order, to decide "the chase halted".  ``full_first``
#: is the ∃-termination-friendly order; ``fifo`` approximates an arbitrary
#: implementation order.
HALT_STRATEGIES = ("full_first", "fifo")


def chase_ground_truth(
    sigma: DependencySet, max_steps: int = 4_000
) -> tuple[bool, str | None]:
    """Did some standard chase run halt within the step budget?

    The budget stands in for the paper's 24-hour timeout; a failing run
    (⊥) counts as halted (it is a finite sequence).
    """
    db = seed_database(sigma)
    for strategy in HALT_STRATEGIES:
        result = run_chase(db, sigma, strategy=strategy, max_steps=max_steps)
        if result.status in (ChaseStatus.SUCCESS, ChaseStatus.FAILURE):
            return True, strategy
    return False, None


def evaluate_ontology(
    ont: GeneratedOntology,
    chase_steps: int = 4_000,
    adn_kwargs: dict | None = None,
) -> OntologyEvaluation:
    """Adn∃ + chase ground truth for one ontology."""
    adn_kwargs = adn_kwargs or {}
    start = time.perf_counter()
    result = adn_exists(ont.sigma, **adn_kwargs)
    adn_ms = (time.perf_counter() - start) * 1000.0
    halted, strategy = chase_ground_truth(ont.sigma, max_steps=chase_steps)
    return OntologyEvaluation(
        name=ont.name,
        class_name=ont.class_name,
        character=ont.character,
        size=len(ont.sigma),
        adorned_size=len(result.adorned),
        adn_ms=adn_ms,
        semi_acyclic=result.acyclic,
        chase_halted=halted,
        halted_strategy=strategy,
    )


def summarise(evaluations: list[OntologyEvaluation]) -> dict[str, ClassSummary]:
    """Fold per-ontology evaluations into per-class summaries."""
    summaries: dict[str, ClassSummary] = {}
    for ev in evaluations:
        s = summaries.setdefault(ev.class_name, ClassSummary(ev.class_name))
        s.tests += 1
        s.sizes.append(ev.size)
        s.ratios.append(ev.ratio)
        s.times_ms.append(ev.adn_ms)
        if ev.semi_acyclic:
            s.accepted += 1
            if not ev.chase_halted:
                s.accepted_not_halted += 1
        elif ev.chase_halted:
            s.false_negatives += 1
        else:
            s.not_accepted_not_halted += 1
    return summaries


def render_table2(summaries: dict[str, ClassSummary]) -> str:
    """Render tables 2(a)-(c) in the paper's layout."""
    order = sorted(summaries)
    head = (
        f"{'class':<20} {'#tests':>6} {'|Σ|':>8} "
        f"{'|Σµ|/|Σ|':>9} {'time(ms)':>9} "
        f"{'A+NT':>6} {'FN':>4} {'FP?':>4}"
    )
    lines = [head, "-" * len(head)]
    for name in order:
        s = summaries[name]
        lines.append(
            f"{name:<20} {s.tests:>6} {s.avg_size:>8.0f} "
            f"{s.avg_ratio:>9.2f} {s.avg_time_ms:>9.1f} "
            f"{s.a_plus_nt:>6} {s.false_negatives:>4} {s.accepted_not_halted:>4}"
        )
    total_tests = sum(s.tests for s in summaries.values())
    total_fn = sum(s.false_negatives for s in summaries.values())
    total_halted = sum(
        s.tests - s.accepted_not_halted - s.not_accepted_not_halted
        for s in summaries.values()
    )
    lines.append("-" * len(head))
    lines.append(
        f"totals: {total_tests} ontologies, {total_halted} chase-halting, "
        f"{total_fn} false negatives"
    )
    return "\n".join(lines)
