"""The portfolio runner: run every registered termination criterion on a
dependency set and summarise the verdicts.

This is the top-level entry point a downstream user reaches for first::

    from repro import classify, parse_dependencies
    report = classify(parse_dependencies(text))
    print(report)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..criteria.base import CriterionResult, Guarantee, get_criterion, registry
from ..model.dependencies import DependencySet

#: Criteria ordered roughly by cost (cheap static ones first).
DEFAULT_ORDER = [
    "WA", "SC", "SwA", "AC", "LS", "MSA", "MFA", "CStr", "SR", "IR", "Str", "S-Str", "SAC",
]


@dataclass
class ClassificationReport:
    """Per-criterion verdicts for one dependency set."""

    sigma: DependencySet
    results: dict[str, CriterionResult] = field(default_factory=dict)

    @property
    def accepted_by(self) -> list[str]:
        return [name for name, r in self.results.items() if r.accepted]

    @property
    def guarantees_all(self) -> bool:
        """Some accepting criterion guarantees CTstd∀."""
        return any(
            r.accepted and r.guarantee is Guarantee.CT_ALL
            for r in self.results.values()
        )

    @property
    def guarantees_exists(self) -> bool:
        """Some accepting criterion guarantees (at least) CTstd∃."""
        return any(r.accepted for r in self.results.values())

    def __str__(self) -> str:
        lines = [f"classification of Σ ({len(self.sigma)} dependencies):"]
        for name, r in self.results.items():
            mark = "✓" if r.accepted else "✗"
            kind = "∀" if r.guarantee is Guarantee.CT_ALL else "∃"
            approx = "" if r.exact else " ~"
            lines.append(
                f"  {mark} {name:<6} (CTstd{kind}){approx}  {r.elapsed_ms:8.1f} ms"
            )
        if self.guarantees_all:
            verdict = "all standard chase sequences terminate"
        elif self.guarantees_exists:
            verdict = "a terminating standard chase sequence exists"
        else:
            verdict = "no criterion applies (termination unknown)"
        lines.append(f"  ⇒ {verdict}")
        return "\n".join(lines)


def classify(
    sigma: DependencySet,
    criteria: list[str] | None = None,
    stop_on_first: bool = False,
) -> ClassificationReport:
    """Run the (selected) criteria on Σ.

    ``criteria`` defaults to every registered criterion in rough cost
    order.  ``stop_on_first`` stops at the first acceptance — useful when
    only the verdict matters.
    """
    names = criteria if criteria is not None else [
        n for n in DEFAULT_ORDER if n in registry()
    ]
    report = ClassificationReport(sigma)
    for name in names:
        result = get_criterion(name).check(sigma)
        report.results[name] = result
        if stop_on_first and result.accepted:
            break
    return report
