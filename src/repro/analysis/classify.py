"""The portfolio runner: run every registered termination criterion on a
dependency set and summarise the verdicts.

This is the top-level entry point a downstream user reaches for first::

    from repro import classify, parse_dependencies
    report = classify(parse_dependencies(text))
    print(report)

The portfolio can run the criteria **concurrently** (``jobs=N``), under
**per-criterion budgets** (``budget_steps`` / ``budget_ms``), and with
**short-circuiting**: cheap static criteria (WA, SC — microseconds)
usually decide the strongest possible headline verdict ("all standard
chase sequences terminate") long before the expensive semantic ones (LS,
S-Str, SAC — the witness engine and adornment saturation behind them)
would finish, so once the headline can no longer improve the remaining
criteria are cancelled cooperatively through their budgets'
:class:`~repro.budget.Cancellation` tokens.

Semantics:

* with short-circuiting **off** (the default), every selected criterion
  runs to completion and the report is verdict-identical whether
  ``jobs=1`` or ``jobs=N`` — criteria are independent and each pair
  decision is deterministic (the shared firing-decision cache only ever
  stores deterministic decisions, see :mod:`repro.firing.relations`);
* with short-circuiting **on**, the *headline* verdict (the ``⇒`` line)
  is always identical to the full portfolio's, but criteria whose result
  could no longer change it are reported as short-circuited instead of
  being run;
* a criterion whose budget blows reports ``exhausted`` — visible in the
  report and in the CLI's exit code 2 — rather than hanging or silently
  masquerading as a trusted rejection.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace

from ..budget import Budget, Cancellation
from ..criteria.base import CriterionResult, Guarantee, get_criterion, registry
from ..firing.relations import (
    current_firing_cache,
    no_firing_cache,
    shared_firing_cache,
)
from ..model.dependencies import DependencySet
from .context import AnalysisContext

#: Criteria ordered roughly by cost (cheap static ones first).
DEFAULT_ORDER = [
    "WA", "SC", "SwA", "AC", "LS", "MSA", "MFA", "CStr", "SR", "IR", "Str", "S-Str", "SAC",
]

#: How the portfolio shares analysis artifacts across criteria:
#:
#: * ``shared`` — one :class:`~repro.analysis.context.AnalysisContext`
#:   per program, every criterion reads artifacts (and firing-edge
#:   decisions) off it;
#: * ``standalone`` — the pre-context reference path: each criterion
#:   rebuilds its own artifacts, sharing only firing-edge decisions
#:   through the scope cache (pinned byte-identical to ``shared`` by the
#:   differential suite, ``tests/test_context_differential.py``);
#: * ``isolated`` — no sharing at all, every criterion recomputes every
#:   probe (the recompute baseline of the shared-context bench).
BACKENDS = ("shared", "standalone", "isolated")

#: Accept-implications that hold *by construction* in this codebase (see
#: the property suite ``tests/test_hierarchy_containments.py``, which is
#: the empirical oracle for this table): if the key accepts (exactly),
#: every value accepts; contrapositively, if a value rejects (exactly),
#: the key rejects.  Every implied criterion's own guarantee is equal to
#: or weaker than the implying criterion's, so an implied acceptance
#: carries the implied criterion's guarantee soundly.
HIERARCHY_IMPLIES = {
    "WA": ("SC", "Str", "CStr"),
    "SC": ("SR",),
    "CStr": ("SR",),
    "SR": ("IR",),
    "AC": ("LS",),
    "MSA": ("MFA",),
}


def _transitive_closure(edges: dict[str, tuple[str, ...]]) -> dict[str, frozenset[str]]:
    closure: dict[str, frozenset[str]] = {}

    def reach(name: str, seen: set[str]) -> set[str]:
        out: set[str] = set()
        for nxt in edges.get(name, ()):
            if nxt not in seen:
                seen.add(nxt)
                out.add(nxt)
                out |= reach(nxt, seen)
        return out

    for name in edges:
        closure[name] = frozenset(reach(name, {name}))
    return closure


#: name → every criterion whose acceptance it implies (transitively).
IMPLIES_CLOSURE = _transitive_closure(HIERARCHY_IMPLIES)


@dataclass
class ClassifyConfig:
    """Tuning knobs of one portfolio run.

    ``budget_steps``/``budget_ms`` are *per criterion*: each criterion
    gets a fresh :class:`~repro.budget.Budget` with these limits, all
    sharing one :class:`~repro.budget.Cancellation` token so the
    portfolio can revoke stragglers.  ``jobs`` sizes the thread pool
    (1 = run inline, sequentially).  ``short_circuit`` cancels criteria
    that can no longer change the headline verdict.  ``backend`` picks
    the artifact-sharing strategy (:data:`BACKENDS`); ``hierarchy``
    enables containment-aware scheduling: a criterion whose verdict is
    already implied (or refuted) by an exact verdict of another criterion
    via :data:`HIERARCHY_IMPLIES` is filled in without running.
    """

    criteria: list[str] | None = None
    jobs: int = 1
    budget_steps: int | None = None
    budget_ms: float | None = None
    short_circuit: bool = False
    stop_on_first: bool = False
    backend: str = "shared"
    hierarchy: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {BACKENDS}"
            )

    def names(self) -> list[str]:
        if self.criteria is not None:
            return list(self.criteria)
        return [n for n in DEFAULT_ORDER if n in registry()]

    def make_budget(self, cancellation: Cancellation) -> Budget | None:
        if (
            self.budget_steps is None
            and self.budget_ms is None
            and not self.short_circuit
            and not self.stop_on_first
        ):
            return None  # nothing to bound, nothing to cancel
        return Budget(
            max_steps=self.budget_steps,
            max_ms=self.budget_ms,
            cancellation=cancellation,
        )


@dataclass
class ClassificationReport:
    """Per-criterion verdicts for one dependency set.

    ``details`` carries run-level metadata next to the per-criterion
    results: the artifact-sharing ``backend``, the shared context's
    artifact/decision cache statistics (``context``), the standalone
    scope cache's statistics (``decisions``), and how many verdicts the
    hierarchy scheduler filled in without running (``implied``).
    """

    sigma: DependencySet
    results: dict[str, CriterionResult] = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    @property
    def accepted_by(self) -> list[str]:
        return [name for name, r in self.results.items() if r.accepted]

    @property
    def guarantees_all(self) -> bool:
        """Some accepting criterion guarantees CTstd∀."""
        return any(
            r.accepted and r.guarantee is Guarantee.CT_ALL
            for r in self.results.values()
        )

    @property
    def guarantees_exists(self) -> bool:
        """Some accepting criterion guarantees (at least) CTstd∃."""
        return any(r.accepted for r in self.results.values())

    @property
    def any_exhausted(self) -> bool:
        """Did some criterion blow its resource budget?

        Criteria the portfolio *chose* not to finish (short-circuited
        once the headline verdict was decided) do not count: only genuine
        budget trouble, where a rejection cannot be trusted.
        """
        return any(
            r.exhausted is not None and not r.skipped
            for r in self.results.values()
        )

    @property
    def verdict(self) -> str:
        if self.guarantees_all:
            return "all standard chase sequences terminate"
        if self.guarantees_exists:
            return "a terminating standard chase sequence exists"
        return "no criterion applies (termination unknown)"

    def __str__(self) -> str:
        lines = [f"classification of Σ ({len(self.sigma)} dependencies):"]
        for name, r in self.results.items():
            if r.skipped:
                lines.append(f"  - {name:<6} (short-circuited)")
                continue
            mark = "✓" if r.accepted else "✗"
            kind = "∀" if r.guarantee is Guarantee.CT_ALL else "∃"
            approx = "" if r.exact else " ~"
            budget = " [budget]" if r.exhausted is not None else ""
            implied = ""
            source = r.details.get("implied_by") or r.details.get("refuted_by")
            if source:
                implied = f" (⇐ {source})"
            lines.append(
                f"  {mark} {name:<6} (CTstd{kind}){approx}{budget}{implied}"
                f"  {r.elapsed_ms:8.1f} ms"
            )
        lines.append(f"  ⇒ {self.verdict}")
        return "\n".join(lines)

    def render_stats(self) -> str:
        """The shared-substrate statistics block (``repro classify --stats``)."""
        lines = [f"backend: {self.details.get('backend', '?')}"]
        implied = self.details.get("implied")
        if implied:
            lines.append(f"hierarchy: {implied} verdict(s) filled in by containment")
        ctx = self.details.get("context")
        decisions = None
        if ctx is not None:
            a = ctx["artifacts"]
            lines.append(
                f"artifacts: {a['entries']} built, {a['hits']} hits / "
                f"{a['misses']} misses (hit rate {a['hit_rate']:.0%}, "
                f"{a['uncached_builds']} uncached builds)"
            )
            decisions = ctx["decisions"]
        if decisions is None:
            decisions = self.details.get("decisions")
        if decisions is not None:
            lines.append(
                f"firing decisions: {decisions['entries']} decided, "
                f"{decisions['hits']} hits / {decisions['misses']} misses "
                f"(hit rate {decisions['hit_rate']:.0%}, "
                f"{decisions['waits']} single-flight waits, "
                f"{decisions['preloaded']} preloaded)"
            )
        return "\n".join(lines)


def _headline_decided(report: ClassificationReport, pending: list[str]) -> list[str]:
    """Which pending criteria can no longer improve the headline verdict?

    Once a CTstd∀ criterion accepts, nothing can improve on "all
    sequences terminate".  Once only the CTstd∃ headline is established,
    further CTstd∃ acceptances change nothing, but CTstd∀ criteria must
    still run.
    """
    if report.guarantees_all:
        return list(pending)
    if report.guarantees_exists:
        return [
            n for n in pending
            if get_criterion(n).guarantee is Guarantee.CT_EXISTS
        ]
    return []


def _short_circuited(name: str, guarantee: Guarantee) -> CriterionResult:
    return CriterionResult(
        criterion=name,
        accepted=False,
        guarantee=guarantee,
        exact=False,
        details={"short_circuited": True},
    )


def _reclassify_cancelled(
    result: CriterionResult, token_cancelled: bool = False
) -> CriterionResult:
    """A run cancelled by the portfolio is a short-circuit, not trouble.

    The cancellation may surface in the result itself (``exhausted``
    says "cancelled") or only in a *nested* budget that absorbed it —
    which the result cannot show, so the caller passes the token state;
    a nested absorption always leaves ``exact=False``, which is how a
    cancelled-mid-run result is told apart from one that genuinely
    completed just as the cancel landed (the latter keeps its trusted
    verdict).  A criterion that *accepted* always keeps its result:
    acceptance is sound no matter when the cancel landed.
    """
    cancelled = (
        result.exhausted is not None
        and result.exhausted.dimension == "cancelled"
    ) or (token_cancelled and not result.accepted and not result.exact)
    if cancelled:
        details = dict(result.details)
        details["short_circuited"] = True
        return replace(result, details=details, exhausted=None, exact=False)
    return result


def _implication_sound(result: CriterionResult) -> bool:
    """May this result seed hierarchy implications?

    Only an exact, budget-clean, actually-run verdict is a theorem-grade
    fact about Σ; approximations and short-circuits imply nothing.
    """
    return result.exact and result.exhausted is None and not result.skipped


def _implied_result(
    name: str, source: CriterionResult, accepted: bool
) -> CriterionResult:
    key = "implied_by" if accepted else "refuted_by"
    return CriterionResult(
        criterion=name,
        accepted=accepted,
        guarantee=get_criterion(name).guarantee,
        exact=True,
        details={key: source.criterion},
    )


def _hierarchy_decided(
    result: CriterionResult, pending: list[str]
) -> list[tuple[str, bool]]:
    """(criterion, accepted) for every pending verdict ``result`` decides.

    An exact acceptance of C decides every pending criterion C implies;
    an exact rejection of C decides (negatively) every pending criterion
    that implies C.
    """
    if not _implication_sound(result):
        return []
    name = result.criterion
    out = []
    for other in pending:
        if result.accepted and other in IMPLIES_CLOSURE.get(name, ()):
            out.append((other, True))
        elif not result.accepted and name in IMPLIES_CLOSURE.get(other, ()):
            out.append((other, False))
    return out


def classify(
    sigma: DependencySet,
    criteria: list[str] | None = None,
    stop_on_first: bool = False,
    jobs: int = 1,
    budget_steps: int | None = None,
    budget_ms: float | None = None,
    short_circuit: bool = False,
    backend: str = "shared",
    hierarchy: bool = False,
    config: ClassifyConfig | None = None,
) -> ClassificationReport:
    """Run the (selected) criteria on Σ.

    ``criteria`` defaults to every registered criterion in rough cost
    order.  ``stop_on_first`` stops at the first acceptance — useful when
    only the verdict matters.  The remaining knobs (or an explicit
    ``config``) select the parallel portfolio and the artifact-sharing
    backend: see :class:`ClassifyConfig`.
    """
    if config is None:
        config = ClassifyConfig(
            criteria=criteria,
            jobs=jobs,
            budget_steps=budget_steps,
            budget_ms=budget_ms,
            short_circuit=short_circuit,
            stop_on_first=stop_on_first,
            backend=backend,
            hierarchy=hierarchy,
        )
    names = config.names()
    report = ClassificationReport(sigma)
    report.details["backend"] = config.backend

    def run(context: AnalysisContext | None) -> None:
        if config.jobs <= 1:
            _run_sequential(sigma, names, config, report, context)
        else:
            _run_parallel(sigma, names, config, report, context)

    if config.backend == "shared":
        # One artifact store for the whole program; it adopts an
        # enclosing scope cache (the batch engine's warm-started one)
        # when present.  The same decision cache is installed as the
        # scope cache so nested analyses (LS's c-stratification of Σα,
        # IR's recursion) share it too.
        context = AnalysisContext(sigma)
        with shared_firing_cache(context.decisions):
            run(context)
        report.details["context"] = context.stats()
    elif config.backend == "standalone":
        # The pre-context reference path: per-criterion artifact rebuilds
        # over one shared firing-decision scope cache.
        with shared_firing_cache(current_firing_cache()) as cache:
            run(None)
        report.details["decisions"] = cache.stats()
    else:  # isolated
        with no_firing_cache():
            run(None)
    implied = sum(
        1
        for r in report.results.values()
        if "implied_by" in r.details or "refuted_by" in r.details
    )
    if implied:
        report.details["implied"] = implied
    # Present results in portfolio order regardless of completion order.
    report.results = {n: report.results[n] for n in names if n in report.results}
    return report


def _run_sequential(
    sigma: DependencySet,
    names: list[str],
    config: ClassifyConfig,
    report: ClassificationReport,
    context: AnalysisContext | None,
) -> None:
    cancellation = Cancellation()
    pending = list(names)
    while pending:
        name = pending.pop(0)
        criterion = get_criterion(name)
        result = criterion.check(
            sigma, budget=config.make_budget(cancellation), context=context
        )
        report.results[name] = result
        if config.stop_on_first and result.accepted:
            return
        if config.hierarchy:
            for other, accepted in _hierarchy_decided(result, pending):
                pending.remove(other)
                report.results[other] = _implied_result(other, result, accepted)
        if config.short_circuit:
            for skipped in _headline_decided(report, pending):
                pending.remove(skipped)
                report.results[skipped] = _short_circuited(
                    skipped, get_criterion(skipped).guarantee
                )


def _run_parallel(
    sigma: DependencySet,
    names: list[str],
    config: ClassifyConfig,
    report: ClassificationReport,
    context: AnalysisContext | None,
) -> None:
    import contextvars

    tokens = {name: Cancellation() for name in names}

    def worker(name: str) -> CriterionResult:
        return get_criterion(name).check(
            sigma, budget=config.make_budget(tokens[name]), context=context
        )

    # Submission is *lazy*: at most ``jobs`` criteria are in flight, so
    # the short-circuit decision taken after each completion can spare
    # the expensive criteria from ever starting.  (Submitting everything
    # upfront would let idle workers race into LS/S-Str/SAC while the
    # cheap acceptances that make them irrelevant are still being
    # collected.)
    queue = list(names)
    running: dict = {}

    def drop_queued(name: str) -> None:
        queue.remove(name)
        report.results[name] = _short_circuited(
            name, get_criterion(name).guarantee
        )

    with ThreadPoolExecutor(max_workers=config.jobs) as pool:
        while queue or running:
            while queue and len(running) < config.jobs:
                name = queue.pop(0)
                # Each task gets its own context copy so the shared
                # firing cache (a contextvar) installed by classify() is
                # visible in the worker thread.
                ctx = contextvars.copy_context()
                running[pool.submit(ctx.run, worker, name)] = name
            done, _ = wait(running, return_when=FIRST_COMPLETED)
            accepted = False
            for fut in done:
                name = running.pop(fut)
                result = _reclassify_cancelled(
                    fut.result(), tokens[name].cancelled
                )
                report.results[name] = result
                accepted = accepted or result.accepted
                if config.hierarchy:
                    # Containment fills in still-queued criteria; lazy
                    # submission makes this spare them from ever starting
                    # (in-flight ones are left to finish: their real
                    # verdict is at most as informative, never wrong).
                    for other, implied in _hierarchy_decided(result, queue):
                        queue.remove(other)
                        report.results[other] = _implied_result(
                            other, result, implied
                        )
            if config.stop_on_first and accepted:
                for name in list(queue):
                    drop_queued(name)
                for token in tokens.values():
                    token.cancel()
            elif config.short_circuit:
                pending = list(queue) + list(running.values())
                for name in _headline_decided(report, pending):
                    if name in queue:
                        drop_queued(name)
                    else:
                        tokens[name].cancel()  # collected on completion
        # Cancelled runs are reclassified as short-circuited by
        # _reclassify_cancelled when their futures complete above.
