"""Dependency satisfaction and violation enumeration.

``K ⊨ r`` in the standard first-order sense:

* TGD ``ϕ → ∃z ψ``: every homomorphism from the body into K extends to a
  homomorphism of body ∧ head into K;
* EGD ``ϕ → x1 = x2``: every homomorphism h from the body into K has
  ``h(x1) = h(x2)``.

The firing relations additionally need *instantiated* satisfaction
``K ⊨ h(r)`` for a fixed homomorphism h (Section 5): the dependency with its
body already instantiated by h.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.instances import Instance
from ..model.terms import Term
from .finder import Homomorphism, find_homomorphism, find_homomorphisms


def satisfies_tgd(instance: Instance, tgd: TGD, body_hom: Mapping[Term, Term]) -> bool:
    """Does ``body_hom`` (a body→instance homomorphism) extend to the head?"""
    return (
        find_homomorphism(tgd.head, instance, seed=dict(body_hom), frozen_nulls=True)
        is not None
    )


def violations(
    instance: Instance,
    dep: AnyDependency,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate violating homomorphisms of ``dep`` in ``instance``.

    For a TGD: body homomorphisms with no head extension.  For an EGD: body
    homomorphisms with distinct images of the two equality variables.

    Nulls never occur in dependencies, so the source contains only variables
    and constants; the target instance's nulls are plain values.
    """
    count = 0
    if isinstance(dep, TGD):
        for h in find_homomorphisms(dep.body, instance, limit=None):
            if not satisfies_tgd(instance, dep, h):
                yield h
                count += 1
                if limit is not None and count >= limit:
                    return
    else:
        for h in find_homomorphisms(dep.body, instance, limit=None):
            if h[dep.lhs] is not h[dep.rhs]:
                yield h
                count += 1
                if limit is not None and count >= limit:
                    return


def satisfies(instance: Instance, dep: AnyDependency) -> bool:
    """``K ⊨ r``."""
    for _ in violations(instance, dep, limit=1):
        return False
    return True


def satisfies_all(instance: Instance, sigma: DependencySet) -> bool:
    """``K ⊨ Σ``."""
    return all(satisfies(instance, d) for d in sigma)


def satisfies_instantiated(
    instance: Instance,
    dep: AnyDependency,
    h: Mapping[Term, Term],
) -> bool:
    """``K ⊨ h(r)``: satisfaction of the dependency instantiated by ``h``.

    ``h`` must be defined on all body variables of ``dep``; its image terms
    are constants/nulls.  For a TGD, ``K ⊨ h(r)`` iff ``h(Body) ⊄ K`` or the
    (instantiated) head has an extension in ``K``.  For an EGD, iff
    ``h(Body) ⊄ K`` or ``h(x1) = h(x2)``.
    """
    inst_body = [a.apply(h) for a in dep.body]
    if not all(a in instance for a in inst_body):
        return True
    if isinstance(dep, EGD):
        return h[dep.lhs] is h[dep.rhs]
    # TGD: look for an extension of h to the head; universal variables are
    # already instantiated by h, existential ones are free.
    seed = {v: h[v] for v in dep.frontier()}
    return (
        find_homomorphism(dep.head, instance, seed=seed, frozen_nulls=True) is not None
    )


def violating_dependencies(
    instance: Instance, sigma: DependencySet
) -> list[AnyDependency]:
    """The dependencies of Σ not satisfied by the instance."""
    return [d for d in sigma if not satisfies(instance, d)]


def is_model(instance: Instance, db: Instance, sigma: DependencySet) -> bool:
    """Is ``instance`` a model of (D, Σ): finite, contains D, satisfies Σ?"""
    if not all(f in instance for f in db):
        return False
    return satisfies_all(instance, sigma)


def head_instantiation(
    tgd: TGD, h: Mapping[Term, Term], fresh: "Iterator[Term] | None" = None
) -> list[Atom]:
    """``h'(ψ(x, z))``: the head with universals instantiated by ``h`` and a
    caller-supplied stream of fresh terms for the existentials.

    Used by chase steps and by the firing-relation witness engine.
    """
    mapping: dict[Term, Term] = {v: h[v] for v in tgd.frontier()}
    if tgd.existential:
        if fresh is None:
            raise ValueError("existential TGD needs fresh terms")
        for z in tgd.existential:
            mapping[z] = next(fresh)
    return [a.apply(mapping) for a in tgd.head]
