"""Homomorphism search between sets of atoms.

A homomorphism from a set of atoms ``A1`` to a set of atoms ``A2`` is a
mapping ``h : Dom(A1) → Dom(A2)`` with ``h(c) = c`` for every constant and
``R(h(t)) ∈ A2`` for every ``R(t) ∈ A1`` (Section 2).

The finder is a backtracking CSP search:

* atoms of the source are ordered most-constrained-first (fewest candidate
  target facts given the current partial assignment);
* the target's predicate index provides candidate facts;
* a partial seed mapping supports *extension* homomorphisms, which the
  standard chase's applicability test and EGD satisfaction checks need.

Nulls in the **source** behave like variables (they may map anywhere) unless
``frozen_nulls`` is set — the universal-model check maps nulls freely, while
instance containment ``A1 ⊆ A2`` wants them rigid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable


Homomorphism = dict[Term, Term]


class _Target:
    """Uniform view of the target: an Instance or a plain collection."""

    __slots__ = ("by_predicate",)

    def __init__(self, target: Instance | Iterable[Atom]) -> None:
        if isinstance(target, Instance):
            self.by_predicate = {p: target.with_predicate(p) for p in target.predicates()}
        else:
            by_pred: dict[str, set[Atom]] = {}
            for a in target:
                by_pred.setdefault(a.predicate, set()).add(a)
            self.by_predicate = by_pred

    def candidates(self, predicate: str) -> set[Atom]:
        return self.by_predicate.get(predicate, set())


def _is_flexible(term: Term, frozen_nulls: bool) -> bool:
    """Can this source term be (re)mapped?  Variables always; nulls unless
    frozen; constants never."""
    if isinstance(term, Variable):
        return True
    if isinstance(term, Null):
        return not frozen_nulls
    return False


def _match_atom(
    atom: Atom,
    fact: Atom,
    mapping: Homomorphism,
    frozen_nulls: bool,
) -> Homomorphism | None:
    """Try to extend ``mapping`` so that ``atom`` maps onto ``fact``.

    Returns the (new) extension dict or None.  The input mapping is not
    modified.
    """
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    added: Homomorphism = {}
    for s, t in zip(atom.args, fact.args):
        if _is_flexible(s, frozen_nulls):
            bound = mapping.get(s) or added.get(s)
            if bound is None:
                added[s] = t
            elif bound is not t:
                return None
        else:
            # Rigid: constants (and frozen nulls) must match exactly.
            if s is not t:
                return None
    return added


def find_homomorphisms(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = 1,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` atoms into ``target``.

    ``seed`` fixes the image of some terms in advance (extension search).
    ``limit`` bounds how many homomorphisms are yielded (None = all).
    The yielded dicts map every flexible term of the source (and include the
    seed entries).
    """
    tgt = target if isinstance(target, _Target) else _Target(target)
    mapping: Homomorphism = dict(seed) if seed else {}

    # Check rigid consistency of seed-free constants up front: constants in
    # the source must not be seeded to something else.
    for k, v in list(mapping.items()):
        if isinstance(k, Constant) and k is not v:
            return  # no homomorphism can remap a constant

    atoms = list(source)
    if not atoms:
        yield dict(mapping)
        return

    count = 0

    def candidate_count(atom: Atom) -> int:
        return len(tgt.candidates(atom.predicate))

    # Static order: fewest candidates first; dynamic refinement happens via
    # the bound-variable filter inside the recursion.
    atoms.sort(key=candidate_count)

    def recurse(idx: int) -> Iterator[Homomorphism]:
        nonlocal count
        if idx == len(atoms):
            yield dict(mapping)
            return
        atom = atoms[idx]
        for fact in tgt.candidates(atom.predicate):
            added = _match_atom(atom, fact, mapping, frozen_nulls)
            if added is None:
                continue
            mapping.update(added)
            yield from recurse(idx + 1)
            for k in added:
                del mapping[k]

    for h in recurse(0):
        yield h
        count += 1
        if limit is not None and count >= limit:
            return


def find_homomorphism(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
) -> Homomorphism | None:
    """First homomorphism or None."""
    for h in find_homomorphisms(source, target, seed, frozen_nulls, limit=1):
        return h
    return None


def has_homomorphism(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
) -> bool:
    """Existence check (first homomorphism only)."""
    return find_homomorphism(source, target, seed, frozen_nulls) is not None


def homomorphic_image(atoms: Iterable[Atom], h: Mapping[Term, Term]) -> list[Atom]:
    """``h(A)`` per the paper: apply ``h`` to a set of atoms."""
    return [a.apply(h) for a in atoms]


def instance_maps_into(a: Instance, b: Instance) -> Homomorphism | None:
    """A homomorphism from instance ``a`` into instance ``b`` (nulls flexible,
    constants fixed), or None.  This is the homomorphism notion used for
    universal models."""
    return find_homomorphism(sorted(a, key=str), b)


def homomorphically_equivalent(a: Instance, b: Instance) -> bool:
    """True iff homomorphisms exist both ways."""
    return instance_maps_into(a, b) is not None and instance_maps_into(b, a) is not None
