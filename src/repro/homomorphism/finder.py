"""Homomorphism search between sets of atoms.

A homomorphism from a set of atoms ``A1`` to a set of atoms ``A2`` is a
mapping ``h : Dom(A1) → Dom(A2)`` with ``h(c) = c`` for every constant and
``R(h(t)) ∈ A2`` for every ``R(t) ∈ A1`` (Section 2).

The search itself lives in :mod:`repro.matching`: by default the indexed
engine (dynamic most-constrained-first atom selection, candidate pools from
``(predicate, position, term)`` bucket intersection), with the seed's naive
algorithm retained as a switchable reference backend — see
``repro.matching.config``.  This module keeps the stable public API:

* a partial seed mapping supports *extension* homomorphisms, which the
  standard chase's applicability test and EGD satisfaction checks need;
* nulls in the **source** behave like variables (they may map anywhere)
  unless ``frozen_nulls`` is set — the universal-model check maps nulls
  freely, while instance containment ``A1 ⊆ A2`` wants them rigid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..matching import Homomorphism, homomorphisms
from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable

__all__ = [
    "Homomorphism",
    "find_homomorphism",
    "find_homomorphisms",
    "has_homomorphism",
    "homomorphic_image",
    "homomorphically_equivalent",
    "instance_maps_into",
]


def find_homomorphisms(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = 1,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` atoms into ``target``.

    ``seed`` fixes the image of some terms in advance (extension search).
    ``limit`` bounds how many homomorphisms are yielded (None = all).
    The yielded dicts map every flexible term of the source (and include the
    seed entries).
    """
    return homomorphisms(source, target, seed, frozen_nulls, limit)


def find_homomorphism(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
) -> Homomorphism | None:
    """First homomorphism or None."""
    for h in find_homomorphisms(source, target, seed, frozen_nulls, limit=1):
        return h
    return None


def has_homomorphism(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
) -> bool:
    """Existence check (first homomorphism only)."""
    return find_homomorphism(source, target, seed, frozen_nulls) is not None


def homomorphic_image(atoms: Iterable[Atom], h: Mapping[Term, Term]) -> list[Atom]:
    """``h(A)`` per the paper: apply ``h`` to a set of atoms."""
    return [a.apply(h) for a in atoms]


def _term_order(term: Term) -> tuple:
    """A total, deterministic order on fact terms without stringification.

    Constants sort before nulls before variables; within a kind the
    identifying attribute decides (constant values are partitioned by
    type name first, so mixed ``int``/``str`` values never hit an
    unorderable comparison).
    """
    if isinstance(term, Constant):
        value = term.value
        if not isinstance(value, (str, int, float, bool)):
            # Exotic values: rare, but keep the order total.  The "~"
            # kind tag (no type is named that) keeps a repr from ever
            # tying with a genuine string constant of the same spelling.
            return (0, "~" + type(value).__name__, repr(value))
        return (0, type(value).__name__, value)
    if isinstance(term, Null):
        return (1, "", term.label)
    assert isinstance(term, Variable)
    return (2, "", term.name)


def _atom_order(atom: Atom) -> tuple:
    """Deterministic structural sort key for atoms (hot path: called once
    per source atom of every containment check — ``key=str`` used to
    rebuild the full rendered string here every time)."""
    return (atom.predicate, atom.arity, tuple(_term_order(t) for t in atom.args))


def instance_maps_into(a: Instance, b: Instance) -> Homomorphism | None:
    """A homomorphism from instance ``a`` into instance ``b`` (nulls flexible,
    constants fixed), or None.  This is the homomorphism notion used for
    universal models.

    The source atoms are sorted (structurally, not by rendered string) so
    the search — and hence the returned homomorphism — is deterministic
    regardless of the instances' insertion order.
    """
    return find_homomorphism(sorted(a, key=_atom_order), b)


def homomorphically_equivalent(a: Instance, b: Instance) -> bool:
    """True iff homomorphisms exist both ways."""
    return instance_maps_into(a, b) is not None and instance_maps_into(b, a) is not None
