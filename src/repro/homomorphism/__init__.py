"""Homomorphism search, dependency satisfaction, and core computation."""

from .cores import CoreBudgetExceeded, core, core_of_atoms, is_core
from .finder import (
    Homomorphism,
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
    homomorphic_image,
    homomorphically_equivalent,
    instance_maps_into,
)
from .satisfaction import (
    head_instantiation,
    is_model,
    satisfies,
    satisfies_all,
    satisfies_instantiated,
    satisfies_tgd,
    violating_dependencies,
    violations,
)

__all__ = [
    "CoreBudgetExceeded",
    "core",
    "core_of_atoms",
    "is_core",
    "Homomorphism",
    "find_homomorphism",
    "find_homomorphisms",
    "has_homomorphism",
    "homomorphic_image",
    "homomorphically_equivalent",
    "instance_maps_into",
    "head_instantiation",
    "is_model",
    "satisfies",
    "satisfies_all",
    "satisfies_instantiated",
    "satisfies_tgd",
    "violating_dependencies",
    "violations",
]
