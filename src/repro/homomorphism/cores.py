"""Core computation.

A subset ``C`` of an instance ``J`` is a *core* of ``J`` if there is a
homomorphism from ``J`` to ``C`` but none from ``J`` to any proper subset of
``C`` (Section 2).  Cores are unique up to isomorphism.

The algorithm used here is iterated retraction: repeatedly look for a null
``η`` such that ``J`` maps homomorphically into the sub-instance of facts
not mentioning ``η`` (constants fixed, nulls flexible); replace ``J`` by
that homomorphic image and repeat.  When no null can be eliminated the
instance is its own core.  This is complete: a non-core instance always
admits a retraction eliminating at least one null (Fagin–Kolaitis–Popa,
"Data exchange: getting to the core").

Each retraction is applied *in place* in O(facts touched): the retraction
homomorphism only moves the facts mentioning a moved null, so rewriting
those through ``discard``/``add`` beats the full ``Instance.apply``
rebuild the seed performed per round.  ``core(fresh=False)`` extends the
same economy to the caller: the input itself is consumed (the core chase
runs it under an :meth:`Instance.savepoint` scope, so a blown budget
rolls back cleanly), while the default ``fresh=True`` keeps the
historical contract — the input is never modified and the result is
always a fresh instance.

Core computation is NP-hard in general; this implementation is exact, with a
configurable search budget so callers can treat blow-ups like timeouts.
"""

from __future__ import annotations

from typing import Iterable

from ..matching.engine import Homomorphism
from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Null
from .finder import find_homomorphisms


class CoreBudgetExceeded(Exception):
    """Raised when the retraction search exceeds its budget."""


class _BudgetedSearch:
    """Counts homomorphism attempts across rounds against one budget."""

    __slots__ = ("remaining",)

    def __init__(self, budget: int) -> None:
        self.remaining = budget

    def charge(self, amount: int = 1) -> None:
        self.remaining -= amount
        if self.remaining < 0:
            raise CoreBudgetExceeded


def _find_retraction(
    instance: Instance, victim: Null, search: _BudgetedSearch
) -> Homomorphism | None:
    """A homomorphism retracting ``instance`` into its victim-free part,
    or None.  Pure — the instance is not modified."""
    target_facts = [f for f in instance if victim not in f.args]
    if len(target_facts) == len(instance):
        # The victim occurs in no fact (cannot happen with indexes in sync),
        # nothing to eliminate.
        return None
    source = sorted(instance, key=str)
    search.charge(len(source))
    for h in find_homomorphisms(source, target_facts, limit=1):
        return h
    return None


def _apply_retraction(instance: Instance, h: Homomorphism) -> None:
    """Replace ``instance`` by its image under ``h`` **in place**.

    Only the facts mentioning a moved null change, so the cost is
    O(facts touched), not O(|I|).  ``h`` is a *simultaneous* substitution:
    every affected fact is discarded before any image is added, otherwise
    an image colliding with a not-yet-rewritten fact would be lost.
    """
    moved = [t for t, img in h.items() if isinstance(t, Null) and img is not t]
    affected: set[Atom] = set()
    for n in moved:
        affected |= instance.with_term(n)
    images = [f.apply(h) for f in affected]
    for f in affected:
        instance.discard(f)
    instance.add_all(images)


def core(
    instance: Instance, budget: int = 2_000_000, fresh: bool = True
) -> Instance:
    """Compute ``core(J)``.

    ``budget`` roughly caps the work done across retraction rounds;
    :class:`CoreBudgetExceeded` is raised when exhausted (callers treat this
    like a timeout).  With ``fresh`` (the default) the input is never
    modified and the result is a new instance; ``fresh=False`` consumes
    the input in place and returns it — the caller owns any transactional
    scope around it.
    """
    search = _BudgetedSearch(budget)
    current = instance
    progress = True
    while progress:
        progress = False
        for victim in sorted(current.nulls(), key=lambda n: n.label):
            h = _find_retraction(current, victim, search)
            if h is not None:
                if fresh and current is instance:
                    current = instance.copy()
                _apply_retraction(current, h)
                progress = True
                break
    if fresh and current is instance:
        return instance.copy()
    return current


def is_core(instance: Instance, budget: int = 2_000_000) -> bool:
    """True iff the instance admits no proper retraction."""
    search = _BudgetedSearch(budget)
    for victim in sorted(instance.nulls(), key=lambda n: n.label):
        if _find_retraction(instance, victim, search) is not None:
            return False
    return True


def core_of_atoms(atoms: Iterable[Atom], budget: int = 2_000_000) -> Instance:
    """Convenience wrapper for raw atom collections."""
    return core(Instance(atoms), budget=budget)
