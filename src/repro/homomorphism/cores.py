"""Core computation.

A subset ``C`` of an instance ``J`` is a *core* of ``J`` if there is a
homomorphism from ``J`` to ``C`` but none from ``J`` to any proper subset of
``C`` (Section 2).  Cores are unique up to isomorphism.

The algorithm used here is iterated retraction: repeatedly look for a null
``η`` such that ``J`` maps homomorphically into the sub-instance of facts
not mentioning ``η`` (constants fixed, nulls flexible); replace ``J`` by
that homomorphic image and repeat.  When no null can be eliminated the
instance is its own core.  This is complete: a non-core instance always
admits a retraction eliminating at least one null (Fagin–Kolaitis–Popa,
"Data exchange: getting to the core").

Core computation is NP-hard in general; this implementation is exact, with a
configurable search budget so callers can treat blow-ups like timeouts.
"""

from __future__ import annotations

from typing import Iterable

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Null
from .finder import find_homomorphisms


class CoreBudgetExceeded(Exception):
    """Raised when the retraction search exceeds its budget."""


class _BudgetedSearch:
    """Counts homomorphism attempts across rounds against one budget."""

    __slots__ = ("remaining",)

    def __init__(self, budget: int) -> None:
        self.remaining = budget

    def charge(self, amount: int = 1) -> None:
        self.remaining -= amount
        if self.remaining < 0:
            raise CoreBudgetExceeded


def _try_eliminate(instance: Instance, victim: Null, search: _BudgetedSearch) -> Instance | None:
    """Retract ``instance`` into its victim-free part if possible."""
    target_facts = [f for f in instance if victim not in f.args]
    if len(target_facts) == len(instance):
        # The victim occurs in no fact (cannot happen with indexes in sync),
        # nothing to eliminate.
        return None
    source = sorted(instance, key=str)
    search.charge(len(source))
    for h in find_homomorphisms(source, target_facts, limit=1):
        return instance.apply(h)
    return None


def core(instance: Instance, budget: int = 2_000_000) -> Instance:
    """Compute ``core(J)``.

    ``budget`` roughly caps the work done across retraction rounds;
    :class:`CoreBudgetExceeded` is raised when exhausted (callers treat this
    like a timeout).
    """
    current = instance.copy()
    search = _BudgetedSearch(budget)
    progress = True
    while progress:
        progress = False
        for victim in sorted(current.nulls(), key=lambda n: n.label):
            smaller = _try_eliminate(current, victim, search)
            if smaller is not None:
                current = smaller
                progress = True
                break
    return current


def is_core(instance: Instance, budget: int = 2_000_000) -> bool:
    """True iff the instance admits no proper retraction."""
    search = _BudgetedSearch(budget)
    for victim in sorted(instance.nulls(), key=lambda n: n.label):
        if _try_eliminate(instance, victim, search) is not None:
            return False
    return True


def core_of_atoms(atoms: Iterable[Atom], budget: int = 2_000_000) -> Instance:
    """Convenience wrapper for raw atom collections."""
    return core(Instance(atoms), budget=budget)
