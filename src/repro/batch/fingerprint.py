"""Canonical content fingerprints for dependency sets.

The batch engine's result cache is *content addressed*: a program is
keyed not by its file name or its corpus position but by a fingerprint of
its structure, so renaming a predicate or a variable, or reordering the
dependencies, still hits the cache.  The fingerprint must therefore be

* **invariant** under variable renaming (per dependency), predicate
  renaming (a schema-wide bijection) and dependency reordering — the
  transformations under which every termination verdict is itself
  invariant (criteria only look at structure; the metamorphic suite in
  ``tests/test_metamorphic.py`` checks this verdict invariance on
  hundreds of seeded programs, which is what makes keying results by
  the fingerprint *sound*);
* **stable** across processes and Python versions (no builtin ``hash``,
  which is salted per process) — the cache is an on-disk artefact.

The construction follows the same idea as the adornment livelock
detector's state fingerprint (``AdornmentAlgorithm._state_fingerprint``):
replace every renameable symbol by a canonical stand-in computed from
structure alone, then hash the result.  Variables are easy — within one
dependency they are numbered by first occurrence.  Predicates span
dependencies, so they are canonicalised by **colour refinement** (1-WL
over the "occurs in" bipartite graph between predicates and
dependencies): every predicate starts with a colour derived from its
arity and occurrence counts, then is repeatedly re-coloured with the
multiset of (colour-encoded) dependencies it occurs in, until the colour
partition stabilises.  The final fingerprint hashes the *sorted set* of
colour-encoded dependencies — alpha-equivalent duplicates are collapsed
first (:func:`_alpha_unique`), so the key names the constraint set
rather than its spelling.

Like every WL-style scheme this is complete for the transformations
above (isomorphic programs always collide, by construction) and only
*almost* injective in the other direction: two non-isomorphic programs
whose predicates refine to identical colour partitions and whose
dependency encodings agree (e.g. two disjoint 3-cycles of copy rules vs
one 6-cycle) share a fingerprint.  DESIGN.md §4 discusses why this is an
acceptable trade for a result cache; no such pair arises in the
synthetic corpus, and the differential cache tests would catch one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Iterable, Mapping, TypeVar

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.terms import Constant, Variable

#: Bump when the fingerprint construction changes: old cache entries are
#: keyed by old fingerprints and silently become unreachable (which is
#: exactly the invalidation we want).
FINGERPRINT_VERSION = 1


def stable_hash(obj: object) -> str:
    """A process-stable hash of a JSON-serialisable structure.

    The first 16 hex digits of SHA-256 over the canonical JSON encoding:
    collision-safe far beyond any corpus size while keeping keys short.
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- per-dependency encoding ---------------------------------------------------


def _term_code(term: object, var_ids: dict[int, int]) -> list:
    if isinstance(term, Variable):
        # ``var_ids`` is keyed by the interned term id (an int, cheap to
        # hash) rather than the Variable object; the *values* are still
        # first-occurrence ordinals, so the emitted code — and hence the
        # persisted fingerprint — is identical to the object-keyed
        # construction and independent of tid allocation order.
        tid = term.tid
        num = var_ids.get(tid)
        if num is None:
            num = var_ids[tid] = len(var_ids)
        return ["v", num]
    if isinstance(term, Constant):
        # Constants are *not* renameable: two programs differing only in
        # a constant are different programs (criteria may treat repeated
        # constants specially), so the value enters verbatim.
        return ["c", repr(term.value)]
    raise TypeError(f"unexpected term in a dependency: {term!r}")


def _atom_code(atom: Atom, colours: dict[str, str], var_ids: dict[int, int]) -> list:
    return [colours[atom.predicate], [_term_code(t, var_ids) for t in atom.args]]


def _dependency_code(dep: AnyDependency, colours: dict[str, str]) -> list:
    """One dependency with predicates replaced by colours and variables
    canonically numbered by first occurrence (body before head).

    Atom order within body/head is kept: it is part of dependency
    identity (``TGD.__eq__`` compares tuples) and is untouched by the
    renaming/reordering transformations the fingerprint must absorb.
    """
    var_ids: dict[int, int] = {}
    body = [_atom_code(a, colours, var_ids) for a in dep.body]
    if isinstance(dep, TGD):
        head = [_atom_code(a, colours, var_ids) for a in dep.head]
        ex = [var_ids[v.tid] for v in dep.existential]
        return ["tgd", body, head, ex]
    assert isinstance(dep, EGD)
    return ["egd", body, var_ids[dep.lhs.tid], var_ids[dep.rhs.tid]]


# -- alpha-deduplication ---------------------------------------------------------


def _alpha_unique(sigma: DependencySet) -> list[AnyDependency]:
    """Σ with alpha-equivalent duplicates collapsed.

    ``DependencySet`` dedupes *syntactic* duplicates; two dependencies
    differing only in variable names (``P(x) → ∃z P(z)`` twice, spelled
    with different variables) still count twice there, yet state the same
    constraint.  The fingerprint keys the constraint set, not its
    spelling, so duplicates are dropped before any occurrence counting —
    otherwise a renaming that happens to collapse two spellings would
    change the key.
    """
    identity = {p: p for p in sigma.predicates()}
    seen: set[str] = set()
    out: list[AnyDependency] = []
    for dep in sigma:
        code = json.dumps(_dependency_code(dep, identity), sort_keys=True)
        if code not in seen:
            seen.add(code)
            out.append(dep)
    return out


# -- predicate colour refinement -----------------------------------------------


def _initial_colours(sigma: Iterable[AnyDependency]) -> dict[str, str]:
    """Seed colours from renaming-invariant local statistics."""
    stats: dict[str, list[int]] = {}

    def touch(pred: str, arity: int, slot: int) -> None:
        s = stats.setdefault(pred, [arity, 0, 0, 0, 0])
        s[slot] += 1

    for dep in sigma:
        for a in dep.body:
            touch(a.predicate, a.arity, 2 if isinstance(dep, EGD) else 1)
        if isinstance(dep, TGD):
            ex = set(dep.existential)
            for a in dep.head:
                carries_null = any(t in ex for t in a.args)
                touch(a.predicate, a.arity, 4 if carries_null else 3)
    return {p: stable_hash(["init", s]) for p, s in stats.items()}


_K = TypeVar("_K")


def colour_refine(
    initial: Mapping[_K, str],
    contexts: Callable[[dict[_K, str]], Mapping[_K, object]],
) -> dict[_K, str]:
    """Generic 1-WL colour refinement, run until the partition stabilises.

    ``initial`` maps each item to a seed colour string; ``contexts`` is a
    callable that, given the current colouring, returns a dict mapping
    every item to a JSON-encodable (and already canonically ordered)
    context.  Each round recolours ``item ← stable_hash([colour,
    context])``; refinement stops when a round no longer splits the
    colour partition (at most |items| rounds, usually two or three).

    Shared machinery: :func:`predicate_colours` refines *predicate*
    colours over the occurs-in structure of a dependency set, and the
    chase explorer's ``canonical_key`` reuses the same loop to refine
    *labelled-null* colours over the occurs-in structure of an instance
    state (see ``repro.chase.explorer``).
    """
    colours = dict(initial)
    classes = len(set(colours.values()))
    for _ in range(max(1, len(colours))):
        ctx = contexts(colours)
        refined = {k: stable_hash([colours[k], ctx[k]]) for k in colours}
        refined_classes = len(set(refined.values()))
        colours = refined
        if refined_classes == classes:
            break
        classes = refined_classes
    return colours


def _predicate_contexts(
    sigma: Iterable[AnyDependency], colours: dict[str, str]
) -> dict[str, list]:
    """One round's contexts: the multiset of (role, dependency) occurrences."""
    contexts: dict[str, list] = {p: [] for p in colours}
    for dep in sigma:
        code = _dependency_code(dep, colours)
        atoms: tuple[Atom, ...] = dep.body
        role = ["b"] * len(dep.body)
        if isinstance(dep, TGD):
            atoms = atoms + dep.head
            role += ["h"] * len(dep.head)
        for r, a in zip(role, atoms):
            contexts[a.predicate].append([r, code])
    for ctx in contexts.values():
        ctx.sort(key=lambda c: json.dumps(c, sort_keys=True))
    return contexts


def predicate_colours(sigma: Iterable[AnyDependency]) -> dict[str, str]:
    """The stable colouring: refinement run until the partition stops
    splitting (at most |predicates| rounds, usually two or three)."""
    deps = list(sigma)
    return colour_refine(
        _initial_colours(deps), lambda colours: _predicate_contexts(deps, colours)
    )


# -- the fingerprint -----------------------------------------------------------


def canonical_fingerprint(sigma: DependencySet | Iterable[AnyDependency]) -> str:
    """The content-addressed cache key of a program.

    Invariant under per-dependency variable renaming, schema-wide
    predicate renaming and dependency reordering — including renamings
    that collapse alpha-equivalent duplicates (see :func:`_alpha_unique`)
    — and stable across processes.  Labels are ignored (they are
    presentation, not content).
    """
    if not isinstance(sigma, DependencySet):
        sigma = DependencySet(sigma)
    deps = _alpha_unique(sigma)
    colours = predicate_colours(deps)
    codes = sorted(
        json.dumps(_dependency_code(d, colours), sort_keys=True) for d in deps
    )
    return stable_hash([FINGERPRINT_VERSION, codes])
