"""The on-disk, content-addressed result cache of the batch engine.

One cache is one directory holding ``results.jsonl``: an append-only log
of evaluation records, one JSON object per line (via
:func:`repro.io.jsonl_dumps`).  Append-only is what makes the cache
crash-safe and resumable — an interrupted run leaves at worst one
truncated final line, which the loader counts and skips — and JSONL keeps
it greppable and diffable.

Every line carries three envelope fields next to the payload:

* ``schema`` — :data:`SCHEMA_VERSION`; entries written under another
  version are *stale* and ignored on load (bumping the constant is the
  cache-wide invalidation switch — required whenever the record payload
  or the evaluation semantics behind it change);
* ``key`` — the program's canonical content fingerprint
  (:func:`repro.batch.fingerprint.canonical_fingerprint`);
* ``params`` — a fingerprint of every evaluation parameter that affects
  the result (mode, chase steps, budgets).  A hit requires key *and*
  params to match: re-running with a different budget never reuses a
  verdict obtained under the old one.

Duplicate keys can legitimately occur (two interleaved runs, or a
``put`` racing a crash); the loader keeps the *last* record, matching
"the log is the truth, later writes win".
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import IO

from ..io import iter_jsonl, jsonl_dumps

#: Version of the cache record schema *and* of the evaluation semantics
#: producing the payloads.  Any change to either must bump this.
SCHEMA_VERSION = 1

_RESULTS_NAME = "results.jsonl"


@dataclass
class CacheStats:
    """What happened while loading and serving one cache."""

    loaded: int = 0          # live entries available after load
    corrupted: int = 0       # unparseable lines skipped
    stale_schema: int = 0    # entries under another SCHEMA_VERSION
    hits: int = 0
    misses: int = 0
    params_misses: int = 0   # key present but evaluated under other params

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Load-once, append-forever view of one cache directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries = {}
        self._fh = None
        self._load()

    @property
    def path(self) -> pathlib.Path:
        return self.directory / _RESULTS_NAME

    def _load(self) -> None:
        if not self.path.exists():
            return
        for _, record in iter_jsonl(self.path.read_text()):
            if record is None:
                self.stats.corrupted += 1
                continue
            if record.get("schema") != SCHEMA_VERSION:
                self.stats.stale_schema += 1
                continue
            key = record.get("key")
            if not isinstance(key, str):
                self.stats.corrupted += 1
                continue
            self._entries[key] = record
        self.stats.loaded = len(self._entries)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, params: str) -> dict | None:
        """The cached payload for ``(key, params)``, or None (a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.get("params") != params:
            self.stats.misses += 1
            self.stats.params_misses += 1
            return None
        self.stats.hits += 1
        return entry["record"]

    def put(self, key: str, params: str, record: dict) -> None:
        """Append one record and make it immediately visible and durable.

        Durability is per line: the line is flushed before ``put``
        returns, so a later SIGINT cannot lose it — this is what lets an
        interrupted batch run resume exactly where it stopped.
        """
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "params": params,
            "record": record,
        }
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(jsonl_dumps(entry) + "\n")
        self._fh.flush()
        self._entries[key] = entry

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, {len(self)} entries)"
