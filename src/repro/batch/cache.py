"""The on-disk, content-addressed result cache of the batch engine.

One cache is one directory, persisted by a selectable
:mod:`repro.store` backend:

* ``sqlite`` (default) — the embedded ``store.sqlite`` (WAL,
  ``synchronous=NORMAL``, ``busy_timeout``; DESIGN.md §7).  Opens in
  O(1), serves point lookups and the filter/sort/paginate query surface
  from indexes, and tolerates concurrent writer processes.  A legacy
  JSONL directory migrates itself on first open.
* ``jsonl`` — the original append-only ``results.jsonl`` log, replayed
  in full on open.  The differential reference backend and the
  import/export interchange format.

Every entry carries three envelope fields next to the payload:

* ``schema`` — :data:`SCHEMA_VERSION`; entries written under another
  version are *stale* and ignored (bumping the constant is the
  cache-wide invalidation switch — required whenever the record payload
  or the evaluation semantics behind it change);
* ``key`` — the program's canonical content fingerprint
  (:func:`repro.batch.fingerprint.canonical_fingerprint`);
* ``params`` — a fingerprint of every evaluation parameter that affects
  the result (mode, chase steps, budgets).  A hit requires key *and*
  params to match: re-running with a different budget never reuses a
  verdict obtained under the old one.

Writes are acknowledged durably: ``put`` returns only after the record
would survive a SIGKILL of the writer (a committed sqlite transaction, a
flushed-and-fsynced JSONL line).  Duplicate keys resolve last-write-wins
in both backends — "the log is the truth, later writes win".
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Any

from ..store import (
    BACKENDS,
    JsonlResultBackend,
    QueryPage,
    ResultQuery,
    SqliteResultBackend,
)

#: Version of the cache record schema *and* of the evaluation semantics
#: producing the payloads.  Any change to either must bump this.
SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """What happened while loading and serving one cache."""

    loaded: int = 0          # live entries available after load
    corrupted: int = 0       # unparseable lines skipped
    stale_schema: int = 0    # entries under another SCHEMA_VERSION
    imported: int = 0        # legacy JSONL entries migrated on open
    hits: int = 0
    misses: int = 0
    params_misses: int = 0   # key present but evaluated under other params

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _envelope(key: str, params: str, record: dict) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "key": key,
        "params": params,
        "record": record,
    }


def _result_backend(
    directory: pathlib.Path, backend: str, durable: bool
) -> SqliteResultBackend | JsonlResultBackend:
    if backend == "sqlite":
        return SqliteResultBackend(directory, SCHEMA_VERSION, durable=durable)
    if backend == "jsonl":
        return JsonlResultBackend(directory, SCHEMA_VERSION, durable=durable)
    raise ValueError(f"unknown store backend {backend!r}; known: {BACKENDS}")


class ResultCache:
    """One cache directory, fronted by the selected store backend."""

    def __init__(
        self,
        directory: str | os.PathLike,
        backend: str = "sqlite",
        durable: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.backend = backend
        self._backend = _result_backend(self.directory, backend, durable)
        self.stats = CacheStats(
            loaded=self._backend.loaded,
            corrupted=self._backend.corrupted,
            stale_schema=self._backend.stale_schema,
            imported=self._backend.imported,
        )

    @property
    def path(self) -> pathlib.Path:
        """The backend's on-disk file (``store.sqlite`` / ``results.jsonl``)."""
        return self._backend.path

    @property
    def schema_version(self) -> int:
        return SCHEMA_VERSION

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._backend.count()

    def __contains__(self, key: str) -> bool:
        return self._backend.contains(key)

    def get(self, key: str, params: str) -> dict | None:
        """The cached payload for ``(key, params)``, or None (a miss)."""
        entry = self._backend.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.get("params") != params:
            self.stats.misses += 1
            self.stats.params_misses += 1
            return None
        self.stats.hits += 1
        return entry["record"]

    def put(self, key: str, params: str, record: dict) -> None:
        """Store one record, durably, visible to ``get`` immediately.

        Durability is per record: when ``put`` returns, the record
        survives a SIGKILL of this process — this is what lets an
        interrupted batch run resume exactly where it stopped, and what
        the crash-injection suite (``tests/test_store_crash.py``) pins.
        """
        self._backend.put(_envelope(key, params, record))

    def put_many(self, items: list[tuple[str, str, dict]]) -> None:
        """Store a batch of ``(key, params, record)`` durably at once.

        Record-for-record equivalent to looping ``put`` — same
        envelopes, same last-write-wins order — but the backend commits
        the whole batch behind one transaction (sqlite) or one fsync
        (jsonl).  This is what the batch engine's drain calls once per
        completion round instead of once per finished program.
        """
        self._backend.put_many(
            [_envelope(key, params, record) for key, params, record in items]
        )

    def stats_snapshot(self) -> dict:
        """One JSON-ready view of serving counters *and* backend state."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "params_misses": self.stats.params_misses,
            "hit_rate": self.stats.hit_rate,
            "loaded": self.stats.loaded,
            "corrupted": self.stats.corrupted,
            "stale_schema": self.stats.stale_schema,
            "imported": self.stats.imported,
            "entries": len(self),
            "store": self._backend.stats(),
        }

    # -- the query surface ---------------------------------------------------

    def query(self, q: ResultQuery | None = None, **kwargs: Any) -> QueryPage:
        """Filter/sort/paginate stored verdicts (see repro.store.query)."""
        if q is None:
            q = ResultQuery(**kwargs)
        return self._backend.query(q)

    def entries(self) -> list[tuple[int, dict]]:
        """Every live entry as ``(seq, envelope)`` in write order — the
        export interface (:mod:`repro.store.port`)."""
        return self._backend.entries()

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, {self.backend}, "
            f"{len(self)} entries)"
        )
