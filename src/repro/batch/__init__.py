"""repro.batch — sharded, cached, corpus-scale batch evaluation.

The corpus-scale counterpart of :func:`repro.classify`: where ``classify``
answers for one program, :func:`evaluate_corpus` answers for hundreds,
fanning misses out over a process pool and serving everything it has seen
before from a content-addressed on-disk cache (keyed by
:func:`canonical_fingerprint`, so renamed or reordered twins hit too).
``repro batch`` on the command line fronts the same engine.

See DESIGN.md §4 for the canonical-hash definition, the cache entry
schema and the resume semantics.
"""

from .artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    decisions_to_json,
    seed_decisions,
)
from .cache import SCHEMA_VERSION, CacheStats, ResultCache
from .engine import (
    BatchConfig,
    BatchReport,
    ProgramResult,
    evaluate_corpus,
    shard_of,
)
from .fingerprint import FINGERPRINT_VERSION, canonical_fingerprint, stable_hash

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactStore",
    "decisions_to_json",
    "seed_decisions",
    "SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "BatchConfig",
    "BatchReport",
    "ProgramResult",
    "evaluate_corpus",
    "shard_of",
    "FINGERPRINT_VERSION",
    "canonical_fingerprint",
    "stable_hash",
]
