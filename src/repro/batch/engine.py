"""Sharded, cached, corpus-scale batch evaluation.

``evaluate_corpus`` turns the one-shot Table 2 pipeline into an
incremental evaluation service:

* **content-addressed reuse** — each program is keyed by its canonical
  fingerprint; a re-run (or a renamed/reordered twin, or a duplicate
  inside one corpus) only evaluates programs whose key or evaluation
  parameters changed, everything else is served from the
  :class:`~repro.batch.cache.ResultCache`;
* **process-pool sharding** — classification is CPU-bound pure-Python
  work, so ``jobs=N`` fans the misses out over *processes* (the thread
  portfolio inside :mod:`repro.analysis.classify` parallelises one
  program; this layer parallelises the corpus).  ``shard=(i, n)``
  restricts a run to the programs whose key lands in shard ``i`` of
  ``n`` — the same deterministic key-space split on every machine, so
  ``n`` hosts can each take one shard and never duplicate work (against
  one locally-shared cache directory, or — on network filesystems,
  where concurrent appends to one file are not atomic — against
  per-host directories whose JSONL logs are concatenated afterwards:
  last-write-wins loading makes concatenation a valid merge);
* **budgets and interruption** — the PR 2 :class:`~repro.budget.Budget`
  contract crosses the process boundary by value: each worker rebuilds a
  per-program budget from the config's limits, and a blown budget comes
  back as the record's ``exhausted`` field (a verdict, never an
  exception) and is *persisted* so a cached rejection is exactly as
  trustworthy as a fresh one.  SIGINT (or a tripped
  :class:`~repro.budget.Cancellation` token) drains cleanly: finished
  results are already on disk — the cache flushes every completion
  round in one batched transaction (``put_many``) — pending
  work is cancelled, and the report says ``interrupted`` so the CLI can
  exit 1; re-running with the same cache resumes where the run stopped.

The unit of work is selectable: ``mode="evaluate"`` runs the paper's
Section 7 measurement (Adn∃ + bounded-chase ground truth, one
:class:`~repro.analysis.evaluation.OntologyEvaluation` per program) and
``mode="classify"`` runs the full criterion portfolio.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis.classify import ClassifyConfig, classify
from ..analysis.evaluation import OntologyEvaluation, chase_ground_truth
from ..budget import Budget, Cancellation, budget_scope
from ..core.adornment import adn_exists
from ..generators.corpus import GeneratedOntology
from ..io import dependencies_from_json, dependencies_to_json, jsonl_dumps
from ..model.dependencies import DependencySet
from .cache import SCHEMA_VERSION, CacheStats, ResultCache
from .fingerprint import canonical_fingerprint, stable_hash

if TYPE_CHECKING:  # runtime import stays lazy (artifacts pulls in the store)
    from .artifacts import ArtifactStore

MODES = ("evaluate", "classify")


@dataclass
class BatchConfig:
    """Tuning knobs of one batch run.

    ``budget_steps``/``budget_ms`` are **per program** (each worker
    rebuilds a fresh :class:`~repro.budget.Budget` from them — budgets
    hold clocks and locks and do not cross process boundaries by
    reference).  ``shard`` is ``(index, count)``; ``resume=False`` makes
    the run recompute everything while still writing the cache (the
    refresh switch).
    """

    mode: str = "evaluate"
    jobs: int = 1
    cache_dir: str | os.PathLike | None = None
    #: Store backend behind the cache directory: "sqlite" (embedded
    #: store.sqlite, the default) or "jsonl" (the append-only reference
    #: logs).  Selects representation only — never record content — so it
    #: deliberately stays out of params_key().
    store: str = "sqlite"
    shard: tuple[int, int] | None = None
    resume: bool = True
    budget_steps: int | None = None
    budget_ms: float | None = None
    chase_steps: int = 1_200
    criteria: list[str] | None = None  # classify mode only

    def __post_init__(self) -> None:
        from ..store import BACKENDS

        if self.mode not in MODES:
            raise ValueError(f"unknown batch mode {self.mode!r}; known: {MODES}")
        if self.store not in BACKENDS:
            raise ValueError(
                f"unknown store backend {self.store!r}; known: {BACKENDS}"
            )
        if self.shard is not None:
            index, count = self.shard
            if count < 1 or not 0 <= index < count:
                raise ValueError(f"bad shard spec {self.shard!r}")

    def params_key(self) -> str:
        """Fingerprint of every parameter that affects a record's payload.

        Sharding, job count and cache location deliberately do not enter:
        they change *which* machine computes a record, never its content.
        """
        return stable_hash(
            {
                "schema": SCHEMA_VERSION,
                "mode": self.mode,
                "budget_steps": self.budget_steps,
                "budget_ms": self.budget_ms,
                "chase_steps": self.chase_steps if self.mode == "evaluate" else None,
                "criteria": self.criteria if self.mode == "classify" else None,
            }
        )


@dataclass
class ProgramResult:
    """One corpus program together with its (possibly cached) record."""

    key: str
    name: str
    class_name: str
    character: str
    size: int
    record: dict
    cached: bool

    @property
    def exhausted(self) -> dict | None:
        return self.record.get("exhausted")

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "name": self.name,
            "class": self.class_name,
            "character": self.character,
            "size": self.size,
            "cached": self.cached,
            **{k: v for k, v in self.record.items() if k != "name"},
        }


@dataclass
class BatchReport:
    """Everything one batch run produced and how it got it."""

    mode: str
    results: list[ProgramResult] = field(default_factory=list)
    computed: int = 0           # programs actually evaluated this run
    hits: int = 0               # programs served from the cache
    deduplicated: int = 0       # served from a twin computed this run
    skipped_other_shards: int = 0
    interrupted: bool = False
    cache_stats: CacheStats | None = None
    #: Firing-edge decisions warm-started from / appended to the
    #: artifact store (classify mode with a cache directory only).
    decisions_preloaded: int = 0
    decisions_recorded: int = 0

    @property
    def any_exhausted(self) -> bool:
        return any(r.exhausted is not None for r in self.results)

    @property
    def complete(self) -> bool:
        """Every selected program has a record (sharding excluded ones
        were never selected, so a sharded run can still be complete)."""
        return not self.interrupted

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.deduplicated + self.computed
        return (self.hits + self.deduplicated) / served if served else 0.0

    def evaluations(self) -> list[OntologyEvaluation]:
        """The records as Table 2 evaluations (``mode="evaluate"`` only)."""
        if self.mode != "evaluate":
            raise ValueError("evaluations() requires mode='evaluate'")
        out = []
        for r in self.results:
            d = r.record["data"]
            out.append(
                OntologyEvaluation(
                    name=r.name,
                    class_name=r.class_name,
                    character=r.character,
                    size=r.size,
                    adorned_size=d["adorned_size"],
                    adn_ms=d["adn_ms"],
                    semi_acyclic=d["semi_acyclic"],
                    chase_halted=d["chase_halted"],
                    halted_strategy=d["halted_strategy"],
                )
            )
        return out

    # -- renderings --------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(jsonl_dumps(r.to_json()) for r in self.results)

    def render_table(self) -> str:
        head = (
            f"{'program':<24} {'|Σ|':>5} {'verdict':<44} "
            f"{'src':>6} {'ms':>8}"
        )
        lines = [head, "-" * len(head)]
        for r in self.results:
            verdict = _headline(self.mode, r.record)
            if r.exhausted is not None:
                verdict += " [budget]"
            src = "cache" if r.cached else "fresh"
            lines.append(
                f"{r.name:<24} {r.size:>5} {verdict:<44} "
                f"{src:>6} {r.record.get('elapsed_ms', 0.0):>8.1f}"
            )
        lines.append("-" * len(head))
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self) -> str:
        bits = [
            f"{len(self.results)} programs",
            f"{self.computed} evaluated",
            f"{self.hits + self.deduplicated} from cache "
            f"(hit rate {self.hit_rate:.0%})",
        ]
        if self.skipped_other_shards:
            bits.append(f"{self.skipped_other_shards} in other shards")
        if self.decisions_preloaded or self.decisions_recorded:
            bits.append(
                f"firing decisions: {self.decisions_preloaded} preloaded, "
                f"{self.decisions_recorded} newly recorded"
            )
        if self.interrupted:
            bits.append("INTERRUPTED (re-run with the same cache to resume)")
        if self.any_exhausted:
            bits.append("some budgets exhausted")
        return "; ".join(bits)


def _headline(mode: str, record: dict) -> str:
    data = record["data"]
    if mode == "evaluate":
        sac = "SAC✓" if data["semi_acyclic"] else "SAC✗"
        chase = "chase halted" if data["chase_halted"] else "no halt"
        return f"{sac}, {chase}"
    return data["verdict"]


# -- the worker (top level: must pickle across the process boundary) -----------


def _evaluate_payload(payload: dict) -> dict:
    """Evaluate one program inside a worker process.

    Rebuilds the dependency set and the per-program budget locally, runs
    the configured mode, and returns a plain-dict record — the only
    currency that crosses the process boundary.
    """
    sigma = dependencies_from_json(payload["sigma"])
    if payload["mode"] == "evaluate":
        return _evaluate_record(sigma, payload)
    return _classify_record(sigma, payload)


def _evaluate_record(sigma: DependencySet, payload: dict) -> dict:
    import time

    budget = None
    if payload["budget_steps"] is not None or payload["budget_ms"] is not None:
        budget = Budget(
            max_steps=payload["budget_steps"], max_ms=payload["budget_ms"]
        )
    start = time.perf_counter()
    with budget_scope(budget):
        t0 = time.perf_counter()
        adn = adn_exists(sigma)
        adn_ms = (time.perf_counter() - t0) * 1000.0
        halted, strategy = chase_ground_truth(
            sigma, max_steps=payload["chase_steps"]
        )
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    exhausted = None
    if budget is not None and budget.exhausted is not None:
        e = budget.exhausted
        exhausted = {"dimension": e.dimension, "spent": e.spent, "limit": e.limit}
    return {
        "data": {
            "adorned_size": len(adn.adorned),
            "adn_ms": adn_ms,
            "semi_acyclic": adn.acyclic,
            "chase_halted": halted,
            "halted_strategy": strategy,
            "exact": adn.exact,
        },
        "exhausted": exhausted,
        "elapsed_ms": elapsed_ms,
    }


def _classify_record(sigma: DependencySet, payload: dict) -> dict:
    import time

    from ..firing.relations import DecisionCache, shared_firing_cache
    from .artifacts import decisions_to_json, dependency_codes, seed_decisions

    # Warm-start the firing-decision layer from the artifact store, run
    # the portfolio's shared context on top of it, and ship the (possibly
    # grown) decision set back for persistence.  A None payload means no
    # artifact store exists: then Σ is never canonicalised at all.
    stored = payload.get("decisions")
    codes = dependency_codes(sigma) if stored is not None else None
    decisions = DecisionCache()
    if stored:
        seed_decisions(sigma, stored, decisions, codes=codes)
    start = time.perf_counter()
    with shared_firing_cache(decisions):
        report = classify(
            sigma,
            config=ClassifyConfig(
                criteria=payload["criteria"],
                jobs=1,  # corpus-level parallelism happens at this layer
                budget_steps=payload["budget_steps"],
                budget_ms=payload["budget_ms"],
            ),
        )
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    decision_stats = decisions.stats()
    exhausted = None
    for r in report.results.values():
        if r.exhausted is not None and not r.skipped:
            exhausted = {
                "dimension": r.exhausted.dimension,
                "spent": r.exhausted.spent,
                "limit": r.exhausted.limit,
                "criterion": r.criterion,
            }
            break
    return {
        "data": {
            "verdict": report.verdict,
            "accepted_by": report.accepted_by,
            "criteria": {
                name: {
                    "accepted": r.accepted,
                    "exact": r.exact,
                    "exhausted": str(r.exhausted) if r.exhausted else None,
                }
                for name, r in report.results.items()
            },
        },
        "exhausted": exhausted,
        "elapsed_ms": elapsed_ms,
        # Transient (stripped before the record enters the result cache):
        # the decisions to persist and how warm the run started.
        "artifacts": None
        if stored is None
        else {
            "oracle": decisions_to_json(sigma, decisions, codes=codes),
            "preloaded": decision_stats["preloaded"],
        },
    }


# -- the engine ----------------------------------------------------------------


def shard_of(key: str, count: int) -> int:
    """The deterministic shard a fingerprint belongs to (stable across
    machines and runs: derived from the key, not from corpus order)."""
    return int(key[:8], 16) % count


def evaluate_corpus(
    corpus: list[GeneratedOntology],
    config: BatchConfig | None = None,
    cancellation: Cancellation | None = None,
) -> BatchReport:
    """Evaluate a corpus through the cache, pool and shard machinery.

    Results come back in corpus order regardless of completion order.
    ``cancellation`` is the programmatic stand-in for SIGINT: once
    tripped, no new program starts, in-flight work is drained, and the
    report is marked interrupted.
    """
    config = config or BatchConfig()
    params = config.params_key()
    report = BatchReport(mode=config.mode)
    # Workers never see these handles: the parent is the only writer, and
    # the sqlite backend's connections are pid-guarded anyway (a handle
    # inherited across the pool's fork reopens in the child rather than
    # sharing the parent's connection).
    cache = (
        ResultCache(config.cache_dir, backend=config.store)
        if config.cache_dir is not None
        else None
    )
    # The artifact store rides next to the result cache: classify misses
    # (new programs, or old programs under new evaluation parameters)
    # warm-start their firing-decision layer from earlier runs.
    store = None
    if cache is not None and config.mode == "classify":
        from .artifacts import ArtifactStore

        store = ArtifactStore(config.cache_dir, backend=config.store)

    # Fingerprint everything up front (cheap, pure) and decide each
    # program's fate: other shard / cache hit / needs computing.
    keyed = [(canonical_fingerprint(ont.sigma), ont) for ont in corpus]
    slots: dict[str, ProgramResult] = {}
    pending: dict[str, GeneratedOntology] = {}
    ordered: list[tuple[str, GeneratedOntology]] = []
    for key, ont in keyed:
        if config.shard is not None:
            index, count = config.shard
            if shard_of(key, count) != index:
                report.skipped_other_shards += 1
                continue
        ordered.append((key, ont))
        if key in slots or key in pending:
            continue  # a twin already decided this key's fate
        record = cache.get(key, params) if cache and config.resume else None
        if record is not None:
            slots[key] = _program_result(key, ont, record, cached=True)
            report.hits += 1
        else:
            pending[key] = ont

    try:
        if pending:
            _run_pending(
                pending, config, params, cache, store, cancellation, slots, report
            )
    except KeyboardInterrupt:
        report.interrupted = True
    finally:
        if cache is not None:
            report.cache_stats = cache.stats
            cache.close()
        if store is not None:
            store.close()

    for key, ont in ordered:
        done = slots.get(key)
        if done is None:
            continue  # interrupted before this program was reached
        if done.name != ont.name:
            # A twin's record serves this program: re-wrap it under the
            # program's own identity (the payload is shared).
            done = _program_result(key, ont, done.record, cached=done.cached)
            report.deduplicated += 1
        report.results.append(done)
    return report


def _program_result(
    key: str, ont: GeneratedOntology, record: dict, cached: bool
) -> ProgramResult:
    return ProgramResult(
        key=key,
        name=ont.name,
        class_name=ont.class_name,
        character=ont.character,
        size=len(ont.sigma),
        record=record,
        cached=cached,
    )


def _payload(
    key: str,
    ont: GeneratedOntology,
    config: BatchConfig,
    store: ArtifactStore | None = None,
) -> dict:
    return {
        "key": key,
        "mode": config.mode,
        "sigma": dependencies_to_json(ont.sigma),
        "budget_steps": config.budget_steps,
        "budget_ms": config.budget_ms,
        "chase_steps": config.chase_steps,
        "criteria": config.criteria,
        "decisions": store.get(key) if store is not None else None,
    }


def _cancelled(cancellation: Cancellation | None) -> bool:
    return cancellation is not None and cancellation.cancelled


def _run_pending(
    pending: dict[str, GeneratedOntology],
    config: BatchConfig,
    params: str,
    cache: ResultCache | None,
    store: ArtifactStore | None,
    cancellation: Cancellation | None,
    slots: dict[str, ProgramResult],
    report: BatchReport,
) -> None:
    def finish_batch(items: list[tuple[str, dict]]) -> None:
        batch: list[tuple[str, dict]] = []
        for key, raw in items:
            record = dict(raw)
            # The decision layer is persisted into the artifact store,
            # not into the result record (which must stay stable across
            # warm and cold runs of the same program).
            artifacts = record.pop("artifacts", None)
            if artifacts is not None:
                report.decisions_preloaded += artifacts.get("preloaded", 0)
                if store is not None:
                    report.decisions_recorded += store.put(
                        key, artifacts.get("oracle", [])
                    )
            record["name"] = pending[key].name
            batch.append((key, record))
        # One durable write for the whole round: the cache flush comes
        # BEFORE the report/slots update, so a crash between the two can
        # claim less than the cache holds but never more.
        if cache is not None:
            cache.put_many([(key, params, record) for key, record in batch])
        for key, record in batch:
            slots[key] = _program_result(key, pending[key], record, cached=False)
            report.computed += 1

    if config.jobs <= 1:
        # Sequential runs keep the per-record durability unit: each
        # program is flushed before the next one starts.
        for key in list(pending):
            if _cancelled(cancellation):
                report.interrupted = True
                return
            finish_batch(
                [(key, _evaluate_payload(_payload(key, pending[key], config, store)))]
            )
        return

    if _cancelled(cancellation):  # tripped before anything started
        report.interrupted = True
        return

    # Submission is eager (unlike the classify portfolio there is no
    # short-circuit decision to wait for), completion handling is
    # incremental: every finished record is flushed to the cache before
    # the next wait, so an interrupt never loses completed work.  The
    # wait is time-sliced so a tripped cancellation token is honoured
    # within ~100ms even while every worker is deep inside a program —
    # in-flight programs still run to completion (worker processes hold
    # no reference to the token), but nothing new is collected and
    # pending futures are cancelled.
    with ProcessPoolExecutor(max_workers=config.jobs) as pool:
        running = {
            pool.submit(_evaluate_payload, _payload(key, ont, config, store)): key
            for key, ont in pending.items()
        }
        try:
            while running:
                done, _ = wait(
                    running, timeout=0.1, return_when=FIRST_COMPLETED
                )
                # Everything that completed this round drains through ONE
                # batched cache write (put_many) instead of one commit per
                # program; an interrupt still loses nothing because the
                # flush happens before the next wait.
                finish_batch([(running.pop(fut), fut.result()) for fut in done])
                if _cancelled(cancellation):
                    raise KeyboardInterrupt
        except KeyboardInterrupt:
            for fut in running:
                fut.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            report.interrupted = True
