"""Persisted analysis artifacts: firing-edge decisions, keyed by the
program's canonical fingerprint.

The expensive artifact behind every criterion the portfolio runs is the
firing relation: each edge is decided by a witness-engine chase probe
(milliseconds to seconds), while every other context artifact (affected
positions, graphs over already-decided edges, SCCs) rebuilds from those
decisions in microseconds.  So the batch engine persists exactly the
decision layer: a classify worker seeds its
:class:`~repro.firing.relations.DecisionCache` from the store before
running and appends the fresh decisions afterwards — a warm corpus rerun
(even with changed evaluation parameters, which miss the result cache)
skips the chase probes entirely.

Decisions must survive the transformations the result cache's
content-addressed key absorbs (per-dependency variable renaming,
schema-wide predicate renaming, dependency reordering), so a dependency
is named not by its position in Σ but by its **canonical code**: the
colour-refined, variable-numbered encoding of
:mod:`repro.batch.fingerprint`, hashed.  Codes are sound transfer keys
only when they are **injective** over Σ: colour refinement is 1-WL, so
two genuinely different dependencies can share a code (e.g. the two
halves of a predicate-symmetric program), and conflating the pairs
``(d1, d1)`` and ``(d1, d2)`` would transfer a decision to a probe that
never made it — a wrong verdict, not a cold one.  Both the encoder and
the seeder therefore refuse non-injective programs outright; those
corpus outliers simply stay cold.  Only deterministic decisions ever
reach a :class:`DecisionCache`, so everything snapshotted from one is
safe to persist.

The store rides in the same directory as the result cache and speaks the
same selectable :mod:`repro.store` backends: the ``artifacts`` table of
``store.sqlite`` (default — one row per probe, ``INSERT OR IGNORE``
merge semantics), or the append-only ``artifacts.jsonl`` reference log
(one record batch per line, truncated tails skipped, later lines can
only *add* decisions — decisions are deterministic, so re-derived ones
are equal).
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable, Iterator

from ..firing.relations import DecisionCache
from ..firing.witness import FiringDecision
from ..model.dependencies import AnyDependency, DependencySet
from ..store import (
    BACKENDS,
    JsonlArtifactBackend,
    SqliteArtifactBackend,
    record_identity,
)
from .fingerprint import (
    _alpha_unique,
    _dependency_code,
    predicate_colours,
    stable_hash,
)

#: Bump when the decision-record layout (or the semantics of the probes
#: behind it) changes: old lines become unreachable, which is the
#: invalidation we want.
ARTIFACT_SCHEMA = 1


def dependency_codes(sigma: DependencySet) -> dict[AnyDependency, str] | None:
    """Each dependency's renaming-invariant code within this program, or
    ``None`` when the codes do not name dependencies uniquely.

    Colours come from the alpha-deduplicated set so that twin programs
    differing only in duplicate spellings still agree on codes.  A code
    collision between *distinct* dependencies (alpha-duplicates, or the
    1-WL blind spot of colour refinement) makes ordered pairs ambiguous
    — ``(d1, d1)`` and ``(d1, d2)`` would serialise identically even
    though they are different probes — so such programs opt out of
    persistence entirely (see the module docstring).
    """
    deps = list(sigma)
    colours = predicate_colours(_alpha_unique(sigma))
    codes = {dep: stable_hash(_dependency_code(dep, colours)) for dep in deps}
    if len(set(codes.values())) != len(deps):
        return None
    return codes


def decisions_to_json(
    sigma: DependencySet,
    cache: DecisionCache,
    codes: dict[AnyDependency, str] | None = None,
) -> list[dict]:
    """Serialise the cache's decisions about Σ's own dependency pairs.

    Decisions about foreign dependencies (LS probes pairs of the adorned
    set Σα through the same cache) are skipped: they are not artifacts of
    Σ and would not round-trip through Σ's codes.  Witnesses are dropped
    — reuse needs only the verdict and its exactness.  Returns nothing
    when Σ's codes are ambiguous (see :func:`dependency_codes`); pass a
    precomputed ``codes`` map to skip re-canonicalising Σ.
    """
    code_of = dependency_codes(sigma) if codes is None else codes
    if code_of is None:
        return []
    records = []
    for key, decision in cache.snapshot().items():
        kind = key[0]
        if kind == "precedes":
            _, r1, r2, variant, budget = key
            fulls = None
        else:
            _, r1, r2, fulls, variant, budget = key
        if r1 not in code_of or r2 not in code_of:
            continue
        record = {
            "kind": kind,
            "r1": code_of[r1],
            "r2": code_of[r2],
            "variant": variant,
            "budget": budget,
            "edge": decision.edge,
            "exact": decision.exact,
        }
        if fulls is not None:
            if any(f not in code_of for f in fulls):
                continue
            record["fulls"] = sorted({code_of[f] for f in fulls})
        records.append(record)
    # Deterministic file content: order by the probe identity (already
    # canonical strings — no dependency is rendered for sorting).
    records.sort(key=_record_identity)
    return records


def seed_decisions(
    sigma: DependencySet,
    records: Iterable[dict],
    cache: DecisionCache,
    codes: dict[AnyDependency, str] | None = None,
) -> int:
    """Install stored decisions for Σ into ``cache``; returns how many.

    Records whose codes no longer resolve (the program changed, the
    schema moved on, or Σ's codes are ambiguous and were never safe to
    transfer) are silently skipped: the worst outcome of a stale or
    refused store is a cold probe, never a wrong verdict.  Pass a
    precomputed ``codes`` map to skip re-canonicalising Σ.
    """
    if codes is None:
        codes = dependency_codes(sigma)
    if codes is None:
        return 0
    by_code = {code: dep for dep, code in codes.items()}
    seeded = 0
    for record in records:
        r1 = by_code.get(record["r1"])
        r2 = by_code.get(record["r2"])
        if r1 is None or r2 is None:
            continue
        fulls = None
        if "fulls" in record:
            members = [by_code.get(c) for c in record["fulls"]]
            if any(m is None for m in members):
                continue
            fulls = frozenset(members)
        decision = FiringDecision(record["edge"], record["exact"], None)
        if fulls is None:
            key = (record["kind"], r1, r2, record["variant"], record["budget"])
        else:
            key = (
                record["kind"], r1, r2, fulls,
                record["variant"], record["budget"],
            )
        cache.seed(key, decision)
        seeded += 1
    return seeded


#: The probe a record answers (everything but the answer itself) — the
#: dedup identity both store backends and the codec share.
_record_identity = record_identity


def _artifact_backend(
    directory: pathlib.Path, backend: str, durable: bool
) -> SqliteArtifactBackend | JsonlArtifactBackend:
    if backend == "sqlite":
        return SqliteArtifactBackend(
            directory, ARTIFACT_SCHEMA, durable=durable
        )
    if backend == "jsonl":
        return JsonlArtifactBackend(
            directory, ARTIFACT_SCHEMA, durable=durable
        )
    raise ValueError(f"unknown store backend {backend!r}; known: {BACKENDS}")


class ArtifactStore:
    """Per-program decision records, fronted by the selected backend.

    Mirrors :class:`~repro.batch.cache.ResultCache`'s lifecycle (same
    directory, same store file or a sibling log) but merges rather than
    replaces: writes for the same program key accumulate decisions,
    deduplicated by probe.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        backend: str = "sqlite",
        durable: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.backend = backend
        self._backend = _artifact_backend(self.directory, backend, durable)

    @property
    def path(self) -> pathlib.Path:
        """The backend's on-disk file (``store.sqlite`` / ``artifacts.jsonl``)."""
        return self._backend.path

    @property
    def schema_version(self) -> int:
        return ARTIFACT_SCHEMA

    @property
    def imported(self) -> int:
        return self._backend.imported

    def __len__(self) -> int:
        return self._backend.programs()

    def get(self, key: str) -> list[dict]:
        """Every stored decision record for the program ``key``."""
        return self._backend.get(key)

    def put(self, key: str, records: list[dict]) -> int:
        """Store the records not already present; returns how many were new."""
        return self._backend.put(key, records)

    def entries(self) -> Iterator[tuple[str, list[dict]]]:
        """Every program's merged records as ``(key, records)`` — the
        export interface (:mod:`repro.store.port`)."""
        return self._backend.entries()

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.directory)!r}, {self.backend}, "
            f"{len(self)} programs)"
        )
