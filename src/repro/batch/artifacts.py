"""Persisted analysis artifacts: firing-edge decisions, keyed by the
program's canonical fingerprint.

The expensive artifact behind every criterion the portfolio runs is the
firing relation: each edge is decided by a witness-engine chase probe
(milliseconds to seconds), while every other context artifact (affected
positions, graphs over already-decided edges, SCCs) rebuilds from those
decisions in microseconds.  So the batch engine persists exactly the
decision layer: a classify worker seeds its
:class:`~repro.firing.relations.DecisionCache` from the store before
running and appends the fresh decisions afterwards — a warm corpus rerun
(even with changed evaluation parameters, which miss the result cache)
skips the chase probes entirely.

Decisions must survive the transformations the result cache's
content-addressed key absorbs (per-dependency variable renaming,
schema-wide predicate renaming, dependency reordering), so a dependency
is named not by its position in Σ but by its **canonical code**: the
colour-refined, variable-numbered encoding of
:mod:`repro.batch.fingerprint`, hashed.  Codes are sound transfer keys
only when they are **injective** over Σ: colour refinement is 1-WL, so
two genuinely different dependencies can share a code (e.g. the two
halves of a predicate-symmetric program), and conflating the pairs
``(d1, d1)`` and ``(d1, d2)`` would transfer a decision to a probe that
never made it — a wrong verdict, not a cold one.  Both the encoder and
the seeder therefore refuse non-injective programs outright; those
corpus outliers simply stay cold.  Only deterministic decisions ever
reach a :class:`DecisionCache`, so everything snapshotted from one is
safe to persist.

The store is an append-only ``artifacts.jsonl`` next to the result
cache's ``results.jsonl``, with the same crash-safety story: one record
per line, truncated tails skipped, later lines win (they can only *add*
decisions — decisions are deterministic, so re-derived ones are equal).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable

from ..firing.relations import DecisionCache
from ..firing.witness import FiringDecision
from ..model.dependencies import AnyDependency, DependencySet
from .fingerprint import (
    _alpha_unique,
    _dependency_code,
    predicate_colours,
    stable_hash,
)

#: Bump when the decision-record layout (or the semantics of the probes
#: behind it) changes: old lines become unreachable, which is the
#: invalidation we want.
ARTIFACT_SCHEMA = 1

_ARTIFACTS_NAME = "artifacts.jsonl"


def dependency_codes(sigma: DependencySet) -> dict[AnyDependency, str] | None:
    """Each dependency's renaming-invariant code within this program, or
    ``None`` when the codes do not name dependencies uniquely.

    Colours come from the alpha-deduplicated set so that twin programs
    differing only in duplicate spellings still agree on codes.  A code
    collision between *distinct* dependencies (alpha-duplicates, or the
    1-WL blind spot of colour refinement) makes ordered pairs ambiguous
    — ``(d1, d1)`` and ``(d1, d2)`` would serialise identically even
    though they are different probes — so such programs opt out of
    persistence entirely (see the module docstring).
    """
    deps = list(sigma)
    colours = predicate_colours(_alpha_unique(sigma))
    codes = {dep: stable_hash(_dependency_code(dep, colours)) for dep in deps}
    if len(set(codes.values())) != len(deps):
        return None
    return codes


def decisions_to_json(
    sigma: DependencySet,
    cache: DecisionCache,
    codes: dict[AnyDependency, str] | None = None,
) -> list[dict]:
    """Serialise the cache's decisions about Σ's own dependency pairs.

    Decisions about foreign dependencies (LS probes pairs of the adorned
    set Σα through the same cache) are skipped: they are not artifacts of
    Σ and would not round-trip through Σ's codes.  Witnesses are dropped
    — reuse needs only the verdict and its exactness.  Returns nothing
    when Σ's codes are ambiguous (see :func:`dependency_codes`); pass a
    precomputed ``codes`` map to skip re-canonicalising Σ.
    """
    code_of = dependency_codes(sigma) if codes is None else codes
    if code_of is None:
        return []
    records = []
    for key, decision in cache.snapshot().items():
        kind = key[0]
        if kind == "precedes":
            _, r1, r2, variant, budget = key
            fulls = None
        else:
            _, r1, r2, fulls, variant, budget = key
        if r1 not in code_of or r2 not in code_of:
            continue
        record = {
            "kind": kind,
            "r1": code_of[r1],
            "r2": code_of[r2],
            "variant": variant,
            "budget": budget,
            "edge": decision.edge,
            "exact": decision.exact,
        }
        if fulls is not None:
            if any(f not in code_of for f in fulls):
                continue
            record["fulls"] = sorted({code_of[f] for f in fulls})
        records.append(record)
    # Deterministic file content: order by the probe identity (already
    # canonical strings — no dependency is rendered for sorting).
    records.sort(key=_record_identity)
    return records


def seed_decisions(
    sigma: DependencySet,
    records: Iterable[dict],
    cache: DecisionCache,
    codes: dict[AnyDependency, str] | None = None,
) -> int:
    """Install stored decisions for Σ into ``cache``; returns how many.

    Records whose codes no longer resolve (the program changed, the
    schema moved on, or Σ's codes are ambiguous and were never safe to
    transfer) are silently skipped: the worst outcome of a stale or
    refused store is a cold probe, never a wrong verdict.  Pass a
    precomputed ``codes`` map to skip re-canonicalising Σ.
    """
    if codes is None:
        codes = dependency_codes(sigma)
    if codes is None:
        return 0
    by_code = {code: dep for dep, code in codes.items()}
    seeded = 0
    for record in records:
        r1 = by_code.get(record["r1"])
        r2 = by_code.get(record["r2"])
        if r1 is None or r2 is None:
            continue
        fulls = None
        if "fulls" in record:
            members = [by_code.get(c) for c in record["fulls"]]
            if any(m is None for m in members):
                continue
            fulls = frozenset(members)
        decision = FiringDecision(record["edge"], record["exact"], None)
        if fulls is None:
            key = (record["kind"], r1, r2, record["variant"], record["budget"])
        else:
            key = (
                record["kind"], r1, r2, fulls,
                record["variant"], record["budget"],
            )
        cache.seed(key, decision)
        seeded += 1
    return seeded


def _record_identity(record: dict) -> str:
    """The probe a record answers (everything but the answer itself)."""
    return json.dumps(
        {k: v for k, v in record.items() if k not in ("edge", "exact")},
        sort_keys=True,
    )


class ArtifactStore:
    """Load-once, append-forever store of per-program decision records.

    Mirrors :class:`~repro.batch.cache.ResultCache`'s lifecycle (same
    directory, sibling file) but merges rather than replaces: lines for
    the same program key accumulate decisions, deduplicated by probe.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict[str, dict]] = {}
        self._fh = None
        self._load()

    @property
    def path(self) -> pathlib.Path:
        return self.directory / _ARTIFACTS_NAME

    def _load(self) -> None:
        from ..io import iter_jsonl

        if not self.path.exists():
            return
        for _, line in iter_jsonl(self.path.read_text()):
            if line is None or line.get("schema") != ARTIFACT_SCHEMA:
                continue
            key = line.get("key")
            records = line.get("oracle")
            if not isinstance(key, str) or not isinstance(records, list):
                continue
            merged = self._entries.setdefault(key, {})
            for record in records:
                merged[_record_identity(record)] = record

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> list[dict]:
        """Every stored decision record for the program ``key``."""
        return list(self._entries.get(key, {}).values())

    def put(self, key: str, records: list[dict]) -> int:
        """Append the records not already stored; returns how many were new."""
        from ..io import jsonl_dumps

        merged = self._entries.setdefault(key, {})
        fresh = []
        for record in records:
            identity = _record_identity(record)
            if identity not in merged:
                merged[identity] = record
                fresh.append(record)
        if fresh:
            if self._fh is None:
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(
                jsonl_dumps(
                    {"schema": ARTIFACT_SCHEMA, "key": key, "oracle": fresh}
                )
                + "\n"
            )
            self._fh.flush()
        return len(fresh)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.directory)!r}, {len(self)} programs)"
