"""Matching backend selection.

Four interchangeable homomorphism-search backends exist:

* ``"columnar"`` (default) — compiled fixed-order join plans executed as
  generated int loops over a :class:`~repro.model.columnar.ColumnarInstance`'s
  typed tid columns and row-id sets, with optional vectorised kernels
  (DESIGN.md §10–§11); chase entry points build columnar instances under
  this backend (:func:`..chase_instance`);
* ``"planned"`` — the same compiled plans replayed over the plain
  :class:`~repro.model.instance.Instance`, probing term-id-keyed buckets
  (:mod:`.plans`); the default through PR 9, kept as the first
  differential reference (pin it back with ``set_backend("planned")``);
* ``"indexed"`` — dynamic most-constrained-first search over the
  instance's ``(predicate, position, term)`` index, re-interpreted per
  call (:mod:`.engine`);
* ``"naive"``   — the retained reference: static atom order, full predicate
  extent scans, no interning anywhere on its path (:mod:`.naive`).

All backends enumerate exactly the same *set* of homomorphisms (possibly
in a different order); the differential test suite holds them against
each other pairwise.  The backend is a :mod:`contextvars` variable so
nested chase runs (e.g. the explorer forking runners) compose correctly.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

BACKENDS = ("planned", "columnar", "indexed", "naive")

_backend: ContextVar[str] = ContextVar("repro_matching_backend", default="columnar")


def get_backend() -> str:
    """The currently active matching backend name."""
    return _backend.get()


def set_backend(name: str) -> None:
    """Set the matching backend for the *current context*.

    The setting lives in a :mod:`contextvars` variable: new threads (and
    contexts copied before the call) start from the ``"columnar"`` default
    and do not observe it.  Use :func:`using_backend` for scoped switches.
    """
    if name not in BACKENDS:
        raise ValueError(f"unknown matching backend {name!r}; known: {BACKENDS}")
    _backend.set(name)


@contextlib.contextmanager
def using_backend(name: str) -> Iterator[None]:
    """Temporarily switch the matching backend (re-entrant)."""
    if name not in BACKENDS:
        raise ValueError(f"unknown matching backend {name!r}; known: {BACKENDS}")
    token = _backend.set(name)
    try:
        yield
    finally:
        _backend.reset(token)
