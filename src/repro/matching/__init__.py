"""Delta-driven indexed trigger matching.

The shared matching engine behind every chase consumer — see DESIGN.md,
"Indexed matching and semi-naive discovery".  Public surface:

* :func:`homomorphisms` — backend-dispatching homomorphism enumeration
  (``repro.homomorphism.finder`` delegates here);
* :func:`delta_homomorphisms` / :func:`body_atom_index` — semi-naive
  discovery over an instance's delta log;
* :func:`seed_mapping` — anchor a body atom onto a fact;
* :func:`get_backend` / :func:`set_backend` / :func:`using_backend` —
  switch between the ``columnar`` generated int loops (default), the
  ``planned`` compiled plans, the ``indexed`` engine, and the ``naive``
  reference;
* :func:`warm_plans` — precompile the ``planned``/``columnar`` backends'
  join plans for a dependency set's bodies at chase start.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..model.atoms import Atom
from ..model.columnar import ColumnarInstance
from ..model.instances import Instance
from ..model.terms import Term
from . import engine as _engine
from . import naive as _naive
from . import plans as _plans
from .config import BACKENDS, get_backend, set_backend, using_backend
from .engine import (
    Homomorphism,
    body_atom_index,
    delta_homomorphisms,
    match_atom,
    seed_mapping,
)
from .plans import delta_row_homomorphisms
from .plans import warm as _warm


def homomorphisms(
    source: Sequence[Atom],
    target: Instance | ColumnarInstance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms using the active matching backend."""
    backend = get_backend()
    if backend == "planned" or backend == "columnar":
        # One dispatcher for both: plans.match picks the int executor for
        # columnar targets and the object path for everything else, so
        # plain-Instance consumers keep working under "columnar".
        return _plans.match(source, target, seed, frozen_nulls, limit)
    if backend == "naive":
        return _naive.match(source, target, seed, frozen_nulls, limit)
    return _engine.match(source, target, seed, frozen_nulls, limit)


def chase_instance(facts: Iterable[Atom] = ()) -> Instance | ColumnarInstance:
    """A fresh mutable instance matching the active backend's preferred
    fact representation: columnar under ``"columnar"``, the object
    ``Instance`` otherwise.  Chase entry points build their working
    instances through this so backend selection reaches the model layer."""
    if get_backend() == "columnar":
        return ColumnarInstance(facts)
    return Instance(facts)


def warm_plans(
    bodies: Iterable[Sequence[Atom]],
    target: Instance | ColumnarInstance | Iterable[Atom],
    frozen_nulls: bool = False,
) -> int:
    """Precompile join plans for ``bodies`` if a plan-executing backend
    (``planned``/``columnar``) is active; a no-op (returning 0) under the
    reference backends."""
    if get_backend() not in ("planned", "columnar"):
        return 0
    return _warm(bodies, target, frozen_nulls)


__all__ = [
    "BACKENDS",
    "Homomorphism",
    "body_atom_index",
    "chase_instance",
    "delta_homomorphisms",
    "delta_row_homomorphisms",
    "get_backend",
    "homomorphisms",
    "match_atom",
    "seed_mapping",
    "set_backend",
    "using_backend",
    "warm_plans",
]
