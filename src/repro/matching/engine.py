"""Indexed homomorphism matching and semi-naive (delta-driven) discovery.

This is the hot path shared by every chase consumer: the runner's trigger
discovery, the Skolem saturation loop behind MFA/MSA, the explorer's
per-state enumeration, dependency satisfaction, query answering and core
computation all reduce to "enumerate homomorphisms of a small atom set into
a growing instance".

The engine improves on the naive reference (:mod:`.naive`) in two ways:

* **Dynamic most-constrained-first ordering.**  Instead of fixing the atom
  order up front, the next body atom is chosen *under the current partial
  assignment*: the atom whose cheapest candidate pool (smallest
  ``(predicate, position, term)`` bucket over its bound positions, or the
  whole predicate extent if nothing is bound yet) is smallest.  Binding one
  join variable immediately shrinks the pools of every adjacent atom.

* **Position-bucket intersection.**  Candidates for an atom with bound
  positions are obtained by intersecting the per-position buckets of the
  instance's index rather than scanning the predicate extent and filtering.

Semi-naive discovery (:func:`delta_homomorphisms`) enumerates exactly the
homomorphisms whose image uses at least one fact from a delta batch, by
seeding the search with each (atom, new fact) anchor.  A homomorphism with
``k`` image facts in the delta is produced up to ``k`` times (and repeated
body atoms can anchor it more than once); consumers dedupe — the chase
runner through its trigger-seen set, the saturation loop through the
instance membership check.

The engine borrows the instance's live buckets (``_pred_bucket`` /
``_pos_slots``) for the duration of one enumeration; they are valid until
the instance's next mutation, and an :meth:`Instance.rollback` counts as
a mutation (it restores the same bucket dictionaries to their prior
contents).  Transactional callers therefore must not hold a live
enumeration over an instance across a savepoint scope that mutates it —
materialise the homomorphism list first, as the witness engine's defusal
probes do (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable

Homomorphism = dict[Term, Term]

_EMPTY: frozenset[Atom] = frozenset()


class AdHocIndex:
    """A position index over a plain atom collection (non-``Instance``
    targets), presenting the same borrowing accessors as ``Instance``."""

    __slots__ = ("_by_predicate", "_by_pos")

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self._by_predicate: dict[str, set[Atom]] = {}
        # Cells keyed by term id, mirroring Instance._by_pos.
        self._by_pos: dict[str, list[dict[int, set[Atom]]]] = {}
        for a in atoms:
            self._by_predicate.setdefault(a.predicate, set()).add(a)
            slots = self._by_pos.setdefault(a.predicate, [])
            while len(slots) < len(a.args):
                slots.append({})
            for i, t in enumerate(a.args):
                slots[i].setdefault(t.tid, set()).add(a)

    def _pred_bucket(self, predicate: str):
        return self._by_predicate.get(predicate, _EMPTY)

    def _pos_slots(self, predicate: str):
        return self._by_pos.get(predicate)


def match_atom(
    atom: Atom,
    fact: Atom,
    mapping: Homomorphism,
    frozen_nulls: bool,
) -> Homomorphism | None:
    """Try to extend ``mapping`` so that ``atom`` maps onto ``fact``.

    Returns the (new) extension dict or None.  The input mapping is not
    modified.
    """
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    added: Homomorphism = {}
    for s, t in zip(atom.args, fact.args):
        if isinstance(s, Variable) or (isinstance(s, Null) and not frozen_nulls):
            bound = mapping.get(s) or added.get(s)
            if bound is None:
                added[s] = t
            elif bound is not t:
                return None
        else:
            # Rigid: constants (and frozen nulls) must match exactly.
            if s is not t:
                return None
    return added


def seed_mapping(atom: Atom, fact: Atom) -> Homomorphism | None:
    """The partial mapping sending ``atom`` onto ``fact``, or None.

    Used to anchor semi-naive discovery: variables bind to the fact's terms
    (consistently across repeated variables), constants and nulls must
    match rigidly — i.e. a frozen-null match against an empty mapping.
    """
    return match_atom(atom, fact, {}, frozen_nulls=True)


def match(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` atoms into ``target``.

    The indexed counterpart of :func:`repro.matching.naive.match`: same
    contract, same homomorphism set, different enumeration order and much
    better complexity on selective bodies.
    """
    idx = target if isinstance(target, Instance) else AdHocIndex(target)
    mapping: Homomorphism = dict(seed) if seed else {}

    # Constants in the source must not be seeded to something else.
    for k, v in mapping.items():
        if isinstance(k, Constant) and k is not v:
            return

    atoms = list(source)
    if not atoms:
        yield dict(mapping)
        return

    # One plan per atom: the borrowed position-bucket list and the argument
    # slots with rigidity (constants and frozen nulls never consult the
    # mapping) precomputed.
    plans = []
    for a in atoms:
        slots = idx._pos_slots(a.predicate)
        args = []
        for i, s in enumerate(a.args):
            rigid = not (
                isinstance(s, Variable)
                or (isinstance(s, Null) and not frozen_nulls)
            )
            args.append((i, s, rigid))
        plans.append((a, slots, args))

    pred_bucket = idx._pred_bucket
    get_bound = mapping.get

    def pool_size(plan) -> int:
        atom, slots, args = plan
        best = -1
        for i, s, rigid in args:
            t = s if rigid else get_bound(s)
            if t is None:
                continue
            if slots is None or i >= len(slots):
                return 0
            c = len(slots[i].get(t.tid, _EMPTY))
            if c == 0:
                return 0
            if best < 0 or c < best:
                best = c
        if best < 0:
            return len(pred_bucket(atom.predicate))
        return best

    def candidate_pool(plan):
        atom, slots, args = plan
        buckets = []
        for i, s, rigid in args:
            t = s if rigid else get_bound(s)
            if t is None:
                continue
            if slots is None or i >= len(slots):
                return _EMPTY
            b = slots[i].get(t.tid, _EMPTY)
            if not b:
                return _EMPTY
            buckets.append(b)
        if not buckets:
            return pred_bucket(atom.predicate)
        if len(buckets) == 1:
            return buckets[0]
        buckets.sort(key=len)
        return buckets[0].intersection(*buckets[1:])

    remaining = plans

    def recurse() -> Iterator[Homomorphism]:
        if not remaining:
            yield dict(mapping)
            return
        # Most-constrained-first under the current partial assignment.
        if len(remaining) == 1:
            best_j = 0
            if pool_size(remaining[0]) == 0:
                return
        else:
            best_j, best_c = 0, -1
            for j, plan in enumerate(remaining):
                c = pool_size(plan)
                if best_c < 0 or c < best_c:
                    best_j, best_c = j, c
                    if c == 0:
                        return  # some atom has no candidates: dead branch
        plan = remaining.pop(best_j)
        atom = plan[0]
        try:
            for fact in candidate_pool(plan):
                added = match_atom(atom, fact, mapping, frozen_nulls)
                if added is None:
                    continue
                mapping.update(added)
                yield from recurse()
                for k in added:
                    del mapping[k]
        finally:
            remaining.insert(best_j, plan)

    count = 0
    for h in recurse():
        yield h
        count += 1
        if limit is not None and count >= limit:
            return


# -- semi-naive discovery ---------------------------------------------------


def body_atom_index(
    items: Iterable[tuple[object, Sequence[Atom]]],
) -> dict[str, list[tuple[object, Sequence[Atom], Atom]]]:
    """Index ``(key, body)`` pairs by body-atom predicate.

    Built once per dependency set; :func:`delta_homomorphisms` then joins
    each new fact only against the bodies that mention its predicate.
    """
    by_pred: dict[str, list[tuple[object, Sequence[Atom], Atom]]] = {}
    for key, body in items:
        for atom in body:
            by_pred.setdefault(atom.predicate, []).append((key, body, atom))
    return by_pred


def delta_homomorphisms(
    by_pred: Mapping[str, list[tuple[object, Sequence[Atom], Atom]]],
    target: Instance,
    new_facts: Iterable[Atom],
) -> Iterator[tuple[object, Homomorphism]]:
    """Yield ``(key, h)`` for every body homomorphism anchored at a new fact.

    ``target`` must already contain the new facts.  Every homomorphism whose
    image uses at least one fact of ``new_facts`` is produced (possibly more
    than once — see the module docstring); homomorphisms entirely within the
    pre-delta instance are *not*, which is exactly the semi-naive contract.
    """
    from . import homomorphisms  # backend dispatch; no cycle at module load

    for fact in new_facts:
        for key, body, atom in by_pred.get(fact.predicate, ()):
            seed = seed_mapping(atom, fact)
            if seed is None:
                continue
            for h in homomorphisms(body, target, seed=seed, limit=None):
                yield key, h
