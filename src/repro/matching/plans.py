"""Compiled per-body join plans: the ``"planned"`` matching backend.

The indexed engine (:mod:`.engine`) re-interprets every body on every
call: it rebuilds per-atom plan tuples, allocates two closures, and runs
a most-constrained-first *search over atoms* at every node of the
backtracking tree.  On selective corpora that interpretive overhead is
noise next to the pruning it buys; on the flat classes of the matching
bench (tiny candidate pools, very many trigger probes — e.g.
E1001-5000/G1-10) it **is** the cost.  This module compiles each
``(body, seeded-variables, frozen_nulls)`` combination once into a
fixed-order join plan and replays the plan on every subsequent call:

* **Atom order is chosen at compile time** from the index statistics of
  the first target the plan runs against (bucket sizes / predicate
  extents), greedily most-constrained-first, instead of being re-derived
  at every search node.
* **Each atom becomes one specialised step** — a flat tuple of probe,
  check and output position lists — executed by a tight loop over the
  instance's term-id-keyed ``(predicate, position)`` buckets: rigid
  positions (constants, frozen nulls) compile to bucket probes by the
  term id burned in at compile time; positions bound by the seed or by an
  earlier atom compile to bucket probes through a register array; repeated
  terms within one atom compile to argument identity checks; first
  occurrences compile to register writes.  No mapping dict is touched
  until a full homomorphism is emitted.
* **Plans are cached** in a bounded module-level table keyed by
  ``(body atoms, seeded flex-term ids restricted to the body,
  frozen_nulls)`` — exactly the inputs that determine the compiled
  shape.  The semi-naive discovery loop therefore hits one cached plan
  per (dependency, anchor atom) pair after the first delta round;
  :func:`warm` precompiles those pairs up front at chase start.

The backend is *order-free equivalent* to the engine: it enumerates the
same homomorphism **set**, possibly in a different order, which is the
contract the backend switch and the differential suites hold every
backend to (chase decisions are order-insensitive because the runner
sorts discovery batches canonically; see DESIGN.md §9).

Like the engine, the executor borrows the instance's live buckets; a
plan holds **no** reference to any instance — only atom structure, term
objects and term ids — so the cache never pins instance state.  Term ids
are process-local (:mod:`repro.model.terms`) and never escape into the
emitted homomorphisms, which map term objects to term objects.

**Columnar execution (DESIGN.md §10/§11).**  When the target is a
:class:`~repro.model.columnar.ColumnarInstance` the same compiled plans
run over the store's typed int columns instead of atom buckets: each
plan lazily code-generates one specialised nested-loop generator
(:func:`_codegen_columnar`) whose registers, probes and checks are all
family-local term ids — probe-free steps scan rowmap keys directly
(zero column reads), probed pools filter tombstones against the live
bitmap and upgrade to the vectorised :mod:`repro.model.kernels` above a
size threshold, and no ``Atom`` or ``Term`` object is touched until a
homomorphism is emitted at the boundary.  The object path below is
retained verbatim for ``Instance`` and ad-hoc targets (and is what the
reference backends keep running against).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..model import kernels as _kernels
from ..model.atoms import Atom
from ..model.columnar import ColumnarInstance
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable
from .engine import AdHocIndex, Homomorphism

_EMPTY: frozenset[Atom] = frozenset()

#: Hard cap on cached compiled bodies.  Each entry is a few hundred bytes
#: of tuples; 4096 covers every corpus class with room to spare, and the
#: table is simply cleared when it would overflow (compilation is cheap
#: relative to the chase that triggered it).
_CACHE_LIMIT = 4096

# (atoms, frozenset of seeded body-flex tids, frozen_nulls) → _Plan
_plan_cache: dict[tuple, "_Plan"] = {}


def clear_cache() -> None:
    """Drop every compiled plan (test isolation / memory pressure)."""
    _plan_cache.clear()


def cache_size() -> int:
    return len(_plan_cache)


def _is_flex(term: Term, frozen_nulls: bool) -> bool:
    """Can this body term be bound by the homomorphism (vs rigid)?"""
    return isinstance(term, Variable) or (
        isinstance(term, Null) and not frozen_nulls
    )


class _Plan:
    """A compiled body: fixed atom order + one specialised step per atom.

    ``steps[k]`` is a flat tuple
    ``(predicate, arity, rigid, bound, checks, outs)`` with

    * ``rigid``  — ``((pos, term), ...)``: bucket-probe by ``term.tid``,
      then identity-check ``fact.args[pos] is term``;
    * ``bound``  — ``((pos, reg), ...)``: bucket-probe by the term id of
      register ``reg`` (seeded, or written by an earlier step);
    * ``checks`` — ``((pos, pos0), ...)``: within-atom repeats,
      ``fact.args[pos] is fact.args[pos0]``;
    * ``outs``   — ``((pos, reg), ...)``: first occurrences, written to
      register ``reg``.

    ``seed_terms`` lists the seeded body-flex terms in register order
    0..n; ``out_pairs`` maps the remaining registers back to their terms
    when a result dict is emitted.
    """

    __slots__ = ("steps", "seed_terms", "out_pairs", "nregs", "columnar_fn")

    def __init__(
        self,
        atoms: Sequence[Atom],
        order: Sequence[int],
        seed_terms: Sequence[Term],
        frozen_nulls: bool,
    ) -> None:
        self.columnar_fn: Callable | None = None  # lazy; see _codegen_columnar
        self.seed_terms = tuple(seed_terms)
        reg_of: dict[Term, int] = {t: i for i, t in enumerate(self.seed_terms)}
        out_pairs: list[tuple[Term, int]] = []
        steps = []
        for j in order:
            atom = atoms[j]
            rigid: list[tuple[int, Term]] = []
            bound: list[tuple[int, int]] = []
            checks: list[tuple[int, int]] = []
            outs: list[tuple[int, int]] = []
            first_pos: dict[Term, int] = {}
            for pos, s in enumerate(atom.args):
                if not _is_flex(s, frozen_nulls):
                    rigid.append((pos, s))
                elif s in first_pos:
                    checks.append((pos, first_pos[s]))
                else:
                    first_pos[s] = pos
                    reg = reg_of.get(s)
                    if reg is None:
                        reg = len(reg_of)
                        reg_of[s] = reg
                        out_pairs.append((s, reg))
                        outs.append((pos, reg))
                    else:
                        bound.append((pos, reg))
            steps.append((
                atom.predicate,
                atom.arity,
                tuple(rigid),
                tuple(bound),
                tuple(checks),
                tuple(outs),
            ))
        self.steps = tuple(steps)
        self.out_pairs = tuple(out_pairs)
        self.nregs = len(reg_of)


def _estimate(
    atom: Atom,
    bound_terms: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex,
) -> tuple[float, int]:
    """(estimated candidate-pool size, -probe count) for greedy ordering.

    Rigid positions contribute their exact compile-time bucket size;
    positions over already-bound flex terms contribute the *average* cell
    size of their slot (extent / distinct keys) — the runtime value is
    unknown at compile time.  No probe at all costs the whole predicate
    extent.
    """
    extent = len(idx._pred_bucket(atom.predicate))
    slots = idx._pos_slots(atom.predicate)
    best = float(extent)
    probes = 0
    for pos, s in enumerate(atom.args):
        flex = _is_flex(s, frozen_nulls)
        if flex and s not in bound_terms:
            continue
        probes += 1
        if slots is None or pos >= len(slots):
            best = 0.0
            continue
        cell = slots[pos]
        if not flex:
            size = float(len(cell.get(s.tid, _EMPTY)))
        else:
            size = extent / len(cell) if cell else 0.0
        if size < best:
            best = size
    return best, -probes


def _estimate_columnar(
    atom: Atom,
    bound_terms: set[Term],
    frozen_nulls: bool,
    inst: ColumnarInstance,
) -> tuple[float, int]:
    """:func:`_estimate` over a columnar store's row-id index: extents are
    live-row counts, rigid cells are candidate-cell sizes (tombstones
    included — dead rows inflate an estimate but never its correctness)."""
    store = inst._stores.get((atom.predicate, atom.arity))
    if store is None:
        return 0.0, 0
    local_of = inst._terms.local_of
    extent = store.nlive
    best = float(extent)
    probes = 0
    for pos, s in enumerate(atom.args):
        flex = _is_flex(s, frozen_nulls)
        if flex and s not in bound_terms:
            continue
        probes += 1
        cell_map = store.index[pos]
        if not flex:
            lid = local_of.get(s.tid)
            size = 0.0 if lid is None else float(len(cell_map.get(lid, ())))
        else:
            size = extent / len(cell_map) if cell_map else 0.0
        if size < best:
            best = size
    return best, -probes


def _order_atoms(
    atoms: Sequence[Atom],
    seeded: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex | ColumnarInstance,
    estimate: Callable = _estimate,
) -> list[int]:
    """Greedy most-constrained-first order, decided once at compile time
    from the statistics of the compiling target's index."""
    remaining = list(range(len(atoms)))
    bound = set(seeded)
    order: list[int] = []
    while remaining:
        best_j = min(
            remaining,
            key=lambda j: (*estimate(atoms[j], bound, frozen_nulls, idx), j),
        )
        remaining.remove(best_j)
        order.append(best_j)
        for s in atoms[best_j].args:
            if _is_flex(s, frozen_nulls):
                bound.add(s)
    return order


def _compile(
    atoms: tuple[Atom, ...],
    seeded: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex | ColumnarInstance,
    estimate: Callable = _estimate,
) -> _Plan:
    seed_terms = sorted(seeded, key=lambda t: t.tid)
    order = _order_atoms(atoms, seeded, frozen_nulls, idx, estimate)
    return _Plan(atoms, order, seed_terms, frozen_nulls)


def _codegen_columnar(plan: _Plan) -> Callable:
    """Generate the columnar executor for one compiled plan.

    The emitted function has the shape::

        def plan_fn(stores, terms, lof, r0, ..., rk):  # seeds, as lids
            s0 = stores.get(('P', 2))            # one store per step
            if s0 is None: return
            q0 = lof.get(17)                     # rigid term → local id
            if q0 is None: return                # term absent: no match
            m0 = s0.rowmap                       # probe-free scan source
            c1_1 = s1.cols[1]                    # hoisted typed columns
            x1_0 = s1.index[0]                   # hoisted probe maps
            v1 = s1.live                         # hoisted live bitmap
            for t0_0, t0_1 in m0:                # keys ARE the lid tuples
                p = x1_0.get(t0_0)               # bound probe
                if p is None: continue
                if len(p) >= _K.MIN_VECTOR_ROWS:     # vectorised kernel
                    p = _K.filter_rows(p, v1, ((c1_0, t0_0),), ())
                    for w1 in p:
                        r2 = c1_1[w1]
                        yield {k0: terms[t0_0], k1: terms[r2]}
                else:                            # inline scalar loop
                    for w1 in p:
                        if not v1[w1]: continue      # tombstone filter
                        if c1_0[w1] != t0_0: continue
                        r2 = c1_1[w1]
                        yield {k0: terms[t0_0], k1: terms[r2]}

    Everything in the loop nest is an int read, int compare or buffer
    iteration; the ``for`` statement captures each pool's iterator at
    entry, so the scratch names ``p``/``b`` are safely reused per depth.

    Three layout-driven specialisations (DESIGN.md §11):

    * **Probe-free steps iterate rowmap keys**, unpacking the lid tuple
      straight into loop variables — the keys already hold every column
      value of a live row, so the full-extent scan (the dominant shape
      on the flat corpus classes) reads no column and consults no live
      bit at all.
    * **Probed steps filter tombstones** (``live`` bit per candidate),
      and the outermost probed pool upgrades to one
      :func:`repro.model.kernels.filter_rows` call above
      ``MIN_VECTOR_ROWS`` — live test and equality checks evaluated as
      whole-array numpy operations over the ``array('q')`` buffers when
      the numpy kernels are active (no vector branch is emitted at all
      under the pure-Python kernels: an inline loop always wins there).
    * **Rigid terms lower to local ids in the prologue** (plans are
      cached across instances, so the family-local id cannot be burned
      in): an absent term means no row can match and the executor
      returns before touching a store.

    Emission happens *inside* the generated code: the innermost loop
    yields the finished homomorphism dict (out terms are burned in as
    the globals ``k0…``, out lids lifted through the family's dense
    ``terms`` list), built by one dict-display instruction.  Seed
    entries are NOT in the emitted dict (out terms are never seeded, so
    the two halves are disjoint); the caller updates them in when
    present.
    """
    steps = plan.steps
    nsteps = len(steps)
    src: list[str] = []
    args = ", ".join(
        ["stores", "terms", "lof"]
        + [f"r{i}" for i in range(len(plan.seed_terms))]
    )
    src.append(f"def plan_fn({args}):")
    for d, step in enumerate(steps):
        predicate, arity = step[0], step[1]
        src.append(f" s{d} = stores.get(({predicate!r}, {arity}))")
        src.append(f" if s{d} is None:")
        src.append("  return")
    # Rigid terms: one family-local id lookup per distinct term, hoisted.
    rigid_name: dict[int, str] = {}
    for step in steps:
        for _p, t in step[2]:
            if t.tid not in rigid_name:
                name = f"q{len(rigid_name)}"
                rigid_name[t.tid] = name
                src.append(f" {name} = lof.get({t.tid})")
                src.append(f" if {name} is None:")
                src.append("  return")
    probe_free = []
    for d, step in enumerate(steps):
        _, _, rigid, bound, checks, outs = step
        pf = not rigid and not bound
        probe_free.append(pf)
        if pf:
            src.append(f" m{d} = s{d}.rowmap")
            continue
        probe_pos = sorted({p for p, _ in rigid} | {p for p, _ in bound})
        col_pos = sorted(
            set(probe_pos)
            | {p for p, _ in checks}
            | {p0 for _, p0 in checks}
            | {p for p, _ in outs}
        )
        for p in col_pos:
            src.append(f" c{d}_{p} = s{d}.cols[{p}]")
        for p in probe_pos:
            src.append(f" x{d}_{p} = s{d}.index[{p}]")
        src.append(f" v{d} = s{d}.live")

    # regname[reg] → the expression naming that register's current lid at
    # the point of use: a seed parameter, an unpacked rowmap-key element,
    # or an explicit r{reg} written from a column read.
    regname = {i: f"r{i}" for i in range(len(plan.seed_terms))}
    vectorise = _kernels.VECTORISED

    def emit_tail(d: int, indent: str) -> None:
        if d + 1 == nsteps:
            items = ", ".join(
                f"k{j}: terms[{regname[reg]}]"
                for j, (_, reg) in enumerate(plan.out_pairs)
            )
            src.append(f"{indent}yield {{{items}}}")
        else:
            emit_step(d + 1, indent)

    def emit_scalar_loop(d: int, indent: str, step: tuple) -> None:
        _, _, rigid, bound, checks, outs = step
        src.append(f"{indent}for w{d} in p:")
        body = indent + " "
        src.append(f"{body}if not v{d}[w{d}]:")
        src.append(f"{body} continue")
        for p, t in rigid:
            src.append(f"{body}if c{d}_{p}[w{d}] != {rigid_name[t.tid]}:")
            src.append(f"{body} continue")
        for p, reg in bound:
            src.append(f"{body}if c{d}_{p}[w{d}] != {regname[reg]}:")
            src.append(f"{body} continue")
        for p, p0 in checks:
            src.append(f"{body}if c{d}_{p}[w{d}] != c{d}_{p0}[w{d}]:")
            src.append(f"{body} continue")
        for p, reg in outs:
            src.append(f"{body}r{reg} = c{d}_{p}[w{d}]")
            regname[reg] = f"r{reg}"
        emit_tail(d, body)

    def emit_step(d: int, indent: str) -> None:
        step = steps[d]
        _, arity, rigid, bound, checks, outs = step
        bail = "return" if d == 0 else "continue"
        if probe_free[d]:
            if arity:
                names = ", ".join(f"t{d}_{p}" for p in range(arity))
                if arity == 1:
                    names += ","  # unpack the 1-tuple key
                src.append(f"{indent}for {names} in m{d}:")
            else:
                src.append(f"{indent}for _e{d} in m{d}:")
            body = indent + " "
            for p, p0 in checks:
                src.append(f"{body}if t{d}_{p} != t{d}_{p0}:")
                src.append(f"{body} continue")
            for p, reg in outs:
                regname[reg] = f"t{d}_{p}"
            emit_tail(d, body)
            return
        probes = [f"x{d}_{p}.get({rigid_name[t.tid]})" for p, t in rigid] + [
            f"x{d}_{p}.get({regname[reg]})" for p, reg in bound
        ]
        src.append(f"{indent}p = {probes[0]}")
        src.append(f"{indent}if p is None:")
        src.append(f"{indent} {bail}")
        for probe in probes[1:]:
            src.append(f"{indent}b = {probe}")
            src.append(f"{indent}if b is None:")
            src.append(f"{indent} {bail}")
            src.append(f"{indent}if len(b) < len(p):")
            src.append(f"{indent} p = b")
        if vectorise and d == 0:
            # Only the outermost pool gets the vectorised branch: inner
            # pools are small by most-constrained ordering, and a dual
            # path per depth would double the nest size at each level.
            eqs = [f"(c{d}_{p}, {rigid_name[t.tid]})" for p, t in rigid] + [
                f"(c{d}_{p}, {regname[reg]})" for p, reg in bound
            ]
            pairs = [f"(c{d}_{p}, c{d}_{p0})" for p, p0 in checks]
            eqs_src = "(" + ", ".join(eqs) + ("," if len(eqs) == 1 else "") + ")"
            pairs_src = (
                "(" + ", ".join(pairs) + ("," if len(pairs) == 1 else "") + ")"
            )
            src.append(f"{indent}if len(p) >= _K.MIN_VECTOR_ROWS:")
            src.append(
                f"{indent} p = _K.filter_rows(p, v{d}, {eqs_src}, {pairs_src})"
            )
            src.append(f"{indent} for w{d} in p:")
            body = indent + "  "
            for p, reg in outs:
                src.append(f"{body}r{reg} = c{d}_{p}[w{d}]")
                regname[reg] = f"r{reg}"
            emit_tail(d, body)
            src.append(f"{indent}else:")
            emit_scalar_loop(d, indent + " ", step)
        else:
            emit_scalar_loop(d, indent, step)

    emit_step(0, " ")
    ns: dict = {"len": len, "_K": _kernels}
    for j, (t, _) in enumerate(plan.out_pairs):
        ns[f"k{j}"] = t
    exec(compile("\n".join(src), "<columnar-plan>", "exec"), ns)
    return ns["plan_fn"]


def _execute(
    steps: tuple,
    depth: int,
    idx: Instance | AdHocIndex,
    regs: list,
) -> Iterator[None]:
    """Run the plan from ``steps[depth]``; yields once per full match.

    Emission protocol: a bare ``yield`` signals "the registers currently
    hold one complete homomorphism" — the caller reads ``regs`` while the
    generator is suspended.  Registers are overwritten, never unwound:
    each register has exactly one writing step, and deeper steps only
    read registers written above them.
    """
    predicate, arity, rigid, bound, checks, outs = steps[depth]
    pos_slots = idx._pos_slots(predicate)
    if pos_slots is None:
        return  # predicate never seen: no facts to match
    pool = None
    best = -1
    nslots = len(pos_slots)
    for pos, term in rigid:
        if pos >= nslots:
            return
        b = pos_slots[pos].get(term.tid)
        if not b:
            return
        if best < 0 or len(b) < best:
            pool, best = b, len(b)
    for pos, reg in bound:
        if pos >= nslots:
            return
        b = pos_slots[pos].get(regs[reg].tid)
        if not b:
            return
        if best < 0 or len(b) < best:
            pool, best = b, len(b)
    if pool is None:
        pool = idx._pred_bucket(predicate)
    last = depth + 1 == len(steps)
    for fact in pool:
        fargs = fact.args
        if len(fargs) != arity:
            continue
        ok = True
        for pos, term in rigid:
            if fargs[pos] is not term:
                ok = False
                break
        if ok:
            for pos, reg in bound:
                if fargs[pos] is not regs[reg]:
                    ok = False
                    break
        if ok:
            for pos, pos0 in checks:
                if fargs[pos] is not fargs[pos0]:
                    ok = False
                    break
        if not ok:
            continue
        for pos, reg in outs:
            regs[reg] = fargs[pos]
        if last:
            yield None
        else:
            yield from _execute(steps, depth + 1, idx, regs)


def match(
    source: Sequence[Atom],
    target: Instance | ColumnarInstance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` into ``target`` via a
    compiled (and cached) join plan.

    Same contract and same homomorphism *set* as
    :func:`repro.matching.engine.match` / :func:`repro.matching.naive.match`
    (order may differ).  Columnar targets run the plan's generated int
    executor; everything else runs the object path below.
    """
    if isinstance(target, ColumnarInstance):
        return _match_columnar(tuple(source), target, seed, frozen_nulls, limit)
    return _match_object(source, target, seed, frozen_nulls, limit)


def _match_object(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    idx = target if isinstance(target, Instance) else AdHocIndex(target)
    base: Homomorphism = dict(seed) if seed else {}

    # Constants in the source must not be seeded to something else (the
    # engine rejects these wholesale, irrespective of body membership).
    for k, v in base.items():
        if isinstance(k, Constant) and k is not v:
            return

    atoms = tuple(source)
    if not atoms:
        yield dict(base)
        return

    seeded = {
        s
        for a in atoms
        for s in a.args
        if _is_flex(s, frozen_nulls) and s in base
    }
    key = (atoms, frozenset(t.tid for t in seeded), frozen_nulls)
    plan = _plan_cache.get(key)
    if plan is None:
        if len(_plan_cache) >= _CACHE_LIMIT:
            _plan_cache.clear()
        plan = _compile(atoms, seeded, frozen_nulls, idx)
        _plan_cache[key] = plan

    regs: list = [None] * plan.nregs
    for i, t in enumerate(plan.seed_terms):
        regs[i] = base[t]

    out_pairs = plan.out_pairs
    count = 0
    for _ in _execute(plan.steps, 0, idx, regs):
        h = dict(base)
        for t, reg in out_pairs:
            h[t] = regs[reg]
        yield h
        count += 1
        if limit is not None and count >= limit:
            return


def _match_columnar(
    atoms: tuple[Atom, ...],
    inst: ColumnarInstance,
    seed: Mapping[Term, Term] | None,
    frozen_nulls: bool,
    limit: int | None,
) -> Iterator[Homomorphism]:
    """The columnar arm of :func:`match`: same plan cache, int executor.

    Terms cross the boundary exactly twice — seed images are lowered to
    family-local ids going in (``None`` for a term the instance has
    never seen, which the generated probes and checks reject wholesale),
    and out-register lids are lifted through the family's dense term
    list coming out.
    """
    base: Homomorphism = dict(seed) if seed else {}
    for k, v in base.items():
        if isinstance(k, Constant) and k is not v:
            return
    if not atoms:
        yield dict(base)
        return

    seeded = {
        s
        for a in atoms
        for s in a.args
        if _is_flex(s, frozen_nulls) and s in base
    }
    key = (atoms, frozenset(t.tid for t in seeded), frozen_nulls)
    plan = _plan_cache.get(key)
    if plan is None:
        if len(_plan_cache) >= _CACHE_LIMIT:
            _plan_cache.clear()
        plan = _compile(atoms, seeded, frozen_nulls, inst, _estimate_columnar)
        _plan_cache[key] = plan
    fn = plan.columnar_fn
    if fn is None:
        fn = _codegen_columnar(plan)
        plan.columnar_fn = fn

    table = inst._terms
    local_of = table.local_of
    seed_lids = [local_of.get(base[t].tid) for t in plan.seed_terms]
    gen = fn(inst._stores, table.terms, local_of, *seed_lids)
    if not base and limit is None:
        # The executor already yields finished homomorphism dicts; the
        # unseeded, unbounded hot path delegates to it wholesale.
        yield from gen
        return
    count = 0
    for h in gen:
        if base:
            h.update(base)  # disjoint from outs (out terms never seeded)
        yield h
        count += 1
        if limit is not None and count >= limit:
            return


def delta_row_homomorphisms(
    by_pred: Mapping[str, list[tuple[object, Sequence[Atom], Atom]]],
    target: ColumnarInstance,
    handles: Iterable[tuple[tuple[str, int], int]],
) -> Iterator[tuple[object, Homomorphism]]:
    """Semi-naive discovery over columnar delta-row handles.

    The columnar counterpart of
    :func:`repro.matching.engine.delta_homomorphisms`: each ``(storekey,
    row)`` handle from :meth:`ColumnarInstance.added_rows_since` anchors
    every body atom over its predicate without materialising the fact —
    the anchor is computed lid-by-lid (variables bind consistently,
    constants and nulls must match rigidly), then the plan executor runs
    with the resulting seed.  Same ``(key, h)`` stream as the object
    version, same duplication caveats; consumers dedupe.
    """
    terms = target._terms.terms
    stores = target._stores
    for skey, row in handles:
        predicate, arity = skey
        entries = by_pred.get(predicate)
        if not entries:
            continue
        store = stores[skey]
        row_terms = [terms[col[row]] for col in store.cols]
        for key, body, atom in entries:
            if atom.arity != arity:
                continue
            seed: Homomorphism = {}
            ok = True
            for s, rt in zip(atom.args, row_terms):
                if isinstance(s, Variable):
                    bound = seed.get(s)
                    if bound is None:
                        seed[s] = rt
                    elif bound is not rt:
                        ok = False
                        break
                elif s is not rt:
                    # Rigid anchor: constants and nulls must sit on the
                    # row exactly (seed_mapping's frozen-null semantics;
                    # terms are interned, so identity is equality).
                    ok = False
                    break
            if not ok:
                continue
            for h in match(body, target, seed=seed, limit=None):
                yield key, h


def warm(
    bodies: Iterable[Sequence[Atom]],
    target: Instance | ColumnarInstance | Iterable[Atom],
    frozen_nulls: bool = False,
) -> int:
    """Precompile the plans a chase over ``bodies`` will need.

    For every body: the unseeded plan (initial full enumeration) plus one
    plan per body atom seeded with that atom's variables — exactly the
    seed shapes :func:`repro.matching.engine.seed_mapping` produces during
    semi-naive delta discovery.  Returns the number of plans compiled
    fresh (cached ones are skipped).  Purely an optimisation: a cold
    cache compiles lazily on first use with identical results.
    """
    estimate = _estimate
    if isinstance(target, ColumnarInstance):
        idx: Instance | AdHocIndex | ColumnarInstance = target
        estimate = _estimate_columnar
    elif isinstance(target, Instance):
        idx = target
    else:
        idx = AdHocIndex(target)
    compiled = 0
    for body in bodies:
        atoms = tuple(body)
        if not atoms:
            continue
        seed_sets = [set()]
        for anchor in atoms:
            seed_sets.append(
                {s for s in anchor.args if _is_flex(s, frozen_nulls)}
            )
        for seeded in seed_sets:
            key = (atoms, frozenset(t.tid for t in seeded), frozen_nulls)
            if key in _plan_cache:
                continue
            if len(_plan_cache) >= _CACHE_LIMIT:
                _plan_cache.clear()
            _plan_cache[key] = _compile(atoms, seeded, frozen_nulls, idx, estimate)
            compiled += 1
    return compiled
