"""Compiled per-body join plans: the ``"planned"`` matching backend.

The indexed engine (:mod:`.engine`) re-interprets every body on every
call: it rebuilds per-atom plan tuples, allocates two closures, and runs
a most-constrained-first *search over atoms* at every node of the
backtracking tree.  On selective corpora that interpretive overhead is
noise next to the pruning it buys; on the flat classes of the matching
bench (tiny candidate pools, very many trigger probes — e.g.
E1001-5000/G1-10) it **is** the cost.  This module compiles each
``(body, seeded-variables, frozen_nulls)`` combination once into a
fixed-order join plan and replays the plan on every subsequent call:

* **Atom order is chosen at compile time** from the index statistics of
  the first target the plan runs against (bucket sizes / predicate
  extents), greedily most-constrained-first, instead of being re-derived
  at every search node.
* **Each atom becomes one specialised step** — a flat tuple of probe,
  check and output position lists — executed by a tight loop over the
  instance's term-id-keyed ``(predicate, position)`` buckets: rigid
  positions (constants, frozen nulls) compile to bucket probes by the
  term id burned in at compile time; positions bound by the seed or by an
  earlier atom compile to bucket probes through a register array; repeated
  terms within one atom compile to argument identity checks; first
  occurrences compile to register writes.  No mapping dict is touched
  until a full homomorphism is emitted.
* **Plans are cached** in a bounded module-level table keyed by
  ``(body atoms, seeded flex-term ids restricted to the body,
  frozen_nulls)`` — exactly the inputs that determine the compiled
  shape.  The semi-naive discovery loop therefore hits one cached plan
  per (dependency, anchor atom) pair after the first delta round;
  :func:`warm` precompiles those pairs up front at chase start.

The backend is *order-free equivalent* to the engine: it enumerates the
same homomorphism **set**, possibly in a different order, which is the
contract the backend switch and the differential suites hold every
backend to (chase decisions are order-insensitive because the runner
sorts discovery batches canonically; see DESIGN.md §9).

Like the engine, the executor borrows the instance's live buckets; a
plan holds **no** reference to any instance — only atom structure, term
objects and term ids — so the cache never pins instance state.  Term ids
are process-local (:mod:`repro.model.terms`) and never escape into the
emitted homomorphisms, which map term objects to term objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable
from .engine import AdHocIndex, Homomorphism

_EMPTY: frozenset[Atom] = frozenset()

#: Hard cap on cached compiled bodies.  Each entry is a few hundred bytes
#: of tuples; 4096 covers every corpus class with room to spare, and the
#: table is simply cleared when it would overflow (compilation is cheap
#: relative to the chase that triggered it).
_CACHE_LIMIT = 4096

# (atoms, frozenset of seeded body-flex tids, frozen_nulls) → _Plan
_plan_cache: dict[tuple, "_Plan"] = {}


def clear_cache() -> None:
    """Drop every compiled plan (test isolation / memory pressure)."""
    _plan_cache.clear()


def cache_size() -> int:
    return len(_plan_cache)


def _is_flex(term: Term, frozen_nulls: bool) -> bool:
    """Can this body term be bound by the homomorphism (vs rigid)?"""
    return isinstance(term, Variable) or (
        isinstance(term, Null) and not frozen_nulls
    )


class _Plan:
    """A compiled body: fixed atom order + one specialised step per atom.

    ``steps[k]`` is a flat tuple
    ``(predicate, arity, rigid, bound, checks, outs)`` with

    * ``rigid``  — ``((pos, term), ...)``: bucket-probe by ``term.tid``,
      then identity-check ``fact.args[pos] is term``;
    * ``bound``  — ``((pos, reg), ...)``: bucket-probe by the term id of
      register ``reg`` (seeded, or written by an earlier step);
    * ``checks`` — ``((pos, pos0), ...)``: within-atom repeats,
      ``fact.args[pos] is fact.args[pos0]``;
    * ``outs``   — ``((pos, reg), ...)``: first occurrences, written to
      register ``reg``.

    ``seed_terms`` lists the seeded body-flex terms in register order
    0..n; ``out_pairs`` maps the remaining registers back to their terms
    when a result dict is emitted.
    """

    __slots__ = ("steps", "seed_terms", "out_pairs", "nregs")

    def __init__(
        self,
        atoms: Sequence[Atom],
        order: Sequence[int],
        seed_terms: Sequence[Term],
        frozen_nulls: bool,
    ) -> None:
        self.seed_terms = tuple(seed_terms)
        reg_of: dict[Term, int] = {t: i for i, t in enumerate(self.seed_terms)}
        out_pairs: list[tuple[Term, int]] = []
        steps = []
        for j in order:
            atom = atoms[j]
            rigid: list[tuple[int, Term]] = []
            bound: list[tuple[int, int]] = []
            checks: list[tuple[int, int]] = []
            outs: list[tuple[int, int]] = []
            first_pos: dict[Term, int] = {}
            for pos, s in enumerate(atom.args):
                if not _is_flex(s, frozen_nulls):
                    rigid.append((pos, s))
                elif s in first_pos:
                    checks.append((pos, first_pos[s]))
                else:
                    first_pos[s] = pos
                    reg = reg_of.get(s)
                    if reg is None:
                        reg = len(reg_of)
                        reg_of[s] = reg
                        out_pairs.append((s, reg))
                        outs.append((pos, reg))
                    else:
                        bound.append((pos, reg))
            steps.append((
                atom.predicate,
                atom.arity,
                tuple(rigid),
                tuple(bound),
                tuple(checks),
                tuple(outs),
            ))
        self.steps = tuple(steps)
        self.out_pairs = tuple(out_pairs)
        self.nregs = len(reg_of)


def _estimate(
    atom: Atom,
    bound_terms: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex,
) -> tuple[float, int]:
    """(estimated candidate-pool size, -probe count) for greedy ordering.

    Rigid positions contribute their exact compile-time bucket size;
    positions over already-bound flex terms contribute the *average* cell
    size of their slot (extent / distinct keys) — the runtime value is
    unknown at compile time.  No probe at all costs the whole predicate
    extent.
    """
    extent = len(idx._pred_bucket(atom.predicate))
    slots = idx._pos_slots(atom.predicate)
    best = float(extent)
    probes = 0
    for pos, s in enumerate(atom.args):
        flex = _is_flex(s, frozen_nulls)
        if flex and s not in bound_terms:
            continue
        probes += 1
        if slots is None or pos >= len(slots):
            best = 0.0
            continue
        cell = slots[pos]
        if not flex:
            size = float(len(cell.get(s.tid, _EMPTY)))
        else:
            size = extent / len(cell) if cell else 0.0
        if size < best:
            best = size
    return best, -probes


def _order_atoms(
    atoms: Sequence[Atom],
    seeded: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex,
) -> list[int]:
    """Greedy most-constrained-first order, decided once at compile time
    from the statistics of the compiling target's index."""
    remaining = list(range(len(atoms)))
    bound = set(seeded)
    order: list[int] = []
    while remaining:
        best_j = min(
            remaining,
            key=lambda j: (*_estimate(atoms[j], bound, frozen_nulls, idx), j),
        )
        remaining.remove(best_j)
        order.append(best_j)
        for s in atoms[best_j].args:
            if _is_flex(s, frozen_nulls):
                bound.add(s)
    return order


def _compile(
    atoms: tuple[Atom, ...],
    seeded: set[Term],
    frozen_nulls: bool,
    idx: Instance | AdHocIndex,
) -> _Plan:
    seed_terms = sorted(seeded, key=lambda t: t.tid)
    order = _order_atoms(atoms, seeded, frozen_nulls, idx)
    return _Plan(atoms, order, seed_terms, frozen_nulls)


def _execute(
    steps: tuple,
    depth: int,
    idx: Instance | AdHocIndex,
    regs: list,
) -> Iterator[None]:
    """Run the plan from ``steps[depth]``; yields once per full match.

    Emission protocol: a bare ``yield`` signals "the registers currently
    hold one complete homomorphism" — the caller reads ``regs`` while the
    generator is suspended.  Registers are overwritten, never unwound:
    each register has exactly one writing step, and deeper steps only
    read registers written above them.
    """
    predicate, arity, rigid, bound, checks, outs = steps[depth]
    pos_slots = idx._pos_slots(predicate)
    if pos_slots is None:
        return  # predicate never seen: no facts to match
    pool = None
    best = -1
    nslots = len(pos_slots)
    for pos, term in rigid:
        if pos >= nslots:
            return
        b = pos_slots[pos].get(term.tid)
        if not b:
            return
        if best < 0 or len(b) < best:
            pool, best = b, len(b)
    for pos, reg in bound:
        if pos >= nslots:
            return
        b = pos_slots[pos].get(regs[reg].tid)
        if not b:
            return
        if best < 0 or len(b) < best:
            pool, best = b, len(b)
    if pool is None:
        pool = idx._pred_bucket(predicate)
    last = depth + 1 == len(steps)
    for fact in pool:
        fargs = fact.args
        if len(fargs) != arity:
            continue
        ok = True
        for pos, term in rigid:
            if fargs[pos] is not term:
                ok = False
                break
        if ok:
            for pos, reg in bound:
                if fargs[pos] is not regs[reg]:
                    ok = False
                    break
        if ok:
            for pos, pos0 in checks:
                if fargs[pos] is not fargs[pos0]:
                    ok = False
                    break
        if not ok:
            continue
        for pos, reg in outs:
            regs[reg] = fargs[pos]
        if last:
            yield None
        else:
            yield from _execute(steps, depth + 1, idx, regs)


def match(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` into ``target`` via a
    compiled (and cached) join plan.

    Same contract and same homomorphism *set* as
    :func:`repro.matching.engine.match` / :func:`repro.matching.naive.match`
    (order may differ).
    """
    idx = target if isinstance(target, Instance) else AdHocIndex(target)
    base: Homomorphism = dict(seed) if seed else {}

    # Constants in the source must not be seeded to something else (the
    # engine rejects these wholesale, irrespective of body membership).
    for k, v in base.items():
        if isinstance(k, Constant) and k is not v:
            return

    atoms = tuple(source)
    if not atoms:
        yield dict(base)
        return

    seeded = {
        s
        for a in atoms
        for s in a.args
        if _is_flex(s, frozen_nulls) and s in base
    }
    key = (atoms, frozenset(t.tid for t in seeded), frozen_nulls)
    plan = _plan_cache.get(key)
    if plan is None:
        if len(_plan_cache) >= _CACHE_LIMIT:
            _plan_cache.clear()
        plan = _compile(atoms, seeded, frozen_nulls, idx)
        _plan_cache[key] = plan

    regs: list = [None] * plan.nregs
    for i, t in enumerate(plan.seed_terms):
        regs[i] = base[t]

    out_pairs = plan.out_pairs
    count = 0
    for _ in _execute(plan.steps, 0, idx, regs):
        h = dict(base)
        for t, reg in out_pairs:
            h[t] = regs[reg]
        yield h
        count += 1
        if limit is not None and count >= limit:
            return


def warm(
    bodies: Iterable[Sequence[Atom]],
    target: Instance | Iterable[Atom],
    frozen_nulls: bool = False,
) -> int:
    """Precompile the plans a chase over ``bodies`` will need.

    For every body: the unseeded plan (initial full enumeration) plus one
    plan per body atom seeded with that atom's variables — exactly the
    seed shapes :func:`repro.matching.engine.seed_mapping` produces during
    semi-naive delta discovery.  Returns the number of plans compiled
    fresh (cached ones are skipped).  Purely an optimisation: a cold
    cache compiles lazily on first use with identical results.
    """
    idx = target if isinstance(target, Instance) else AdHocIndex(target)
    compiled = 0
    for body in bodies:
        atoms = tuple(body)
        if not atoms:
            continue
        seed_sets = [set()]
        for anchor in atoms:
            seed_sets.append(
                {s for s in anchor.args if _is_flex(s, frozen_nulls)}
            )
        for seeded in seed_sets:
            key = (atoms, frozenset(t.tid for t in seeded), frozen_nulls)
            if key in _plan_cache:
                continue
            if len(_plan_cache) >= _CACHE_LIMIT:
                _plan_cache.clear()
            _plan_cache[key] = _compile(atoms, seeded, frozen_nulls, idx)
            compiled += 1
    return compiled
