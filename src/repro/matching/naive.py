"""The retained naive homomorphism-search reference.

This is the seed repository's original algorithm, kept verbatim in spirit:
atoms are ordered once up front (fewest candidate facts first), and the
candidates for an atom are the *entire* predicate extent of the target,
filtered one fact at a time.  It serves two purposes:

* the reference side of the differential test suite
  (``tests/test_matching_differential.py``), which asserts the indexed
  engine (:mod:`.engine`) and the compiled-plan backend (:mod:`.plans`)
  enumerate exactly the same homomorphism sets and drive the chase to
  identical results;
* the baseline side of the matching micro-benchmark
  (``benchmarks/test_bench_matching.py``).

Do not "improve" this module — its value is being dumb and obviously
correct.  In particular it deliberately stays on the *uninterned* path:
it never touches term ids (``Term.tid``) or the term-id-keyed position
buckets, only whole predicate extents and object-identity comparisons,
so it also serves as the reference the interning machinery is held
against.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable

Homomorphism = dict[Term, Term]


def _is_flexible(term: Term, frozen_nulls: bool) -> bool:
    """Can this source term be (re)mapped?  Variables always; nulls unless
    frozen; constants never."""
    if isinstance(term, Variable):
        return True
    if isinstance(term, Null):
        return not frozen_nulls
    return False


def _match_atom(
    atom: Atom,
    fact: Atom,
    mapping: Homomorphism,
    frozen_nulls: bool,
) -> Homomorphism | None:
    """The seed's atom-onto-fact matcher, kept as a private verbatim copy
    so the reference shares *no* code with the indexed engine: a defect in
    the engine's ``match_atom`` cannot become common-mode and slip past
    the differential tests."""
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    added: Homomorphism = {}
    for s, t in zip(atom.args, fact.args):
        if _is_flexible(s, frozen_nulls):
            bound = mapping.get(s) or added.get(s)
            if bound is None:
                added[s] = t
            elif bound is not t:
                return None
        else:
            # Rigid: constants (and frozen nulls) must match exactly.
            if s is not t:
                return None
    return added


class _Target:
    """Uniform view of the target: an Instance or a plain collection."""

    __slots__ = ("by_predicate",)

    def __init__(self, target: Instance | Iterable[Atom]) -> None:
        if isinstance(target, Instance):
            self.by_predicate = {
                p: target._pred_bucket(p) for p in target.predicates()
            }
        else:
            by_pred: dict[str, set[Atom]] = {}
            for a in target:
                by_pred.setdefault(a.predicate, set()).add(a)
            self.by_predicate = by_pred

    def candidates(self, predicate: str):
        return self.by_predicate.get(predicate, frozenset())


def match(
    source: Sequence[Atom],
    target: Instance | Iterable[Atom],
    seed: Mapping[Term, Term] | None = None,
    frozen_nulls: bool = False,
    limit: int | None = None,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` atoms into ``target``
    by exhaustive backtracking over full predicate extents."""
    tgt = _Target(target)
    mapping: Homomorphism = dict(seed) if seed else {}

    # Constants in the source must not be seeded to something else.
    for k, v in list(mapping.items()):
        if isinstance(k, Constant) and k is not v:
            return

    atoms = list(source)
    if not atoms:
        yield dict(mapping)
        return

    def candidate_count(atom: Atom) -> int:
        return len(tgt.candidates(atom.predicate))

    # Static order: fewest candidates first; dynamic refinement happens via
    # the bound-variable filter inside the recursion.
    atoms.sort(key=candidate_count)

    def recurse(idx: int) -> Iterator[Homomorphism]:
        if idx == len(atoms):
            yield dict(mapping)
            return
        atom = atoms[idx]
        for fact in tgt.candidates(atom.predicate):
            added = _match_atom(atom, fact, mapping, frozen_nulls)
            if added is None:
                continue
            mapping.update(added)
            yield from recurse(idx + 1)
            for k in added:
                del mapping[k]

    count = 0
    for h in recurse(0):
        yield h
        count += 1
        if limit is not None and count >= limit:
            return
