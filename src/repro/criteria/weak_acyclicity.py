"""Weak acyclicity (Fagin, Kolaitis, Miller, Popa — "Data exchange:
semantics and query answering").

The *dependency graph* of a set of TGDs has the schema's positions as
vertices.  For every TGD ``ϕ(x,y) → ∃z ψ(x,z)`` and every universally
quantified variable ``x`` occurring in both body and head:

* a **regular** edge from each body position of ``x`` to each head
  position of ``x``;
* a **special** edge from each body position of ``x`` to each head
  position of every existential variable ``z``.

Σ is weakly acyclic iff no cycle goes through a special edge.  EGDs are
ignored entirely — exactly the paper's complaint about WA-style criteria
(Section 1): strong conditions land on the TGDs because the EGDs are never
analysed.

Acceptance guarantees that **all** standard chase sequences terminate
(CTstd∀), in polynomially many steps in the size of the data.
"""

from __future__ import annotations

import networkx as nx

from ..model.atoms import Position
from ..model.dependencies import DependencySet
from .base import Guarantee, TerminationCriterion, register


def dependency_graph(sigma: DependencySet) -> nx.DiGraph:
    """Build the (position) dependency graph with ``special`` edge flags.

    Parallel regular/special edges between the same positions collapse to a
    single edge with ``special=True`` dominant — only "is there a special
    edge on some cycle" matters.
    """
    g = nx.DiGraph()
    g.add_nodes_from(sigma.positions())
    for tgd in sigma.tgds:
        head_vars = tgd.head_variables()
        for x in sorted(tgd.body_variables(), key=lambda v: v.name):
            if x not in head_vars:
                continue
            body_positions = tgd.body_positions_of(x)
            for p in body_positions:
                for q in tgd.head_positions_of(x):
                    _add_edge(g, p, q, special=False)
                for z in tgd.existential:
                    for q in tgd.head_positions_of(z):
                        _add_edge(g, p, q, special=True)
    return g


def _add_edge(g: nx.DiGraph, p: Position, q: Position, special: bool) -> None:
    if g.has_edge(p, q):
        if special:
            g[p][q]["special"] = True
    else:
        g.add_edge(p, q, special=special)


def has_special_cycle(g: nx.DiGraph) -> bool:
    """True iff some cycle of ``g`` contains a special edge.

    A special edge (u, v) lies on a cycle iff u and v belong to the same
    strongly connected component.
    """
    comp: dict = {}
    for i, scc in enumerate(nx.strongly_connected_components(g)):
        for node in scc:
            comp[node] = i
    for u, v, data in g.edges(data=True):
        if data.get("special") and comp[u] == comp[v]:
            return True
    return False


def is_weakly_acyclic(sigma: DependencySet) -> bool:
    """The WA test as a plain predicate (used by the stratification family
    on sub-sets of dependencies)."""
    return not has_special_cycle(dependency_graph(sigma))


@register
class WeakAcyclicity(TerminationCriterion):
    """WA: no special-edge cycle in the position dependency graph."""

    name = "WA"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        g = ctx.dependency_graph()
        special_cycle = has_special_cycle(g)
        details = {
            "positions": g.number_of_nodes(),
            "edges": g.number_of_edges(),
            "special_edges": sum(
                1 for _, _, d in g.edges(data=True) if d.get("special")
            ),
        }
        return (not special_cycle, True, details)
