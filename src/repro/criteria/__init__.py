"""Chase termination criteria: baselines from the literature plus the
registry used by the analysis facade.

Importing this package registers: WA, SC, SwA, Str, CStr, MFA, MSA, AC —
and, via :mod:`repro.core`, the paper's S-Str and SAC.
"""

from .acyclicity import Acyclicity, is_acyclic_rewriting
from .base import (
    CriterionResult,
    Guarantee,
    TerminationCriterion,
    get_criterion,
    register,
    registry,
)
from .local_stratification import LocalStratification, is_locally_stratified
from .mfa import MFA, MSA, is_mfa, is_msa
from .restriction import (
    InductiveRestriction,
    SafeRestriction,
    is_inductively_restricted,
    is_safely_restricted,
)
from .safety import Safety, affected_positions, is_safe, propagation_graph
from .stratification import (
    CStratification,
    Stratification,
    is_c_stratified,
    is_stratified,
)
from .super_weak_acyclicity import (
    SuperWeakAcyclicity,
    SwAAnalysis,
    atoms_unify,
    is_super_weakly_acyclic,
)
from .weak_acyclicity import (
    WeakAcyclicity,
    dependency_graph,
    has_special_cycle,
    is_weakly_acyclic,
)

__all__ = [
    "Acyclicity",
    "is_acyclic_rewriting",
    "CriterionResult",
    "Guarantee",
    "TerminationCriterion",
    "get_criterion",
    "register",
    "registry",
    "LocalStratification",
    "is_locally_stratified",
    "MFA",
    "MSA",
    "is_mfa",
    "is_msa",
    "InductiveRestriction",
    "SafeRestriction",
    "is_inductively_restricted",
    "is_safely_restricted",
    "Safety",
    "affected_positions",
    "is_safe",
    "propagation_graph",
    "CStratification",
    "Stratification",
    "is_c_stratified",
    "is_stratified",
    "SuperWeakAcyclicity",
    "SwAAnalysis",
    "atoms_unify",
    "is_super_weakly_acyclic",
    "WeakAcyclicity",
    "dependency_graph",
    "has_special_cycle",
    "is_weakly_acyclic",
]
