"""Model-faithful acyclicity (MFA) and model-summarising acyclicity (MSA)
(Grau, Horrocks, Krötzsch, Kupke, Magka, Motik, Wang — "Acyclicity notions
for existential rules").

Both are *semi-dynamic*: they run the Skolem (semi-oblivious) chase on the
critical instance and raise an alarm on evidence of cyclic computation.

* **MFA** runs the chase with real Skolem terms and alarms when a *cyclic*
  term ``f(t)`` (``f`` occurring inside ``t``) is derived.  Without an
  alarm the chase saturates (term depth is bounded by the number of
  distinct functions), so the test is decidable.
* **MSA** summarises the Skolem terms — one constant ``c_f`` per function
  symbol — so the chase always saturates, and tracks which functions
  contribute to which: firing a rule that builds an ``f``-value from
  images containing ``c_g`` records ``g ⇒ f``.  The alarm is a cycle in
  the (transitively closed) contribution relation.  MSA ⊆ MFA.

Per the paper's Section 4 both are defined for TGDs only; EGD sets are
lifted through the substitution-free simulation.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..budget import Budget, coerce_budget
from ..chase.skolem import (
    SkolemTerm,
    critical_instance,
    saturate,
    skolemise,
)
from ..homomorphism.finder import find_homomorphisms
from ..matching import body_atom_index, delta_homomorphisms
from ..model.atoms import Atom
from ..model.dependencies import DependencySet
from ..model.instances import Instance
from ..model.terms import Constant, Term
from .base import Guarantee, TerminationCriterion, register


def is_mfa(
    sigma: DependencySet,
    max_facts: int = 100_000,
    max_rounds: int = 500,
    budget: Budget | None = None,
    rules: Sequence | None = None,
    base: Instance | None = None,
) -> tuple[bool, bool]:
    """(accepted, exact) — exact is False when budgets cut the run short.

    ``rules``/``base`` let a caller holding the shared analysis context
    reuse the memoized Skolemisation and critical instance (``base`` is
    mutated by the saturation — pass a copy you own).
    """
    if sigma.egds:
        raise ValueError("MFA is defined for TGDs only; simulate EGDs first")
    budget = coerce_budget(budget)  # links the ambient analysis budget
    if rules is None:
        rules = skolemise(sigma, variant="semi_oblivious")
    if base is None:
        base = critical_instance(sigma)
    result = saturate(
        base, rules, stop_on_cyclic=True, max_facts=max_facts,
        max_rounds=max_rounds, budget=budget,
    )
    if result.alarmed:
        return False, True
    if result.saturated:
        return True, True
    return False, False  # budget exceeded: reject, flagged approximate


def is_msa(
    sigma: DependencySet,
    max_rounds: int = 2_000,
    budget: Budget | None = None,
    rules: Sequence | None = None,
    base: Instance | None = None,
) -> tuple[bool, bool]:
    """(accepted, exact) — MSA via the summarised Skolem chase.

    ``rules``/``base`` as in :func:`is_mfa`.
    """
    if sigma.egds:
        raise ValueError("MSA is defined for TGDs only; simulate EGDs first")
    budget = coerce_budget(budget)
    if rules is None:
        rules = skolemise(sigma, variant="semi_oblivious")
    instance = base if base is not None else critical_instance(sigma)
    summary_const = {
        functor: Constant(f"@{functor}")
        for rule in rules
        for _, functor, _ in rule.functors
    }
    contributes = nx.DiGraph()
    contributes.add_nodes_from(summary_const)
    inverse = {c: f for f, c in summary_const.items()}

    # Semi-naive rounds: after the first full enumeration, only join facts
    # added in the previous round (the delta log) against rule bodies.  A
    # homomorphism entirely within older rounds already recorded its
    # contribution edges and head facts when it was first enumerated.
    body_index = body_atom_index((rule, rule.source.body) for rule in rules)
    tick = instance.tick
    first_round = True
    for _ in range(max_rounds):
        if first_round:
            homs = (
                (rule, h)
                for rule in rules
                for h in find_homomorphisms(rule.source.body, instance, limit=None)
            )
            first_round = False
        else:
            homs = delta_homomorphisms(
                body_index, instance, instance.added_since(tick)
            )
        new_facts: list[Atom] = []
        for rule, h in homs:
            if not budget.charge():
                return False, False  # budget exhausted mid-round
            mapping: dict[Term, Term] = {
                v: h[v] for v in rule.source.body_variables()
            }
            used = {
                inverse[t]
                for t in mapping.values()
                if isinstance(t, Constant) and t in inverse
            }
            for z, functor, arg_vars in rule.functors:
                mapping[z] = summary_const[functor]
                for g in used:
                    contributes.add_edge(g, functor)
            for atom in rule.source.head:
                fact = atom.apply(mapping)
                if fact not in instance:
                    new_facts.append(fact)
        tick = instance.tick
        if instance.add_all(new_facts) == 0:
            break
    else:
        return False, False  # did not converge within budget

    try:
        nx.find_cycle(contributes)
        return False, True
    except nx.NetworkXNoCycle:
        return True, True


@register
class MFA(TerminationCriterion):
    """Model-faithful acyclicity over the critical instance."""

    name = "MFA"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        simulated = bool(sigma.egds)
        accepted, exact = is_mfa(
            ctx.simulated(),
            rules=ctx.skolem_rules(),
            base=ctx.critical_instance(),
        )
        return accepted, exact, {"simulated": simulated}


@register
class MSA(TerminationCriterion):
    """Model-summarising acyclicity (coarser, always-terminating check)."""

    name = "MSA"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        simulated = bool(sigma.egds)
        accepted, exact = is_msa(
            ctx.simulated(),
            rules=ctx.skolem_rules(),
            base=ctx.critical_instance(),
        )
        return accepted, exact, {"simulated": simulated}
