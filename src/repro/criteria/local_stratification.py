"""Local stratification (LS) — Greco, Spezzano, Trubitsyna,
"Stratification criteria and rewriting techniques for checking chase
termination" (paper Section 3).

LS combines the two ideas its authors developed separately: rewrite the
TGDs with bound/free adornments (splitting predicates by how nulls flow),
then apply a stratification-style analysis to the *adorned* set.  It
extends both SwA and IR (the paper recalls SwA ⊊ LS and IR ⊊ LS), but
still neglects EGDs — which is exactly the gap Adn∃ fills.

Implementation: the AC adornment rewriting (TGD-only mode of Algorithm 1,
without the EGD execution and fireability filter) produces the adorned
set Σα; Σα is accepted if it is c-stratified.  EGD inputs are lifted
through the substitution-free simulation, per the paper's convention for
TGD-only criteria.  Documented approximation of [26]'s definition; the
tests pin LS ⊇ {SwA-recognised, IR-recognised} on the witness families.
"""

from __future__ import annotations

from ..model.dependencies import DependencySet
from .base import Guarantee, TerminationCriterion, register
from .stratification import c_stratified_exact


def is_locally_stratified(
    sigma: DependencySet, rewriting=None
) -> tuple[bool, bool]:
    """(accepted, exact) for a TGD-only set.

    ``rewriting`` lets a caller holding the shared analysis context pass
    the memoized AC rewriting of ``sigma`` instead of recomputing it.
    """
    if sigma.egds:
        raise ValueError("LS is defined for TGDs only; simulate EGDs first")
    if rewriting is None:
        from ..core.adornment import ac_rewriting

        rewriting = ac_rewriting(sigma)
    if rewriting.acyclic:
        # No cyclic adornment at all: already terminating per AC.
        return True, rewriting.exact
    if not rewriting.exact:
        # The rewriting was truncated (budget/livelock): Σα is incomplete
        # and c-stratifying a truncation proves nothing — reject.
        return False, False
    # Keep the adorned dependencies (bridges excluded — they are artifacts
    # of the rewriting, not part of the analysed program).
    adorned = DependencySet(
        rec.dep for rec in rewriting.records if not rec.is_bridge
    )
    if not len(adorned):
        return True, rewriting.exact
    accepted, cstr_exact = c_stratified_exact(adorned)
    return accepted, rewriting.exact and cstr_exact


@register
class LocalStratification(TerminationCriterion):
    """LS: c-stratification of the adornment-rewritten TGDs."""

    name = "LS"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        details: dict = {}
        if sigma.egds:
            details["simulated"] = True
        accepted, exact = is_locally_stratified(
            ctx.simulated(), rewriting=ctx.ac_rewriting()
        )
        return accepted, exact, details
