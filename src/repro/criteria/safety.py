"""Safety (Meier, Schmidt, Lausen — "On chase termination beyond
stratification").

Safety refines weak acyclicity by restricting attention to *affected*
positions (Calì–Gottlob–Kifer): the positions that may actually carry
labelled nulls during the chase.

* A position is affected if an existential variable occurs there in some
  head, or if some TGD propagates to it a universal variable whose body
  occurrences are all at affected positions.
* The propagation graph has the affected positions as vertices; for every
  TGD and every universal variable ``x`` occurring in body and head whose
  body occurrences are **all** affected: regular edges from the affected
  body positions of ``x`` to the affected head positions of ``x``, and
  special edges from them to the head positions of the existential
  variables.

Σ is safe iff no cycle of the propagation graph contains a special edge.
EGDs are ignored (the paper's Section 3: "the latter are neglected
altogether in the analysis").  Acceptance guarantees CTstd∀, and
WA ⊆ SC strictly.
"""

from __future__ import annotations

import networkx as nx

from ..model.atoms import Position
from ..model.dependencies import DependencySet
from .base import Guarantee, TerminationCriterion, register
from .weak_acyclicity import _add_edge, has_special_cycle


def affected_positions(sigma: DependencySet) -> set[Position]:
    """The affected positions of Σ (least fixpoint)."""
    affected: set[Position] = set()
    for tgd in sigma.tgds:
        for z in tgd.existential:
            affected.update(tgd.head_positions_of(z))
    changed = True
    while changed:
        changed = False
        for tgd in sigma.tgds:
            head_vars = tgd.head_variables()
            for x in tgd.body_variables():
                if x not in head_vars:
                    continue
                body_pos = tgd.body_positions_of(x)
                if body_pos and all(p in affected for p in body_pos):
                    for q in tgd.head_positions_of(x):
                        if q not in affected:
                            affected.add(q)
                            changed = True
    return affected


def propagation_graph(
    sigma: DependencySet, affected: set[Position] | None = None
) -> nx.DiGraph:
    """The safety propagation graph (special-edge flags as in WA).

    ``affected`` lets a caller that already holds the affected positions
    (the shared :class:`~repro.analysis.context.AnalysisContext`) skip
    recomputing them.
    """
    if affected is None:
        affected = affected_positions(sigma)
    g = nx.DiGraph()
    g.add_nodes_from(sorted(affected))
    for tgd in sigma.tgds:
        head_vars = tgd.head_variables()
        for x in sorted(tgd.body_variables(), key=lambda v: v.name):
            if x not in head_vars:
                continue
            body_pos = tgd.body_positions_of(x)
            if not body_pos or not all(p in affected for p in body_pos):
                continue  # x can never carry a null
            for p in body_pos:
                for q in tgd.head_positions_of(x):
                    if q in affected:
                        _add_edge(g, p, q, special=False)
                for z in tgd.existential:
                    for q in tgd.head_positions_of(z):
                        _add_edge(g, p, q, special=True)
    return g


def is_safe(sigma: DependencySet) -> bool:
    """SC: no special cycle in the propagation graph."""
    return not has_special_cycle(propagation_graph(sigma))


@register
class Safety(TerminationCriterion):
    """SC: weak acyclicity restricted to affected positions."""

    name = "SC"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        g = ctx.propagation_graph()
        details = {
            "affected_positions": g.number_of_nodes(),
            "edges": g.number_of_edges(),
        }
        return (not has_special_cycle(g), True, details)
