"""Common interface for chase termination criteria.

Every criterion is a *decidable sufficient condition*: acceptance implies
membership in a termination class; rejection says nothing.  The interface
records which class is guaranteed:

* ``CT_ALL``    — all standard chase sequences terminate (CTstd∀);
* ``CT_EXISTS`` — at least one standard chase sequence terminates (CTstd∃).

Criteria defined for TGDs only (SwA, MFA, MSA, AC per the paper's
Section 4) lift to TGD+EGD sets through the substitution-free simulation;
the lifting is applied by the concrete classes via
``simulate_if_needed``.
"""

from __future__ import annotations

import enum
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..model.dependencies import DependencySet


class Guarantee(enum.Enum):
    """Which termination class a criterion's acceptance guarantees."""

    CT_ALL = "all standard chase sequences terminate"
    CT_EXISTS = "some standard chase sequence terminates"


@dataclass
class CriterionResult:
    """Outcome of running one termination criterion."""

    criterion: str
    accepted: bool
    guarantee: Guarantee
    exact: bool = True
    elapsed_ms: float = 0.0
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accepted

    def __str__(self) -> str:
        verdict = "accepted" if self.accepted else "rejected"
        approx = "" if self.exact else " (approximate)"
        return f"{self.criterion}: {verdict}{approx} [{self.elapsed_ms:.1f} ms]"


class TerminationCriterion(ABC):
    """Base class; concrete criteria implement :meth:`_accepts`."""

    #: Short name used in the registry and reports ("WA", "SC", ...).
    name: str = "?"
    #: Which termination class acceptance guarantees.
    guarantee: Guarantee = Guarantee.CT_ALL

    def check(self, sigma: DependencySet) -> CriterionResult:
        start = time.perf_counter()
        accepted, exact, details = self._accepts(sigma)
        elapsed = (time.perf_counter() - start) * 1000.0
        return CriterionResult(
            criterion=self.name,
            accepted=accepted,
            guarantee=self.guarantee,
            exact=exact,
            elapsed_ms=elapsed,
            details=details,
        )

    def accepts(self, sigma: DependencySet) -> bool:
        """Convenience: just the boolean verdict."""
        return self.check(sigma).accepted

    @abstractmethod
    def _accepts(self, sigma: DependencySet) -> tuple[bool, bool, dict]:
        """Return (accepted, exact, details)."""


_REGISTRY: dict[str, type[TerminationCriterion]] = {}


def register(cls: type[TerminationCriterion]) -> type[TerminationCriterion]:
    """Class decorator adding the criterion to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate criterion name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registry() -> dict[str, type[TerminationCriterion]]:
    """Name → criterion class for every registered criterion."""
    return dict(_REGISTRY)


def get_criterion(name: str) -> TerminationCriterion:
    """Instantiate a registered criterion by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown criterion {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
