"""Common interface for chase termination criteria.

Every criterion is a *decidable sufficient condition*: acceptance implies
membership in a termination class; rejection says nothing.  The interface
records which class is guaranteed:

* ``CT_ALL``    — all standard chase sequences terminate (CTstd∀);
* ``CT_EXISTS`` — at least one standard chase sequence terminates (CTstd∃).

Criteria defined for TGDs only (SwA, MFA, MSA, AC per the paper's
Section 4) lift to TGD+EGD sets through the substitution-free simulation;
the lifting is applied by the concrete classes via
``simulate_if_needed``.

Criteria do not build their analysis artifacts (affected positions,
chase/firing graphs, adornment rewritings, Skolemisations) themselves:
they consult the :class:`~repro.analysis.context.AnalysisContext` passed
to :meth:`TerminationCriterion.check`.  When no context is given, the
check creates a private one — memoization then degenerates to the scope
of that single check, which is the historical standalone behaviour; the
classification portfolio passes one shared context so every artifact is
computed once per program.
"""

from __future__ import annotations

import enum
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..budget import Budget, BudgetExhausted, budget_scope
from ..model.dependencies import DependencySet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis → criteria)
    from ..analysis.context import AnalysisContext


class Guarantee(enum.Enum):
    """Which termination class a criterion's acceptance guarantees."""

    CT_ALL = "all standard chase sequences terminate"
    CT_EXISTS = "some standard chase sequence terminates"


@dataclass
class CriterionResult:
    """Outcome of running one termination criterion.

    ``exact=False`` flags any approximation — internal enumeration caps
    as well as budget exhaustion.  ``exhausted`` is set precisely when a
    resource budget cut the run short, recording the blown dimension; a
    rejection with ``exhausted`` set says nothing about Σ and the
    portfolio surfaces it (exit code 2) rather than presenting it as a
    trusted rejection.
    """

    criterion: str
    accepted: bool
    guarantee: Guarantee
    exact: bool = True
    elapsed_ms: float = 0.0
    details: dict = field(default_factory=dict)
    exhausted: BudgetExhausted | None = None

    @property
    def skipped(self) -> bool:
        """True when the portfolio never ran (or cut short) this criterion
        because the overall verdict was already decided."""
        return bool(self.details.get("short_circuited"))

    def __bool__(self) -> bool:
        return self.accepted

    def __str__(self) -> str:
        verdict = "accepted" if self.accepted else "rejected"
        approx = "" if self.exact else " (approximate)"
        budget = f" (budget: {self.exhausted})" if self.exhausted else ""
        return f"{self.criterion}: {verdict}{approx}{budget} [{self.elapsed_ms:.1f} ms]"


class TerminationCriterion(ABC):
    """Base class; concrete criteria implement :meth:`_accepts`."""

    #: Short name used in the registry and reports ("WA", "SC", ...).
    name: str = "?"
    #: Which termination class acceptance guarantees.
    guarantee: Guarantee = Guarantee.CT_ALL

    def check(
        self,
        sigma: DependencySet,
        budget: Budget | None = None,
        context: "AnalysisContext | None" = None,
    ) -> CriterionResult:
        """Run the criterion, optionally under a resource budget.

        The budget is installed as the ambient budget for the call, so
        every bounded consumer underneath (firing oracles, the adornment
        algorithm, Skolem saturation) links its local budgets to it.  A
        blown budget surfaces as ``exact=False`` plus ``exhausted`` —
        never as an exception.

        ``context`` is the shared artifact store of the enclosing
        portfolio run; without one a private context is created, so a
        standalone check memoizes only within itself.
        """
        if context is None:
            from ..analysis.context import AnalysisContext

            context = AnalysisContext(sigma)
        elif context.sigma is not sigma:
            raise ValueError(
                "context was built for a different dependency set"
            )
        start = time.perf_counter()
        if budget is None:
            # Leave any enclosing ambient scope in force — installing
            # None here would disconnect nested analyses from it.
            accepted, exact, details = self._accepts(sigma, context)
        else:
            with budget_scope(budget):
                accepted, exact, details = self._accepts(sigma, context)
        elapsed = (time.perf_counter() - start) * 1000.0
        exhausted = budget.exhausted if budget is not None else None
        return CriterionResult(
            criterion=self.name,
            accepted=accepted,
            guarantee=self.guarantee,
            exact=exact and exhausted is None,
            elapsed_ms=elapsed,
            details=details,
            exhausted=exhausted,
        )

    def accepts(self, sigma: DependencySet) -> bool:
        """Convenience: just the boolean verdict."""
        return self.check(sigma).accepted

    @abstractmethod
    def _accepts(
        self, sigma: DependencySet, ctx: "AnalysisContext"
    ) -> tuple[bool, bool, dict]:
        """Return (accepted, exact, details), reading artifacts off ``ctx``."""


_REGISTRY: dict[str, type[TerminationCriterion]] = {}


def register(cls: type[TerminationCriterion]) -> type[TerminationCriterion]:
    """Class decorator adding the criterion to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate criterion name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registry() -> dict[str, type[TerminationCriterion]]:
    """Name → criterion class for every registered criterion."""
    return dict(_REGISTRY)


def get_criterion(name: str) -> TerminationCriterion:
    """Instantiate a registered criterion by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown criterion {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
