"""Stratification (Deutsch–Nash–Remmel) and c-stratification (Meier).

Stratification decomposes Σ along the chase graph G(Σ) (edges are the
``≺`` firing relation) and requires every **cycle** to be weakly acyclic:
Σ ∈ Str iff for every cycle ``C`` of G(Σ), the set of dependencies on
``C`` is WA.  As shown in [31] (and recalled in the paper's Section 3),
Str guarantees only that *some* standard chase sequence terminates
(CTstd∃), not all.

C-stratification uses the *oblivious* chase step in the firing relation,
which restores the CTstd∀ guarantee.

Cycle enumeration is exponential in the worst case; past
``MAX_SIMPLE_CYCLES`` we fall back to the SCC-level check (every SCC weakly
acyclic), which is a stronger condition — still a sound sufficient
criterion, flagged as approximate in the result.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from ..firing.graphs import chase_graph, oblivious_chase_graph
from ..firing.relations import FiringOracle
from ..model.dependencies import DependencySet
from .base import Guarantee, TerminationCriterion, register
from .weak_acyclicity import is_weakly_acyclic

MAX_SIMPLE_CYCLES = 10_000


def _cycles_weakly_acyclic(
    sigma: DependencySet, graph: nx.DiGraph
) -> tuple[bool, bool]:
    """(all cycles WA, exact).  Falls back to SCC check past the cap."""
    cycles = list(islice(nx.simple_cycles(graph), MAX_SIMPLE_CYCLES + 1))
    if len(cycles) <= MAX_SIMPLE_CYCLES:
        for cycle in cycles:
            if not is_weakly_acyclic(sigma.restricted_to(cycle)):
                return False, True
        return True, True
    for scc in nx.strongly_connected_components(graph):
        component = sigma.restricted_to(scc)
        if len(scc) > 1 or graph.has_edge(next(iter(scc)), next(iter(scc))):
            if not is_weakly_acyclic(component):
                return False, False
    return True, False


def is_stratified(sigma: DependencySet) -> bool:
    """Str: every cycle of G(Σ) is weakly acyclic."""
    graph = chase_graph(sigma, FiringOracle(sigma))
    ok, _ = _cycles_weakly_acyclic(sigma, graph)
    return ok


def c_stratified_exact(sigma: DependencySet) -> tuple[bool, bool]:
    """(accepted, exact) for CStr — exact also covers the firing oracle,
    so an edge decided on a blown witness budget flags the verdict."""
    oracle = FiringOracle(sigma, step_variant="oblivious")
    graph = oblivious_chase_graph(sigma, oracle=oracle)
    ok, exact = _cycles_weakly_acyclic(sigma, graph)
    return ok, exact and not oracle.ever_inexact


def is_c_stratified(sigma: DependencySet) -> bool:
    """CStr: Str over the oblivious-step chase graph."""
    return c_stratified_exact(sigma)[0]


@register
class Stratification(TerminationCriterion):
    """Str: every cycle of the chase graph is weakly acyclic."""

    name = "Str"
    guarantee = Guarantee.CT_EXISTS

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        graph, oracle_exact = ctx.chase_graph("standard")
        ok, exact = _cycles_weakly_acyclic(sigma, graph)
        exact = exact and oracle_exact
        return ok, exact, {"chase_graph_edges": graph.number_of_edges()}


@register
class CStratification(TerminationCriterion):
    """CStr: stratification over the oblivious-step chase graph."""

    name = "CStr"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        graph, oracle_exact = ctx.chase_graph("oblivious")
        ok, exact = _cycles_weakly_acyclic(sigma, graph)
        exact = exact and oracle_exact
        return ok, exact, {"chase_graph_edges": graph.number_of_edges()}
