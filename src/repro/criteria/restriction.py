"""Safe restriction (SR) and inductive restriction (IR)
(Meier, Schmidt, Lausen — "On chase termination beyond stratification").

Both extend c-stratification by replacing the weak-acyclicity check on the
cyclic parts with the *safety* check, and (for IR) by applying the
decomposition recursively.

Implementation note.  The original definitions work with *restriction
systems* — annotated graphs tracking which positions can pass nulls
between dependencies.  We implement the criteria as documented
approximations on top of our exact firing machinery:

* the precedence graph is the oblivious-step chase graph (as in CStr),
  restricted to edges that can actually propagate a labelled null — the
  firing dependency must be existential, or share an affected position
  with the fired dependency's body;
* **SR**: every cycle's dependency set must be *safe* (instead of weakly
  acyclic);
* **IR**: SCCs are decomposed recursively: a failing component is split
  into the sub-graphs induced by its simple cycles and re-checked, which
  captures the "inductive" part of [32] on the shapes arising here.

CStr ⊆ SR ⊆ IR holds by construction (safety subsumes weak acyclicity and
recursion only accepts more).  Both guarantee CTstd∀.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from ..firing.graphs import oblivious_chase_graph
from ..firing.relations import FiringOracle
from ..model.dependencies import AnyDependency, DependencySet
from .base import Guarantee, TerminationCriterion, register
from .safety import affected_positions, is_safe

MAX_SIMPLE_CYCLES = 2_000
MAX_RECURSION = 4


def null_propagating_subgraph(
    sigma: DependencySet, graph: nx.DiGraph, affected=None
) -> nx.DiGraph:
    """Keep only edges along which a labelled null can travel.

    ``affected`` lets a caller that already holds the affected positions
    (the shared analysis context) skip recomputing them.
    """
    if affected is None:
        affected = affected_positions(sigma)
    out = nx.DiGraph()
    out.add_nodes_from(graph.nodes())
    for r1, r2 in graph.edges():
        if _can_pass_null(r1, r2, affected):
            out.add_edge(r1, r2)
    return out


def _can_pass_null(r1: AnyDependency, r2: AnyDependency, affected) -> bool:
    if r1.is_existential:
        return True
    # A full dependency can move an existing null onward only if its body
    # can hold one, i.e. it touches an affected position.
    r1_positions = {
        p for x in r1.body_variables() for p in r1.body_positions_of(x)
    }
    r2_positions = {
        p for x in r2.body_variables() for p in r2.body_positions_of(x)
    }
    return bool(r1_positions & affected) or bool(r2_positions & affected)


def _cycles_safe(sigma: DependencySet, graph: nx.DiGraph) -> tuple[bool, bool]:
    cycles = list(islice(nx.simple_cycles(graph), MAX_SIMPLE_CYCLES + 1))
    if len(cycles) > MAX_SIMPLE_CYCLES:
        # Fall back to per-SCC safety (stronger, still sound).
        for scc in nx.strongly_connected_components(graph):
            if len(scc) > 1 or graph.has_edge(next(iter(scc)), next(iter(scc))):
                if not is_safe(sigma.restricted_to(scc)):
                    return False, False
        return True, False
    for cycle in cycles:
        if not is_safe(sigma.restricted_to(cycle)):
            return False, True
    return True, True


def is_safely_restricted(sigma: DependencySet) -> tuple[bool, bool]:
    """(accepted, exact) for SR.

    ``exact`` also reflects the firing oracle: a precedence edge decided
    on a blown witness budget is an over-approximation, so the verdict is
    flagged approximate rather than silently trusted.
    """
    oracle = FiringOracle(sigma, step_variant="oblivious")
    graph = null_propagating_subgraph(
        sigma, oblivious_chase_graph(sigma, oracle=oracle)
    )
    accepted, exact = _cycles_safe(sigma, graph)
    return accepted, exact and not oracle.ever_inexact


def _ir_component(
    sigma: DependencySet, graph: nx.DiGraph, depth: int, decisions=None
) -> tuple[bool, bool]:
    ok, exact = _cycles_safe(sigma, graph)
    if ok or depth >= MAX_RECURSION:
        return ok, exact
    # Decompose: re-run on each cyclic SCC's induced sub-structure with
    # the precedence graph recomputed on the smaller dependency set (fewer
    # dependencies ⇒ fewer firing edges ⇒ possibly safe components).
    # ``decisions`` (the shared firing-decision cache, when a context owns
    # one) flows down: a component's pairs are pairs of Σ, so the top-level
    # probes answer the recursion's questions for free.
    for scc in nx.strongly_connected_components(graph):
        if len(scc) == 1 and not graph.has_edge(next(iter(scc)), next(iter(scc))):
            continue
        component = sigma.restricted_to(scc)
        if len(component) == len(sigma):
            return False, exact  # no progress possible
        sub_oracle = FiringOracle(
            component, step_variant="oblivious", decisions=decisions
        )
        sub_graph = null_propagating_subgraph(
            component, oblivious_chase_graph(component, oracle=sub_oracle)
        )
        ok, sub_exact = _ir_component(
            component, sub_graph, depth + 1, decisions=decisions
        )
        exact = exact and not sub_oracle.ever_inexact
        exact = exact and sub_exact
        if not ok:
            return False, exact
    return True, exact


def is_inductively_restricted(sigma: DependencySet) -> tuple[bool, bool]:
    """(accepted, exact) for IR (oracle inexactness included, as in SR)."""
    oracle = FiringOracle(sigma, step_variant="oblivious")
    graph = null_propagating_subgraph(
        sigma, oblivious_chase_graph(sigma, oracle=oracle)
    )
    accepted, exact = _ir_component(sigma, graph, 0)
    return accepted, exact and not oracle.ever_inexact


@register
class SafeRestriction(TerminationCriterion):
    """SR: c-stratification with safety on the cyclic parts."""

    name = "SR"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        graph, oracle_exact = ctx.restriction_graph()
        accepted, exact = _cycles_safe(sigma, graph)
        return accepted, exact and oracle_exact, {}


@register
class InductiveRestriction(TerminationCriterion):
    """IR: SR with recursive component decomposition."""

    name = "IR"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        graph, oracle_exact = ctx.restriction_graph()
        accepted, exact = _ir_component(
            sigma, graph, 0, decisions=ctx.decisions
        )
        return accepted, exact and oracle_exact, {}
