"""The AC (acyclicity) criterion of the rewriting approaches
(Greco–Spezzano / Greco–Spezzano–Trubitsyna; paper Section 3).

AC adorns the TGDs with bound/free symbols — the same machinery as Adn∃
but without the EGD execution, without the fireability filter, and with
label-nesting Ω edges that do not require a firing chain — and accepts
when no cyclic adornment arises.  It is defined for TGDs only; EGD sets
are lifted through the substitution-free simulation (the convention the
paper applies to every TGD-only criterion).

Theorem 9: AC ⊊ SAC.
"""

from __future__ import annotations

from ..core.adornment import ac_rewriting
from ..model.dependencies import DependencySet
from .base import Guarantee, TerminationCriterion, register


def is_acyclic_rewriting(sigma: DependencySet) -> tuple[bool, bool]:
    """(accepted, exact) of the AC rewriting on a TGD-only set."""
    result = ac_rewriting(sigma)
    return result.acyclic, result.exact


@register
class Acyclicity(TerminationCriterion):
    """AC: adornment rewriting without EGD analysis."""

    name = "AC"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        details: dict = {}
        if sigma.egds:
            details["simulated"] = True
        result = ctx.ac_rewriting()
        return result.acyclic, result.exact, details
