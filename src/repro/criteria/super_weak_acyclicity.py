"""Super-weak acyclicity (Marnette — "Generalized schema-mappings: from
termination to tractability").

SwA analyses the *semi-oblivious* (Skolem) chase through *places*: argument
positions of the atom occurrences in the rules.  The key improvement over
safety is that place unification respects repeated variables and Skolem
term structure, so a dependency is not considered fired when distinct nulls
would have to occupy positions bound to the same variable.

Formulation implemented here (TGDs only; EGD sets are lifted through the
substitution-free simulation by the criterion class):

* rules are Skolemised with frontier-argument functions (semi-oblivious);
* ``Out(r, z)``: head places of the existential variable ``z``;
* ``In(r, x)``: body places of the variable ``x``;
* place ``p = (A, i)`` (in a head) *unifies with* ``q = (B, i)`` (in a
  body) iff the Skolemised atoms ``A`` and ``B`` unify (occurs check on
  Skolem terms, rules renamed apart);
* ``Move(Σ, P)``: least set of (head) places ⊇ P such that for every rule
  ``r`` and variable ``x`` in body∧head of ``r``, if some place of
  ``In(r, x)`` unifies with a place in the set, all places of the head
  occurrences of ``x`` join the set;
* ``r ⊑ r'`` (r triggers r') iff for some existential ``z`` of ``r`` and
  some variable ``x`` occurring in body and head of ``r'``, a place of
  ``In(r', x)`` unifies with a place in ``Move(Σ, Out(r, z))``.

Σ is super-weakly acyclic iff the trigger relation ``⊑`` is acyclic
(no directed cycle, including self-loops).  Acceptance guarantees CTstd∀.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..model.atoms import Atom
from ..model.dependencies import TGD, DependencySet
from ..model.terms import Constant, Term, Variable
from ..chase.skolem import SkolemTerm, skolemise
from .base import Guarantee, TerminationCriterion, register


@dataclass(frozen=True)
class Place:
    """An argument position of an atom occurrence in a Skolemised rule."""

    rule_index: int
    in_head: bool
    atom_index: int
    position: int
    atom: Atom  # the Skolemised atom occurrence (variables renamed apart)

    def __str__(self) -> str:
        where = "head" if self.in_head else "body"
        return f"r{self.rule_index}.{where}[{self.atom_index}].{self.position + 1}"


def _unify_terms(a: Term, b: Term, sub: dict) -> bool:
    """First-order unification with occurs check, mutating ``sub``."""
    a = _walk(a, sub)
    b = _walk(b, sub)
    if a is b:
        return True
    if isinstance(a, Variable):
        if _occurs(a, b, sub):
            return False
        sub[a] = b
        return True
    if isinstance(b, Variable):
        return _unify_terms(b, a, sub)
    if isinstance(a, Constant) or isinstance(b, Constant):
        return a is b
    if isinstance(a, SkolemTerm) and isinstance(b, SkolemTerm):
        if a.functor != b.functor or len(a.args) != len(b.args):
            return False
        return all(_unify_terms(x, y, sub) for x, y in zip(a.args, b.args))
    return False


def _walk(t: Term, sub: dict) -> Term:
    while isinstance(t, Variable) and t in sub:
        t = sub[t]
    return t


def _occurs(v: Variable, t: Term, sub: dict) -> bool:
    t = _walk(t, sub)
    if t is v:
        return True
    if isinstance(t, SkolemTerm):
        return any(_occurs(v, a, sub) for a in t.args)
    return False


def atoms_unify(a: Atom, b: Atom) -> bool:
    """Do the two atom patterns unify (as fresh rule instances)?

    The two atoms stand for places of *different* rule firings, so their
    variables are renamed apart even when they come from the same rule —
    e.g. the head place ``E(y, f(y)).2`` of ``E(x,y) → ∃z E(y,z)`` must
    unify with the body place ``E(x,y).2`` of another firing of the same
    rule.
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return False
    b = b.apply({v: Variable(f"{v.name}~rhs") for v in b.variables()})
    sub: dict = {}
    return all(_unify_terms(x, y, sub) for x, y in zip(a.args, b.args))


class SwAAnalysis:
    """Places, Move closure, and the trigger relation for a TGD set."""

    def __init__(self, sigma: DependencySet) -> None:
        self.sigma = sigma
        self.rules = []
        self._functors: list[dict[str, str]] = []
        skolemised = skolemise(sigma, variant="semi_oblivious")
        for i, sk in enumerate(skolemised):
            tgd = sk.source.rename_variables(f"swa{i}")
            mapping: dict[Term, Term] = {}
            per_rule: dict[str, str] = {}
            for z, functor, arg_vars in sk.functors:
                renamed_args = tuple(Variable(f"{v.name}#swa{i}") for v in arg_vars)
                mapping[Variable(f"{z.name}#swa{i}")] = SkolemTerm(
                    f"{functor}@{i}", renamed_args
                )
                per_rule[z.name] = f"{functor}@{i}"
            head = [a.apply(mapping) for a in tgd.head]
            self.rules.append((i, tgd, head))
            self._functors.append(per_rule)
        self._head_places: list[Place] = []
        self._body_places: list[Place] = []
        for i, tgd, head in self.rules:
            for ai, atom in enumerate(tgd.body):
                for pi in range(atom.arity):
                    self._body_places.append(Place(i, False, ai, pi, atom))
            for ai, atom in enumerate(head):
                for pi in range(atom.arity):
                    self._head_places.append(Place(i, True, ai, pi, atom))
        self._unify_cache: dict[tuple, bool] = {}

    # -- place sets ------------------------------------------------------

    def out_places(self, rule_index: int, z_name: str) -> list[Place]:
        """Head places where the Skolem term of existential ``z`` sits."""
        functor = self._functors[rule_index].get(z_name)
        if functor is None:
            return []
        out = []
        i, tgd, head = self.rules[rule_index]
        for ai, atom in enumerate(head):
            for pi, t in enumerate(atom.args):
                if isinstance(t, SkolemTerm) and t.functor == functor:
                    out.append(Place(i, True, ai, pi, atom))
        return out

    def head_places_of_var(self, rule_index: int, var: Variable) -> list[Place]:
        i, tgd, head = self.rules[rule_index]
        return [
            Place(i, True, ai, pi, atom)
            for ai, atom in enumerate(head)
            for pi, t in enumerate(atom.args)
            if t is var
        ]

    def body_places_of_var(self, rule_index: int, var: Variable) -> list[Place]:
        i, tgd, _ = self.rules[rule_index]
        return [
            Place(i, False, ai, pi, atom)
            for ai, atom in enumerate(tgd.body)
            for pi, t in enumerate(atom.args)
            if t is var
        ]

    def places_unify(self, head_place: Place, body_place: Place) -> bool:
        if head_place.position != body_place.position:
            return False
        key = (
            head_place.rule_index, head_place.atom_index,
            body_place.rule_index, body_place.atom_index,
        )
        cached = self._unify_cache.get(key)
        if cached is None:
            cached = atoms_unify(head_place.atom, body_place.atom)
            self._unify_cache[key] = cached
        return cached

    # -- Move closure --------------------------------------------------------

    def move(self, start: list[Place]) -> set[Place]:
        closure: set[Place] = set(start)
        changed = True
        while changed:
            changed = False
            for i, tgd, head in self.rules:
                shared = tgd.frontier()
                for x in shared:
                    body_places = self.body_places_of_var(i, x)
                    if any(
                        self.places_unify(p, q)
                        for q in body_places
                        for p in closure
                        if p.in_head
                    ):
                        for hp in self.head_places_of_var(i, x):
                            if hp not in closure:
                                closure.add(hp)
                                changed = True
        return closure

    # -- trigger relation -----------------------------------------------------

    def trigger_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(len(self.rules)))
        for i, tgd, head in self.rules:
            for z in tgd.existential:
                bare = z.name.split("#")[0]
                out = self.out_places(i, bare)
                if not out:
                    continue
                reach = self.move(out)
                for j, tgd2, head2 in self.rules:
                    if g.has_edge(i, j):
                        continue
                    for x in tgd2.frontier():
                        body_places = self.body_places_of_var(j, x)
                        if any(
                            self.places_unify(p, q)
                            for q in body_places
                            for p in reach
                            if p.in_head
                        ):
                            g.add_edge(i, j)
                            break
        return g


def is_super_weakly_acyclic(sigma: DependencySet) -> bool:
    """SwA test for a TGD-only set."""
    if sigma.egds:
        raise ValueError("SwA is defined for TGDs only; simulate EGDs first")
    analysis = SwAAnalysis(sigma)
    g = analysis.trigger_graph()
    try:
        nx.find_cycle(g)
        return False
    except nx.NetworkXNoCycle:
        return True


@register
class SuperWeakAcyclicity(TerminationCriterion):
    """SwA; EGD sets are lifted via the substitution-free simulation."""

    name = "SwA"
    guarantee = Guarantee.CT_ALL

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        details: dict = {}
        if sigma.egds:
            details["simulated"] = True
        accepted = is_super_weakly_acyclic(ctx.simulated())
        return (accepted, True, details)
