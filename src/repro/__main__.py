"""Entry point for ``python -m repro`` (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
