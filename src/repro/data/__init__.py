"""Paper examples (Σ1 … Σ11) and Table 1 witness families."""

from .paper import (
    FIGURE1_CHASE_EDGES,
    FIGURE1_FIRING_EDGES,
    all_paper_sets,
    db_1,
    db_3,
    db_6,
    db_8,
    db_10,
    db_11,
    sigma_1,
    sigma_3,
    sigma_6,
    sigma_8,
    sigma_10,
    sigma_11,
)
from .witnesses import Claim, WitnessCase, sigma_std_all_not_sobl_exists, witness_cases

__all__ = [
    "FIGURE1_CHASE_EDGES",
    "FIGURE1_FIRING_EDGES",
    "all_paper_sets",
    "db_1",
    "db_3",
    "db_6",
    "db_8",
    "db_10",
    "db_11",
    "sigma_1",
    "sigma_3",
    "sigma_6",
    "sigma_8",
    "sigma_10",
    "sigma_11",
    "Claim",
    "WitnessCase",
    "sigma_std_all_not_sobl_exists",
    "witness_cases",
]
