"""Witness families for the termination-class relationships of Table 1.

Each entry packages a dependency set, a database, and the claim it
witnesses.  The Table 1 bench re-verifies every claim empirically with the
chase explorer (bounded exhaustive exploration of the nondeterminism) and
the chase runners.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.dependencies import DependencySet
from ..model.instances import Instance
from ..model.parser import parse_dependencies, parse_facts
from .paper import db_1, db_10, db_11, sigma_1, sigma_10, sigma_11


@dataclass(frozen=True)
class Claim:
    """One membership/non-membership claim to verify empirically."""

    variant: str          # "standard" | "oblivious" | "semi_oblivious" | "core"
    quantifier: str       # "all" | "exists"
    member: bool          # claimed membership of sigma in CT^variant_quantifier


@dataclass(frozen=True)
class WitnessCase:
    """A dependency set + database + the claims it witnesses."""

    name: str
    description: str
    sigma: DependencySet
    database: Instance
    claims: tuple[Claim, ...]


def sigma_std_all_not_sobl_exists() -> DependencySet:
    """∈ CTstd∀ \\ CTsobl∃ (TGD-only).

    The head is always satisfiable from the body (take z = x), so the
    standard chase never fires; the semi-oblivious chase keys triggers on
    the frontier {y} and generates fresh frontier values forever.
    """
    return parse_dependencies("r: E(x, y) -> exists z. E(y, z) & E(z, y)")


def witness_cases() -> list[WitnessCase]:
    """All Table 1 witnesses with their claims."""
    return [
        WitnessCase(
            name="sigma_1",
            description=(
                "Σ1 (Example 1): with EGDs, ∃-termination without "
                "∀-termination for standard, oblivious and semi-oblivious "
                "chase — witnesses CTc∀ ⊊ CTc∃ (row 1/2/6 of Table 1) and "
                "the A-sides of the three incomparability claims"
            ),
            sigma=sigma_1(),
            database=db_1(),
            claims=(
                Claim("standard", "exists", True),
                Claim("standard", "all", False),
                Claim("oblivious", "exists", True),
                Claim("oblivious", "all", False),
                Claim("semi_oblivious", "exists", True),
                Claim("semi_oblivious", "all", False),
            ),
        ),
        WitnessCase(
            name="sigma_6",
            description=(
                "Σ6 (Example 6): TGD-only set in CTsobl∀ but not CTobl∃ — "
                "the B-side of CTobl∃ ∦ CTsobl∀"
            ),
            sigma=parse_dependencies("r: E(x, y) -> exists z. E(x, z)"),
            database=parse_facts('E("a", "b")'),
            claims=(
                Claim("standard", "all", True),
                Claim("semi_oblivious", "all", True),
                Claim("oblivious", "exists", False),
            ),
        ),
        WitnessCase(
            name="mirror_pair",
            description=(
                "E(x,y) → ∃z E(y,z) ∧ E(z,y): in CTstd∀ (the head is always "
                "witnessed by the body) but not CTsobl∃ nor CTobl∃ — the "
                "B-side of CTsobl∃ ∦ CTstd∀ and CTobl∃ ∦ CTstd∀"
            ),
            sigma=sigma_std_all_not_sobl_exists(),
            database=parse_facts('E("a", "a")'),
            claims=(
                Claim("standard", "all", True),
                Claim("semi_oblivious", "exists", False),
                Claim("oblivious", "exists", False),
            ),
        ),
        WitnessCase(
            name="sigma_11",
            description=(
                "Σ11 (Example 11): TGD-only set in CTstd∃ but not CTstd∀ — "
                "witnesses CTstd∀ ⊊ CTstd∃ already for TGDs"
            ),
            sigma=sigma_11(),
            database=db_11(),
            claims=(
                Claim("standard", "exists", True),
                Claim("standard", "all", False),
            ),
        ),
        WitnessCase(
            name="sigma_10",
            description=(
                "Σ10 (Example 10): adding an EGD removes every terminating "
                "sequence, while the TGD part alone is in CTstd∀ — EGDs cut "
                "both ways (Section 4)"
            ),
            sigma=sigma_10(),
            database=db_10(),
            claims=(Claim("standard", "exists", False),),
        ),
    ]
