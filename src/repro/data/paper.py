"""Every dependency set and database appearing in the paper's examples.

These are the ground truth for the test suite and for the Figure 1 /
expressivity benches.  Names follow the paper: ``sigma_1`` is Σ1 of
Example 1, etc.
"""

from __future__ import annotations

from ..model.dependencies import DependencySet
from ..model.instances import Instance
from ..model.parser import parse_dependencies, parse_facts


def sigma_1() -> DependencySet:
    """Σ1 (Example 1): EGD r3 rescues an otherwise non-terminating pair.

    In CTstd∃ (enforce r1 then r3) but not CTstd∀ (alternating r1, r2
    forever).  Example 12 runs Adn∃ on it: Acyc = true.
    """
    return parse_dependencies(
        """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> x = y
        """
    )


def db_1() -> Instance:
    """D = {N(a)} used throughout Examples 1–5."""
    return parse_facts('N("a")')


def sigma_3() -> DependencySet:
    """Σ3 (Example 3): two existential TGDs; universal-model example."""
    return parse_dependencies(
        """
        r1: P(x, y) -> exists z. E(x, z)
        r2: Q(x, y) -> exists z. E(z, y)
        """
    )


def db_3() -> Instance:
    """D = {P(a,b), Q(c,d)} of Example 3."""
    return parse_facts('P("a", "b") Q("c", "d")')


def sigma_6() -> DependencySet:
    """Σ6 (Example 6): one TGD separating standard/semi-oblivious/oblivious."""
    return parse_dependencies("r: E(x, y) -> exists z. E(x, z)")


def db_6() -> Instance:
    """D = {E(a,b)} of Examples 6/7."""
    return parse_facts('E("a", "b")')


def sigma_8() -> DependencySet:
    """Σ8 (Example 8): all chase sequences terminate, yet no
    substitution-free simulation of it has even one terminating sequence
    (Theorem 2's incompleteness witness)."""
    return parse_dependencies(
        """
        r1: A(x) & B(x) -> C(x)
        r2: C(x) -> exists y. A(x) & B(y)
        r3: C(x) -> exists y. A(y) & B(x)
        r4: A(x) & A(y) -> x = y
        r5: B(x) & B(y) -> x = y
        """
    )


def db_8() -> Instance:
    """A one-fact database activating Σ8."""
    return parse_facts('C("a")')


def sigma_10() -> DependencySet:
    """Σ10 (Example 10): the TGD part is terminating for every variant,
    adding the EGD removes every terminating sequence.  Example 13 runs
    Adn∃ on it: Acyc = false."""
    return parse_dependencies(
        """
        r1: N(x) -> exists y, z. E(x, y, z)
        r2: E(x, y, y) -> N(y)
        r3: E(x, y, z) -> y = z
        """
    )


def db_10() -> Instance:
    """D = {N(a)} of Example 10."""
    return parse_facts('N("a")')


def sigma_11() -> DependencySet:
    """Σ11 (Example 11 / Figure 1): semi-stratified but not stratified."""
    return parse_dependencies(
        """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> E(y, x)
        """
    )


def db_11() -> Instance:
    """D = {N(a)} of Example 11."""
    return parse_facts('N("a")')


#: Figure 1 ground truth: edges of the chase graph G(Σ11) and the firing
#: graph Gf(Σ11), as (label, label) pairs.
FIGURE1_CHASE_EDGES = {("r1", "r2"), ("r1", "r3"), ("r2", "r1"), ("r3", "r2")}
FIGURE1_FIRING_EDGES = {("r1", "r2"), ("r1", "r3"), ("r3", "r2")}


def all_paper_sets() -> dict[str, DependencySet]:
    """Every named dependency set of the paper, keyed by its name."""
    return {
        "sigma_1": sigma_1(),
        "sigma_3": sigma_3(),
        "sigma_6": sigma_6(),
        "sigma_8": sigma_8(),
        "sigma_10": sigma_10(),
        "sigma_11": sigma_11(),
    }
