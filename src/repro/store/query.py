"""The store's query surface: filter / sort / paginate stored verdicts.

This is the layer the future HTTP service will sit on, so its semantics
are specified independently of any backend:

* **rows** are flat projections of stored result entries
  (:func:`index_row`): fingerprint ``key``, program ``name``, headline
  ``verdict``, accepting criteria, exhaustion dimension, wall-clock, and
  ``seq`` — the monotonically increasing write sequence that makes every
  sort a *total* order (ties broken by ``seq``);
* **filters** compose conjunctively: exact ``verdict``, ``criterion``
  membership in the accepting set, ``exhausted`` yes/no, fingerprint
  ``key_prefix``;
* **pagination is keyset, not offset**: the cursor names the last row
  seen as ``[sort_value, seq]``, and the next page is everything strictly
  after it in sort order.  Rows inserted *behind* an open cursor never
  shift, duplicate, or hide rows already emitted — the property the
  service needs to paginate a store that is being written to.

:func:`query_rows` is the pure-python reference implementation; the
sqlite backend compiles the same query to SQL, and property tests pin the
two against each other (``tests/test_store_query.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Fields a query may sort on.  ``seq`` is insertion order; everything
#: else sorts by value with ``seq`` as the tie-breaker.
SORT_FIELDS = ("seq", "name", "verdict", "elapsed_ms", "key")


class QueryError(ValueError):
    """A malformed query: unknown sort field, bad cursor, bad limit.

    The CLI turns this into a usage error; an HTTP front end would turn
    it into a 400.
    """


@dataclass(frozen=True)
class ResultQuery:
    """One page's worth of question against the result store."""

    verdict: str | None = None      # exact headline verdict
    criterion: str | None = None    # accepted by this criterion
    exhausted: bool | None = None   # budget-exhausted records (or not)
    key_prefix: str | None = None   # fingerprint prefix (hex)
    sort: str = "seq"               # SORT_FIELDS member, "-" prefix = desc
    limit: int = 50
    cursor: str | None = None       # keyset cursor from a previous page

    def order(self) -> tuple[str, bool]:
        """The validated ``(sort_field, descending)`` pair."""
        descending = self.sort.startswith("-")
        sort_field = self.sort[1:] if descending else self.sort
        if sort_field not in SORT_FIELDS:
            raise QueryError(
                f"unknown sort field {sort_field!r}; known: {SORT_FIELDS}"
            )
        if self.limit < 1:
            raise QueryError(f"limit must be positive, got {self.limit}")
        return sort_field, descending


@dataclass
class QueryPage:
    """One page of rows plus the cursor to the next (None on the last)."""

    rows: list[dict] = field(default_factory=list)
    next_cursor: str | None = None


# -- rows ----------------------------------------------------------------------


def headline(record: dict) -> str:
    """The record's one-line verdict, mode-agnostic.

    Classify records carry a portfolio verdict verbatim; evaluate records
    (Table 2 measurements) are summarised the way the batch table renders
    them.
    """
    data = record.get("data") or {}
    if "verdict" in data:
        return str(data["verdict"])
    if "semi_acyclic" in data:
        sac = "SAC✓" if data["semi_acyclic"] else "SAC✗"
        chase = "chase halted" if data.get("chase_halted") else "no halt"
        return f"{sac}, {chase}"
    return ""


def index_row(seq: int, entry: dict) -> dict:
    """Project one stored cache entry onto the flat, queryable row.

    ``elapsed_ms`` is the one nullable sort field: a record that never
    measured wall-clock (e.g. imported from an external tool) keeps
    ``None`` rather than being coerced to a fake ``0.0`` — backends store
    it as SQL NULL and both query implementations order it NULLs-first
    ascending / NULLs-last descending (SQLite's native NULL ordering).
    """
    record = entry.get("record") or {}
    data = record.get("data") or {}
    exhausted = record.get("exhausted") or None
    elapsed = record.get("elapsed_ms")
    return {
        "seq": seq,
        "key": str(entry.get("key", "")),
        "params": str(entry.get("params", "")),
        "name": str(record.get("name", "")),
        "verdict": headline(record),
        "accepted": [str(c) for c in (data.get("accepted_by") or [])],
        "exhausted": exhausted.get("dimension") if exhausted else None,
        "elapsed_ms": None if elapsed is None else float(elapsed or 0.0),
    }


# -- artifact records ----------------------------------------------------------


def record_identity(record: dict) -> str:
    """The probe an artifact record answers (everything but the answer).

    Both artifact backends deduplicate by this identity — jsonl when
    merging lines on load, sqlite as part of the primary key — and the
    codec in :mod:`repro.batch.artifacts` sorts by it for deterministic
    file content.
    """
    return json.dumps(
        {k: v for k, v in record.items() if k not in ("edge", "exact")},
        sort_keys=True,
    )


# -- cursors -------------------------------------------------------------------


def encode_cursor(row: dict, sort_field: str) -> str:
    """The keyset cursor pointing just past ``row``."""
    return json.dumps([row[sort_field], row["seq"]], separators=(",", ":"))


#: Sort fields whose row value (and therefore cursor value) may be NULL.
NULLABLE_SORT_FIELDS = frozenset({"elapsed_ms"})


def decode_cursor(cursor: str, sort_field: str) -> tuple[object, int]:
    """Inverse of :func:`encode_cursor`, validated."""
    try:
        value, seq = json.loads(cursor)
        seq = int(seq)
    except (ValueError, TypeError) as exc:
        raise QueryError(f"malformed cursor {cursor!r}") from exc
    if value is None and sort_field in NULLABLE_SORT_FIELDS:
        return None, seq
    expect = float if sort_field == "elapsed_ms" else (
        int if sort_field == "seq" else str
    )
    if expect is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, expect):
        raise QueryError(
            f"cursor {cursor!r} does not fit sort field {sort_field!r}"
        )
    return value, seq


def sort_key(row_value: object, seq: int) -> tuple:
    """The total-order key shared by both query implementations.

    NULL sorts first ascending / last descending — SQLite's native NULL
    ordering — and the leading is-not-null flag keeps a ``None`` from
    ever being compared against a real value.  ``seq`` breaks ties.
    """
    if row_value is None:
        return (False, 0, seq)
    return (True, row_value, seq)


# -- the reference implementation ---------------------------------------------


def matches(row: dict, q: ResultQuery) -> bool:
    """Does ``row`` pass every filter of ``q``?"""
    if q.verdict is not None and row["verdict"] != q.verdict:
        return False
    if q.criterion is not None and q.criterion not in row["accepted"]:
        return False
    if q.exhausted is not None and (row["exhausted"] is not None) != q.exhausted:
        return False
    if q.key_prefix is not None and not row["key"].startswith(q.key_prefix):
        return False
    return True


def query_rows(rows: list[dict], q: ResultQuery) -> QueryPage:
    """Execute ``q`` over in-memory rows — the backend-independent oracle."""
    sort_field, descending = q.order()
    selected = [r for r in rows if matches(r, q)]
    selected.sort(
        key=lambda r: sort_key(r[sort_field], r["seq"]), reverse=descending
    )
    if q.cursor is not None:
        value, seq = decode_cursor(q.cursor, sort_field)
        mark = sort_key(value, seq)
        if descending:
            selected = [
                r for r in selected if sort_key(r[sort_field], r["seq"]) < mark
            ]
        else:
            selected = [
                r for r in selected if sort_key(r[sort_field], r["seq"]) > mark
            ]
    page = selected[: q.limit]
    next_cursor = None
    if len(selected) > q.limit:
        next_cursor = encode_cursor(page[-1], sort_field)
    return QueryPage(rows=page, next_cursor=next_cursor)
