"""repro.store — the embedded result/artifact store behind ``repro.batch``.

One cache directory is one *store*.  Two interchangeable backends persist
it (DESIGN.md §7):

* ``sqlite`` (the default) — a single ``store.sqlite`` file in WAL mode
  (``synchronous=NORMAL``, ``busy_timeout``), with an indexed schema keyed
  by the canonical program fingerprint.  Opens in O(1), serves point
  lookups and the query surface from indexes, and tolerates concurrent
  writers from multiple processes (one writer at a time, readers never
  blocked).  Connections are per-process: a handle inherited across
  ``fork`` lazily reopens in the child instead of sharing the parent's
  connection (sharing is undefined behaviour in SQLite).
* ``jsonl`` — the original append-only ``results.jsonl``/
  ``artifacts.jsonl`` logs, replayed in full on open.  Retained as the
  differential reference backend and as the import/export interchange
  format: ``repro batch export-jsonl`` / ``import-jsonl`` move a store
  between the two representations, and a legacy JSONL directory opened
  with the sqlite backend migrates itself automatically on first open.

The query surface (:mod:`repro.store.query`) — filter / sort / keyset-
paginate over stored verdicts — executes as SQL on the sqlite backend and
through the pure-python reference implementation on the jsonl backend;
property tests pin the two against each other.
"""

from .jsonl import JsonlArtifactBackend, JsonlResultBackend
from .port import PortReport, export_jsonl, import_jsonl
from .query import (
    QueryError,
    QueryPage,
    ResultQuery,
    decode_cursor,
    encode_cursor,
    index_row,
    query_rows,
    record_identity,
)
from .sqlite import (
    BUSY_TIMEOUT_MS,
    SqliteArtifactBackend,
    SqliteResultBackend,
    StoreCorruptionError,
    StoreError,
    connect,
)

#: Names accepted everywhere a backend is selectable (``BatchConfig.store``,
#: ``ResultCache(backend=...)``, the CLI ``--store`` flag).
BACKENDS = ("sqlite", "jsonl")

__all__ = [
    "BACKENDS",
    "BUSY_TIMEOUT_MS",
    "JsonlArtifactBackend",
    "JsonlResultBackend",
    "PortReport",
    "QueryError",
    "QueryPage",
    "ResultQuery",
    "SqliteArtifactBackend",
    "SqliteResultBackend",
    "StoreCorruptionError",
    "StoreError",
    "connect",
    "decode_cursor",
    "encode_cursor",
    "export_jsonl",
    "import_jsonl",
    "index_row",
    "query_rows",
    "record_identity",
]
