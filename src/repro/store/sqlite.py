"""The embedded SQLite backend: one ``store.sqlite`` per cache directory.

Configuration follows the WAL recipe the ROADMAP names as the exemplar
(Paper-Scanner's ``sqlite_ext.py``): ``journal_mode=WAL`` so readers
never block the one writer, ``synchronous=NORMAL`` (durable against
process crashes — a committed transaction survives SIGKILL; the fsync
saved per commit is only at risk if the whole machine goes down between
checkpoints), ``busy_timeout`` so concurrent writers queue instead of
failing with ``database is locked``, ``foreign_keys=ON`` as a matter of
hygiene.

Fork-safety: SQLite connections must not be used across ``fork`` (the
batch engine's process pool forks workers while the parent holds the
store open).  Every backend therefore reaches its connection through a
pid-guarded handle: a handle inherited by a forked child *abandons* the
parent's connection — without closing it, which would write to the
parent's WAL from the child — and lazily opens its own.

Schema (DESIGN.md §7): ``results`` holds one live row per
``(schema, key)`` — ``INSERT OR REPLACE`` gives last-write-wins exactly
like the JSONL log, and re-mints ``seq`` so a rewrite moves the row to
the end of insertion order — with the queryable projection (name,
verdict, accepting criteria, exhaustion, wall-clock) denormalised into
indexed columns next to the full JSON ``entry``.  ``artifacts`` holds one
row per ``(schema, key, probe identity)``; ``INSERT OR IGNORE`` gives the
merge-not-replace semantics of the JSONL artifact log.  Rows written
under another schema version simply stop matching the ``schema = ?``
predicate every read carries — the same invalidation switch as the JSONL
loader, without a rewrite.

A legacy JSONL directory opened with this backend migrates itself: when
the table is empty for the current schema version and the sibling
``results.jsonl``/``artifacts.jsonl`` exists, its live entries are
imported in one transaction.  The JSONL files are left untouched (they
remain the export of record until the next explicit export).
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
from typing import Iterator

from ..io import iter_jsonl
from .query import (
    NULLABLE_SORT_FIELDS,
    QueryPage,
    ResultQuery,
    decode_cursor,
    encode_cursor,
    index_row,
    record_identity,
)

#: How long a writer waits for the database lock before giving up.  With
#: per-record transactions every wait is short; 30s is the Paper-Scanner
#: value and survives heavily oversubscribed stress runs.
BUSY_TIMEOUT_MS = 30_000

STORE_NAME = "store.sqlite"

# ``elapsed_ms`` is nullable: a record with no wall-clock measurement
# stores SQL NULL, matching the None the row projection now preserves
# (see repro.store.query.index_row).
_RESULTS_DDL = """
CREATE TABLE IF NOT EXISTS results (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    schema     INTEGER NOT NULL,
    key        TEXT    NOT NULL,
    params     TEXT    NOT NULL,
    name       TEXT    NOT NULL DEFAULT '',
    verdict    TEXT    NOT NULL DEFAULT '',
    accepted   TEXT    NOT NULL DEFAULT '',
    exhausted  TEXT,
    elapsed_ms REAL,
    entry      TEXT    NOT NULL,
    UNIQUE (schema, key)
)
"""

_RESULTS_INDEX_DDL = (
    "CREATE INDEX IF NOT EXISTS results_by_verdict "
    "    ON results (schema, verdict, seq)",
    "CREATE INDEX IF NOT EXISTS results_by_name "
    "    ON results (schema, name, seq)",
)

_DDL = (
    _RESULTS_DDL
    + ";\n"
    + ";\n".join(_RESULTS_INDEX_DDL)
    + """;
CREATE TABLE IF NOT EXISTS artifacts (
    schema   INTEGER NOT NULL,
    key      TEXT    NOT NULL,
    identity TEXT    NOT NULL,
    record   TEXT    NOT NULL,
    PRIMARY KEY (schema, key, identity)
);
"""
)


class StoreError(RuntimeError):
    """The embedded store cannot serve (misuse or environment trouble)."""


class StoreCorruptionError(StoreError):
    """The database file is damaged beyond SQLite's own recovery.

    WAL recovery handles torn writes by itself (the log has per-frame
    checksums; a torn tail is dropped cleanly on the next open).  This
    error means the *main* database file is broken — restore the
    directory from its JSONL export (``repro batch import-jsonl``).
    """


def connect(path: str | os.PathLike) -> sqlite3.Connection:
    """Open ``path`` with the store's pragma recipe applied.

    ``isolation_level=None`` puts the connection in autocommit mode:
    every statement is its own durable transaction unless an explicit
    ``BEGIN`` is issued — which is exactly the per-record durability the
    cache acknowledges to callers.
    """
    conn = sqlite3.connect(
        str(path), timeout=BUSY_TIMEOUT_MS / 1000.0, isolation_level=None
    )
    try:
        conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        conn.execute("PRAGMA foreign_keys = ON")
    except sqlite3.DatabaseError as exc:
        conn.close()
        raise StoreCorruptionError(
            f"{path} is not a usable SQLite store ({exc}); restore it "
            f"from a JSONL export (repro batch import-jsonl)"
        ) from exc
    return conn


class _Handle:
    """A pid-guarded lazy connection: never shared across ``fork``."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None

    def conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            # An inherited connection is abandoned, not closed: closing
            # would have the child write to the parent's open WAL.
            self._conn = None
            self._conn = connect(self.path)
            self._pid = pid
        return self._conn

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None


def _init_schema(handle: _Handle) -> None:
    try:
        conn = handle.conn()
        conn.executescript(_DDL)
        _relax_elapsed_ms(conn)
    except sqlite3.DatabaseError as exc:
        raise StoreCorruptionError(
            f"{handle.path} is not a usable SQLite store ({exc}); restore "
            f"it from a JSONL export (repro batch import-jsonl)"
        ) from exc


def _relax_elapsed_ms(conn: sqlite3.Connection) -> None:
    """Migrate legacy stores whose ``elapsed_ms`` was ``NOT NULL``.

    Earlier schema versions coerced a missing measurement to ``0.0`` and
    declared the column ``NOT NULL DEFAULT 0.0``; SQLite cannot drop a
    column constraint in place, so such tables are rebuilt once (rename,
    recreate, copy, drop) inside one transaction.  Existing ``0.0``
    values are kept verbatim — only *new* records distinguish "not
    measured" (NULL) from "measured as zero".
    """
    info = conn.execute("PRAGMA table_info(results)").fetchall()
    # PRAGMA table_info columns: cid, name, type, notnull, dflt_value, pk
    if not any(col[1] == "elapsed_ms" and col[3] for col in info):
        return
    conn.execute("BEGIN IMMEDIATE")
    try:
        conn.execute("ALTER TABLE results RENAME TO results_legacy")
        conn.execute(_RESULTS_DDL)
        conn.execute("INSERT INTO results SELECT * FROM results_legacy")
        # Dropping the legacy table also drops the indexes that followed
        # it through the rename; recreate them on the rebuilt table.
        conn.execute("DROP TABLE results_legacy")
        for ddl in _RESULTS_INDEX_DDL:
            conn.execute(ddl)
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise


def _like_escape(text: str) -> str:
    """Make ``text`` literal inside a ``LIKE ... ESCAPE '\\'`` pattern."""
    return (
        text.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )


def _encode_accepted(accepted: list[str]) -> str:
    # Comma-fenced so a criterion filter is one indexable LIKE:
    # ",WA,SC," LIKE "%,WA,%".  Criterion names never contain commas.
    return "," + ",".join(accepted) + "," if accepted else ""


def _decode_accepted(text: str) -> list[str]:
    return [c for c in text.split(",") if c] if text else []


class SqliteResultBackend:
    """Result entries in the ``results`` table of ``store.sqlite``."""

    name = "sqlite"

    def __init__(
        self,
        directory: str | os.PathLike,
        schema_version: int,
        durable: bool = True,  # sqlite commits are always durable
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.schema_version = schema_version
        self.path = self.directory / STORE_NAME
        self._handle = _Handle(self.path)
        self.corrupted = 0
        self.stale_schema = 0
        self.imported = 0
        _init_schema(self._handle)
        self._migrate_legacy_jsonl()
        conn = self._handle.conn()
        self.loaded = self.count()
        (self.stale_schema,) = conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema != ?",
            (self.schema_version,),
        ).fetchone()

    def _migrate_legacy_jsonl(self) -> None:
        legacy = self.directory / "results.jsonl"
        if self.count() or not legacy.exists():
            return
        conn = self._handle.conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            for _, entry in iter_jsonl(legacy.read_text()):
                if entry is None:
                    self.corrupted += 1
                    continue
                if entry.get("schema") != self.schema_version:
                    continue  # stale rows are not worth migrating
                if not isinstance(entry.get("key"), str):
                    self.corrupted += 1
                    continue
                self._insert(conn, entry)
                self.imported += 1
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    _INSERT_SQL = (
        "INSERT OR REPLACE INTO results "
        "(schema, key, params, name, verdict, accepted, exhausted, "
        " elapsed_ms, entry) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    @staticmethod
    def _insert_row(entry: dict) -> tuple:
        """One entry as the parameter tuple of :data:`_INSERT_SQL`."""
        row = index_row(0, entry)
        return (
            entry.get("schema"),
            row["key"],
            row["params"],
            row["name"],
            row["verdict"],
            _encode_accepted(row["accepted"]),
            row["exhausted"],
            row["elapsed_ms"],
            json.dumps(entry, sort_keys=True, separators=(",", ":")),
        )

    def _insert(self, conn: sqlite3.Connection, entry: dict) -> None:
        conn.execute(self._INSERT_SQL, self._insert_row(entry))

    # -- the backend contract ----------------------------------------------

    def count(self) -> int:
        (n,) = self._handle.conn().execute(
            "SELECT COUNT(*) FROM results WHERE schema = ?",
            (self.schema_version,),
        ).fetchone()
        return n

    def contains(self, key: str) -> bool:
        return (
            self._handle.conn()
            .execute(
                "SELECT 1 FROM results WHERE schema = ? AND key = ?",
                (self.schema_version, key),
            )
            .fetchone()
            is not None
        )

    def get(self, key: str) -> dict | None:
        found = self._handle.conn().execute(
            "SELECT entry FROM results WHERE schema = ? AND key = ?",
            (self.schema_version, key),
        ).fetchone()
        return json.loads(found[0]) if found else None

    def put(self, entry: dict) -> None:
        self._insert(self._handle.conn(), entry)

    def put_many(self, entries: list[dict]) -> None:
        """Store a batch of entries in ONE durable transaction.

        Equivalent to ``put`` in a loop record for record (same rows,
        same ``INSERT OR REPLACE`` last-write-wins, same seq order from
        the executemany's input order) — but the write amplification of
        per-record commits (one WAL sync each) collapses into a single
        ``BEGIN IMMEDIATE`` … ``COMMIT``.  All-or-nothing: a failure
        mid-batch rolls every entry back.
        """
        if not entries:
            return
        conn = self._handle.conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany(
                self._INSERT_SQL, [self._insert_row(e) for e in entries]
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def stats(self) -> dict:
        """Observable backend state for ``repro batch query --stats``."""
        conn = self._handle.conn()
        tables: dict[str, int] = {}
        for table in ("results", "artifacts"):
            (tables[table],) = conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
        sizes: dict[str, int] = {}
        for label, path in (
            ("file_bytes", self.path),
            ("wal_bytes", self.path.with_name(self.path.name + "-wal")),
        ):
            try:
                sizes[label] = path.stat().st_size
            except OSError:
                sizes[label] = 0
        return {
            "backend": self.name,
            "tables": tables,
            **sizes,
            "corrupted": self.corrupted,
            "stale_schema": self.stale_schema,
        }

    def entries(self) -> list[tuple[int, dict]]:
        """Every live entry as ``(seq, entry)``, in write order."""
        return [
            (seq, json.loads(text))
            for seq, text in self._handle.conn().execute(
                "SELECT seq, entry FROM results WHERE schema = ? "
                "ORDER BY seq",
                (self.schema_version,),
            )
        ]

    def rows(self) -> list[dict]:
        return [
            self._row(raw)
            for raw in self._handle.conn().execute(
                "SELECT seq, key, params, name, verdict, accepted, "
                "exhausted, elapsed_ms FROM results WHERE schema = ? "
                "ORDER BY seq",
                (self.schema_version,),
            )
        ]

    @staticmethod
    def _row(raw: tuple) -> dict:
        seq, key, params, name, verdict, accepted, exhausted, elapsed = raw
        return {
            "seq": seq,
            "key": key,
            "params": params,
            "name": name,
            "verdict": verdict,
            "accepted": _decode_accepted(accepted),
            "exhausted": exhausted,
            "elapsed_ms": elapsed,
        }

    def query(self, q: ResultQuery) -> QueryPage:
        """Compile ``q`` to one indexed SELECT (keyset pagination via a
        row-value comparison against the cursor)."""
        sort_field, descending = q.order()
        where = ["schema = ?"]
        args: list = [self.schema_version]
        if q.verdict is not None:
            where.append("verdict = ?")
            args.append(q.verdict)
        if q.criterion is not None:
            where.append("accepted LIKE ? ESCAPE '\\'")
            args.append(f"%,{_like_escape(q.criterion)},%")
        if q.exhausted is True:
            where.append("exhausted IS NOT NULL")
        elif q.exhausted is False:
            where.append("exhausted IS NULL")
        if q.key_prefix is not None:
            where.append("key LIKE ? ESCAPE '\\'")
            args.append(_like_escape(q.key_prefix) + "%")
        if q.cursor is not None:
            value, seq = decode_cursor(q.cursor, sort_field)
            op = "<" if descending else ">"
            if sort_field in NULLABLE_SORT_FIELDS:
                # A bare row-value comparison evaluates to NULL when the
                # sort value is NULL, silently dropping those rows from
                # the walk.  Spell out SQLite's native NULL ordering
                # (NULLs first ASC / last DESC) so the predicate agrees
                # with query_rows' sort_key on every row.
                f = sort_field
                if value is None:
                    if descending:
                        where.append(f"({f} IS NULL AND seq < ?)")
                    else:
                        where.append(
                            f"(({f} IS NULL AND seq > ?) OR {f} IS NOT NULL)"
                        )
                    args.append(seq)
                else:
                    if descending:
                        where.append(
                            f"(({f} IS NOT NULL AND ({f}, seq) {op} (?, ?)) "
                            f"OR {f} IS NULL)"
                        )
                    else:
                        where.append(
                            f"({f} IS NOT NULL AND ({f}, seq) {op} (?, ?))"
                        )
                    args.extend([value, seq])
            else:
                where.append(f"({sort_field}, seq) {op} (?, ?)")
                args.extend([value, seq])
        order = "DESC" if descending else "ASC"
        sql = (
            "SELECT seq, key, params, name, verdict, accepted, exhausted, "
            f"elapsed_ms FROM results WHERE {' AND '.join(where)} "
            f"ORDER BY {sort_field} {order}, seq {order} LIMIT ?"
        )
        args.append(q.limit + 1)
        raw = self._handle.conn().execute(sql, args).fetchall()
        page = [self._row(r) for r in raw[: q.limit]]
        next_cursor = None
        if len(raw) > q.limit:
            next_cursor = encode_cursor(page[-1], sort_field)
        return QueryPage(rows=page, next_cursor=next_cursor)

    def integrity(self) -> str:
        """SQLite's own verdict on the file ('ok' when sound)."""
        (verdict,) = self._handle.conn().execute(
            "PRAGMA quick_check"
        ).fetchone()
        return verdict

    def close(self) -> None:
        self._handle.close()


class SqliteArtifactBackend:
    """Decision records in the ``artifacts`` table of ``store.sqlite``."""

    name = "sqlite"

    def __init__(
        self,
        directory: str | os.PathLike,
        schema_version: int,
        durable: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.schema_version = schema_version
        self.path = self.directory / STORE_NAME
        self._handle = _Handle(self.path)
        self.imported = 0
        _init_schema(self._handle)
        self._migrate_legacy_jsonl()

    def _migrate_legacy_jsonl(self) -> None:
        legacy = self.directory / "artifacts.jsonl"
        if self.programs() or not legacy.exists():
            return
        conn = self._handle.conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            for _, line in iter_jsonl(legacy.read_text()):
                if line is None or line.get("schema") != self.schema_version:
                    continue
                key = line.get("key")
                records = line.get("oracle")
                if not isinstance(key, str) or not isinstance(records, list):
                    continue
                self.imported += self._insert(conn, key, records)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def _insert(
        self, conn: sqlite3.Connection, key: str, records: list[dict]
    ) -> int:
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO artifacts (schema, key, identity, record) "
            "VALUES (?, ?, ?, ?)",
            [
                (
                    self.schema_version,
                    key,
                    record_identity(record),
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                )
                for record in records
            ],
        )
        return conn.total_changes - before

    # -- the backend contract ----------------------------------------------

    def programs(self) -> int:
        (n,) = self._handle.conn().execute(
            "SELECT COUNT(DISTINCT key) FROM artifacts WHERE schema = ?",
            (self.schema_version,),
        ).fetchone()
        return n

    def get(self, key: str) -> list[dict]:
        return [
            json.loads(text)
            for (text,) in self._handle.conn().execute(
                "SELECT record FROM artifacts WHERE schema = ? AND key = ? "
                "ORDER BY identity",
                (self.schema_version, key),
            )
        ]

    def put(self, key: str, records: list[dict]) -> int:
        conn = self._handle.conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            fresh = self._insert(conn, key, records)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return fresh

    def entries(self) -> Iterator[tuple[str, list[dict]]]:
        """Every program's merged records as ``(key, records)``."""
        current: str | None = None
        bucket: list[dict] = []
        for key, text in self._handle.conn().execute(
            "SELECT key, record FROM artifacts WHERE schema = ? "
            "ORDER BY key, identity",
            (self.schema_version,),
        ):
            if key != current:
                if current is not None:
                    yield current, bucket
                current, bucket = key, []
            bucket.append(json.loads(text))
        if current is not None:
            yield current, bucket

    def close(self) -> None:
        self._handle.close()
