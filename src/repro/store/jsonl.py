"""The append-only JSONL backend — the original store representation.

Retained for two jobs: as the *differential reference backend* (its
semantics are the simplest possible correct ones: an append-only log,
replayed in full on open, last write per key wins), and as the
import/export interchange format for the sqlite backend.

Durability contract (the acknowledged-write guarantee): ``put`` returns
only after the line has been flushed **and fsynced**.  A writer killed at
any instant — even SIGKILL mid-``write`` — loses at most the one record
whose ``put`` had not yet returned, never a record the caller was told
about; the torn final line is counted and skipped on reload.  (Before
this, ``put`` only flushed to the OS page cache: safe against a process
crash, not against the machine going down with an acknowledged record
still unsynced.)
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterator

from ..io import iter_jsonl, jsonl_dumps
from .query import QueryPage, ResultQuery, index_row, query_rows, record_identity

RESULTS_NAME = "results.jsonl"
ARTIFACTS_NAME = "artifacts.jsonl"


class _AppendLog:
    """A durably appended JSONL file (open lazily, fsync per line).

    When the first append *creates* the file, the parent directory is
    fsynced too: fsyncing the file makes its **contents** durable, but
    the directory entry naming it lives in the directory's own metadata,
    and without the directory sync a machine crash can forget the file
    wholesale — acknowledged records and all.
    """

    def __init__(self, path: pathlib.Path, durable: bool = True) -> None:
        self.path = path
        self.durable = durable
        self._fh = None

    def append(self, line: str) -> None:
        self.append_many([line])

    def append_many(self, lines: list[str]) -> None:
        """Append a batch of lines with ONE flush and ONE fsync.

        The durability unit widens from the line to the batch: when
        ``append_many`` returns, every line in it survives SIGKILL; a
        crash mid-call loses at most the (unacknowledged) batch, and a
        torn final line is skipped on reload exactly as for ``append``.
        One fsync per batch instead of one per record is where the
        batched drain's throughput comes from.
        """
        if not lines:
            return
        if self._fh is None:
            created = not self.path.exists()
            self._fh = self.path.open("a", encoding="utf-8")
            if created and self.durable:
                self._sync_directory()
        self._fh.write("\n".join(lines) + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())

    def _sync_directory(self) -> None:
        """Make the file's directory entry durable (POSIX only; platforms
        that cannot open a directory read-only skip silently)."""
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            dirfd = os.open(self.path.parent, flags)
        except OSError:
            return
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class JsonlResultBackend:
    """Load-once, append-forever result entries in ``results.jsonl``."""

    name = "jsonl"

    def __init__(
        self,
        directory: str | os.PathLike,
        schema_version: int,
        durable: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.schema_version = schema_version
        self.path = self.directory / RESULTS_NAME
        self._log = _AppendLog(self.path, durable=durable)
        self._entries: dict[str, dict] = {}
        self._seq: dict[str, int] = {}
        self._next_seq = 1
        self.loaded = 0
        self.corrupted = 0
        self.stale_schema = 0
        self.imported = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for _, entry in iter_jsonl(self.path.read_text()):
            if entry is None:
                self.corrupted += 1
                continue
            if entry.get("schema") != self.schema_version:
                self.stale_schema += 1
                continue
            key = entry.get("key")
            if not isinstance(key, str):
                self.corrupted += 1
                continue
            self._entries[key] = entry
            self._seq[key] = self._next_seq
            self._next_seq += 1
        self.loaded = len(self._entries)

    # -- the backend contract ----------------------------------------------

    def count(self) -> int:
        return len(self._entries)

    def contains(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put(self, entry: dict) -> None:
        self.put_many([entry])

    def put_many(self, entries: list[dict]) -> None:
        """Store a batch of entries behind one flush-and-fsync.

        Equivalent to ``put`` in a loop record for record (same lines,
        same last-write-wins resolution, same in-memory view) — only the
        durability unit changes from the record to the batch.
        """
        if not entries:
            return
        self._log.append_many([jsonl_dumps(e) for e in entries])
        for entry in entries:
            key = entry["key"]
            self._entries[key] = entry
            self._seq[key] = self._next_seq
            self._next_seq += 1

    def stats(self) -> dict:
        """Observable backend state for ``repro batch query --stats``."""
        try:
            file_bytes = self.path.stat().st_size
        except OSError:
            file_bytes = 0
        return {
            "backend": self.name,
            "tables": {"results": len(self._entries)},
            "file_bytes": file_bytes,
            "wal_bytes": None,  # no write-ahead log in the JSONL backend
            "corrupted": self.corrupted,
            "stale_schema": self.stale_schema,
        }

    def entries(self) -> list[tuple[int, dict]]:
        """Every live entry as ``(seq, entry)``, in write order."""
        return sorted(
            ((self._seq[k], e) for k, e in self._entries.items()),
            key=lambda pair: pair[0],
        )

    def rows(self) -> list[dict]:
        return [index_row(seq, entry) for seq, entry in self.entries()]

    def query(self, q: ResultQuery) -> QueryPage:
        return query_rows(self.rows(), q)

    def close(self) -> None:
        self._log.close()


class JsonlArtifactBackend:
    """Per-program decision records in ``artifacts.jsonl`` (merge, not
    replace: lines for one key accumulate, deduplicated by probe)."""

    name = "jsonl"

    def __init__(
        self,
        directory: str | os.PathLike,
        schema_version: int,
        durable: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.schema_version = schema_version
        self.path = self.directory / ARTIFACTS_NAME
        self._log = _AppendLog(self.path, durable=durable)
        self._entries: dict[str, dict[str, dict]] = {}
        self.imported = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for _, line in iter_jsonl(self.path.read_text()):
            if line is None or line.get("schema") != self.schema_version:
                continue
            key = line.get("key")
            records = line.get("oracle")
            if not isinstance(key, str) or not isinstance(records, list):
                continue
            merged = self._entries.setdefault(key, {})
            for record in records:
                merged[record_identity(record)] = record

    # -- the backend contract ----------------------------------------------

    def programs(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> list[dict]:
        return list(self._entries.get(key, {}).values())

    def put(self, key: str, records: list[dict]) -> int:
        merged = self._entries.setdefault(key, {})
        fresh = []
        for record in records:
            identity = record_identity(record)
            if identity not in merged:
                merged[identity] = record
                fresh.append(record)
        if fresh:
            self._log.append(
                jsonl_dumps(
                    {"schema": self.schema_version, "key": key, "oracle": fresh}
                )
            )
        return len(fresh)

    def entries(self) -> Iterator[tuple[str, list[dict]]]:
        """Every program's merged records as ``(key, records)``, sorted
        by probe identity — byte-identical to the sqlite backend's
        iteration, so exports of equivalent stores are equal."""
        for key in sorted(self._entries):
            merged = self._entries[key]
            yield key, [merged[identity] for identity in sorted(merged)]

    def close(self) -> None:
        self._log.close()
