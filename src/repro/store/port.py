"""Import/export between a live store and the JSONL interchange format.

The JSONL representation (``results.jsonl`` + ``artifacts.jsonl``, the
formats of :mod:`repro.store.jsonl`) is the store's portability contract:

* an **export** is a normalised snapshot — live entries only, one line
  per result key (last write wins has already been applied), artifact
  records merged and sorted by probe identity.  Exporting a jsonl-backend
  store therefore compacts it; exporting a sqlite store produces the file
  a jsonl store would have converged to;
* an **import** replays a JSONL snapshot through the ordinary ``put``
  path of whatever backend the target store uses — entries under a
  different schema version and torn/corrupt lines are counted and
  skipped, exactly as the jsonl loader would.  Importing is idempotent
  (result puts are last-write-wins, artifact puts deduplicate by probe).

These functions operate on the :class:`~repro.batch.cache.ResultCache` /
:class:`~repro.batch.artifacts.ArtifactStore` facades, so they move data
between *any* two backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..io import iter_jsonl, jsonl_dumps


@dataclass
class PortReport:
    """What an import/export moved (and what it refused)."""

    results: int = 0
    artifacts: int = 0       # individual decision records
    programs: int = 0        # programs those records belong to
    skipped: int = 0         # stale-schema or corrupt lines

    def summary(self) -> str:
        bits = [f"{self.results} result records"]
        if self.programs:
            bits.append(
                f"{self.artifacts} firing decisions "
                f"across {self.programs} programs"
            )
        if self.skipped:
            bits.append(f"{self.skipped} lines skipped (stale or corrupt)")
        return ", ".join(bits)


def export_jsonl(cache: Any, store: Any = None) -> tuple[str, str, PortReport]:
    """Render a store as ``(results_text, artifacts_text, report)``.

    ``cache`` is a result facade/backend exposing ``entries()`` and
    ``schema_version``; ``store`` (optional) the artifact counterpart.
    Either text is ``""`` when there is nothing to export.
    """
    report = PortReport()
    result_lines = []
    for _, entry in cache.entries():
        result_lines.append(jsonl_dumps(entry))
        report.results += 1
    artifact_lines = []
    if store is not None:
        for key, records in store.entries():
            artifact_lines.append(
                jsonl_dumps(
                    {
                        "schema": store.schema_version,
                        "key": key,
                        "oracle": records,
                    }
                )
            )
            report.programs += 1
            report.artifacts += len(records)
    results_text = "\n".join(result_lines) + "\n" if result_lines else ""
    artifacts_text = "\n".join(artifact_lines) + "\n" if artifact_lines else ""
    return results_text, artifacts_text, report


def import_jsonl(
    cache: Any,
    results_text: str = "",
    store: Any = None,
    artifacts_text: str = "",
) -> PortReport:
    """Replay JSONL snapshots into a store through its ``put`` path."""
    report = PortReport()
    for _, entry in iter_jsonl(results_text):
        if (
            entry is None
            or entry.get("schema") != cache.schema_version
            or not isinstance(entry.get("key"), str)
            or not isinstance(entry.get("record"), dict)
        ):
            report.skipped += 1
            continue
        cache.put(entry["key"], entry.get("params", ""), entry["record"])
        report.results += 1
    if store is not None:
        for _, line in iter_jsonl(artifacts_text):
            if line is None or line.get("schema") != store.schema_version:
                report.skipped += 1
                continue
            key = line.get("key")
            records = line.get("oracle")
            if not isinstance(key, str) or not isinstance(records, list):
                report.skipped += 1
                continue
            report.artifacts += store.put(key, records)
            report.programs += 1
    return report
