"""Witness search for the firing relations ``r1 ≺ r2`` and ``r1 < r2``.

``r1 ≺ r2`` (chase graph, Deutsch–Nash–Remmel) holds iff there are
instances ``K``, ``J``, homomorphisms ``h1 : Body(r1) → K`` and
``h2 : Body(r2) → J`` such that

  (i)   ``K ⊨ h2(r2)``,
  (ii)  ``K --(r1, h1, γ1)--> J`` is a standard chase step,
  (iii) ``J ⊭ h2(r2)``.

``r1 < r2`` (firing graph, Definition 2) adds, for existential ``r2``,

  (iv)  no full dependency ``r3 ∈ Σ∀`` has a standard chase step
        ``K --(r3, h3, γ3)--> J'`` with ``J' ⊨ h2(r2)``.

Deciding (i)–(iii) is NP-complete; this module implements an exact-in-
practice witness search over canonical instances:

* ``K`` is built from a frozen copy of ``Body(r1)`` (labelled nulls, one
  per variable class), plus the atoms of ``h2(Body(r2))`` that the new
  head atoms / the EGD merge do not provide;
* condition (i) reduces to *newness* — at least one atom of
  ``h2(Body(r2))`` must be absent from ``K`` (if all body atoms pre-exist,
  either (i) or (iii) necessarily fails; see the derivation in DESIGN.md);
* for (iv), minimal witnesses are *saturated*: every applicable-and-
  defusing full TGD's head is added to K (the only way to neutralise it),
  re-checking (i)–(iii) after each addition; EGD defusers can be
  neutralised only by merging their equality images (extra variable
  merges) or by flipping the substitution direction (labelling a class as
  a constant), both of which are enumerated in the deep pass.

The paper's own Example 11 fixes two semantic corner cases which we follow
literally: a defusing step counts even when ``J' ⊨ h2(r2)`` holds
*vacuously*, and a failing step (``J' = ⊥``) defuses (a failing sequence is
finite, hence terminating).

When the enumeration budget is exhausted the engine answers ``True`` with
``exact=False``: firing edges are consumed negatively by every criterion,
so over-approximating keeps the criteria sound.  Budgets come from
:mod:`repro.budget`: an ``int`` budget is a per-pair step allowance (the
historical convention), a :class:`~repro.budget.Budget` is used as-is,
and fresh budgets are linked to the ambient one of the enclosing
analysis scope, so a criterion-level deadline or cancellation cuts the
witness search off mid-pair.

State management is transactional by default (``snapshots="savepoint"``):
the candidate instance ``K`` is built once per variable-freeze and every
enumerated candidate — the preimage pattern, the ``J`` overlay, each
defuser's probe instance — is a savepoint-scoped mutation rolled back in
O(changes), instead of the per-candidate ``Instance(K0)`` rebuilds and
``K.copy()`` forks the ``snapshots="copy"`` reference backend still
performs.  Both backends run the *same* enumeration and charge the
budget at the same points, so they produce byte-identical decisions
(witnesses included); the differential suite asserts it.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..budget import Budget, coerce_budget
from ..homomorphism.finder import find_homomorphism, find_homomorphisms
from ..homomorphism.satisfaction import satisfies_instantiated
from ..matching import chase_instance, warm_plans
from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable

# -- tuning knobs -----------------------------------------------------------

MAX_PARTITION_VARS = 7       # full partition enumeration up to Bell(7)=877
MAX_LABEL_CLASSES = 6        # label (null/const) enumeration up to 2^6
MAX_PREIMAGE_POSITIONS = 3   # per-atom preimage pattern enumeration
DEFAULT_BUDGET = 200_000     # unification/instance-check budget per pair

SNAPSHOT_BACKENDS = ("savepoint", "copy")


@dataclass
class Witness:
    """A concrete witness for conditions (i)-(iii) (and (iv) if checked)."""

    K: Instance
    J: Instance
    h1: dict
    h2: dict
    r1: AnyDependency
    r2: AnyDependency

    def __str__(self) -> str:
        return f"K={self.K} --[{self.r1.label or self.r1}]--> J={self.J}"


@dataclass
class FiringDecision:
    """Outcome of an edge decision: verdict + exactness + optional witness."""

    edge: bool
    exact: bool
    witness: Witness | None = None


# -- fresh term supply --------------------------------------------------------


class _TermSupply:
    """Deterministic fresh nulls/constants for witness instances."""

    def __init__(self) -> None:
        self._n = 0

    def null(self) -> Null:
        self._n += 1
        return Null(900_000 + self._n)

    def const(self) -> Constant:
        self._n += 1
        return Constant(f"__w{self._n}")


# -- partitions ----------------------------------------------------------------


def iter_partitions(items: Sequence, limit_vars: int = MAX_PARTITION_VARS) -> Iterator[list[list]]:
    """All set partitions of ``items`` (identity-finest first).

    Returns nothing beyond the singleton partition when ``items`` is larger
    than ``limit_vars`` (the caller treats that as an inexactness signal).
    """
    items = list(items)
    yield [[x] for x in items]
    if not items or len(items) > limit_vars:
        return

    # repro-lint: disable=budget-loop -- idx strictly advances to len(items) <= limit_vars; bounded partition enumeration
    def rec(idx: int, blocks: list[list]) -> Iterator[list[list]]:
        if idx == len(items):
            yield [list(b) for b in blocks]
            return
        x = items[idx]
        for b in blocks:
            b.append(x)
            yield from rec(idx + 1, blocks)
            b.pop()
        blocks.append([x])
        yield from rec(idx + 1, blocks)
        blocks.pop()

    for part in rec(0, []):
        if all(len(b) == 1 for b in part):
            continue  # identity already yielded
        yield part


# -- the engine ------------------------------------------------------------------


class WitnessEngine:
    """Decides firing-relation edges for one pair of dependencies."""

    def __init__(
        self,
        r1: AnyDependency,
        r2: AnyDependency,
        fulls: Sequence[AnyDependency] = (),
        step_variant: str = "standard",
        budget: Budget | int = DEFAULT_BUDGET,
        snapshots: str = "savepoint",
    ) -> None:
        if snapshots not in SNAPSHOT_BACKENDS:
            raise ValueError(
                f"unknown snapshot backend {snapshots!r}; "
                f"known: {SNAPSHOT_BACKENDS}"
            )
        # Rename apart so self-loops and shared variable names are safe.
        self.r1 = r1.rename_variables("1")
        self.r2 = r2.rename_variables("2")
        self.orig_r1 = r1
        self.orig_r2 = r2
        self.fulls = [d.rename_variables(f"f{i}") for i, d in enumerate(fulls)]
        self.step_variant = step_variant
        self.budget = coerce_budget(budget, default_steps=DEFAULT_BUDGET)
        self.snapshots = snapshots
        # Compile the join plans for the bodies this engine probes over
        # and over (candidate instances are built per partition, but the
        # renamed-apart bodies are fixed for the engine's lifetime).  The
        # empty compile target means ordering falls back to probe count;
        # witness instances are small enough that order barely matters.
        # A no-op unless the "planned" backend is active in this context.
        warm_plans(
            [self.r1.body, self.r2.body, *(d.body for d in self.fulls)], ()
        )

    @contextmanager
    def _scratch(self, inst: Instance):
        """A scope in which ``inst`` may be freely mutated and is restored
        on exit: an undo-log savepoint (savepoint backend) or a throwaway
        fork (copy backend).  Callers must not hold live homomorphism
        generators over ``inst`` across the scope — the savepoint backend
        mutates it in place."""
        if self.snapshots == "savepoint":
            sp = inst.savepoint()
            try:
                yield inst
            finally:
                inst.rollback(sp)
        else:
            yield inst.copy()

    # -- public API ------------------------------------------------------

    def precedes(self) -> FiringDecision:
        """``r1 ≺ r2``: conditions (i)-(iii) only."""
        return self._decide(check_defusal=False)

    def fires(self) -> FiringDecision:
        """``r1 < r2``: adds the defusal condition (iv) for existential r2."""
        check = self.r2.is_existential
        return self._decide(check_defusal=check)

    # -- driver ----------------------------------------------------------

    def _decide(self, check_defusal: bool) -> FiringDecision:
        if not self._prefilter():
            return FiringDecision(False, True)
        inexact = False
        for witness, died_by_defusal in self._search(check_defusal):
            if witness is not None:
                return FiringDecision(True, True, witness)
        if not self.budget.exact:
            return FiringDecision(True, False)
        if self._hit_partition_limit:
            inexact = True
        return FiringDecision(False, not inexact)

    def _prefilter(self) -> bool:
        """Cheap necessary condition.

        A TGD r1 can fire r2 only if at least one atom of ``h2(Body(r2))``
        comes from the new head atoms, so the head and body predicates must
        intersect.  EGDs can fire essentially anything (the merge may
        freshly create any body atom in J \\ K), so no filter applies.
        """
        if isinstance(self.r1, TGD):
            head_preds = {a.predicate for a in self.r1.head}
            body_preds = {a.predicate for a in self.r2.body}
            return bool(head_preds & body_preds)
        return True

    # -- witness enumeration ------------------------------------------------

    def _search(
        self, check_defusal: bool
    ) -> Iterator[tuple[Witness | None, bool]]:
        """Yield (witness, died_by_defusal) for each candidate examined."""
        self._hit_partition_limit = False
        r1_vars = sorted(self.r1.body_variables(), key=lambda v: v.name)
        if len(r1_vars) > MAX_PARTITION_VARS:
            self._hit_partition_limit = True
        for partition in iter_partitions(r1_vars):
            if not self.budget.charge():
                return
            if isinstance(self.r1, EGD):
                if self._same_block(partition, self.r1.lhs, self.r1.rhs):
                    continue
                directions = ("lhs", "rhs")
            else:
                directions = ("lhs",)
            for direction in directions:
                yield from self._search_with_freeze(
                    partition, direction, check_defusal
                )

    @staticmethod
    def _same_block(partition: list[list], a: Variable, b: Variable) -> bool:
        for block in partition:
            if a in block:
                return b in block
        return False

    def _search_with_freeze(
        self,
        partition: list[list],
        direction: str,
        check_defusal: bool,
    ) -> Iterator[tuple[Witness | None, bool]]:
        """Freeze Body(r1) per the partition and enumerate h2 candidates.

        ``direction`` selects, for an EGD r1, which equality side is the
        eliminated null ("lhs": γ = {h(x1)/h(x2)}, the Definition 1 default
        for a null x1-image; "rhs": the x2 side is eliminated, which
        corresponds to labelling the x1 class as a constant).
        """
        supply = _TermSupply()
        class_term: dict[Variable, Term] = {}
        blocks = [sorted(b, key=lambda v: v.name) for b in partition]
        for block in blocks:
            t = supply.null()
            for v in block:
                class_term[v] = t
        h1 = dict(class_term)
        K0 = [a.apply(class_term) for a in self.r1.body]

        if isinstance(self.r1, TGD):
            head_map: dict[Term, Term] = dict(class_term)
            for z in self.r1.existential:
                head_map[z] = supply.null()
            new_atoms = [a.apply(head_map) for a in self.r1.head]
            gamma = None
        else:
            lhs_t, rhs_t = class_term[self.r1.lhs], class_term[self.r1.rhs]
            if direction == "lhs":
                gamma = (lhs_t, rhs_t)  # eliminate h(x1)
            else:
                gamma = (rhs_t, lhs_t)
            new_atoms = []

        # The savepoint backend materialises the frozen body once per
        # freeze and scopes every candidate mutation below it; the copy
        # backend rebuilds the K0 instance per candidate (the reference
        # the differential suite compares against).  chase_instance picks
        # the active backend's fact representation.
        Kbase = chase_instance(K0) if self.snapshots == "savepoint" else None
        yield from self._enumerate_h2(
            Kbase, K0, new_atoms, gamma, h1, supply, check_defusal
        )

    def _enumerate_h2(
        self,
        Kbase: Instance | None,
        K0: list[Atom],
        new_atoms: list[Atom],
        gamma: tuple[Term, Term] | None,
        h1: dict,
        supply: _TermSupply,
        check_defusal: bool,
    ) -> Iterator[tuple[Witness | None, bool]]:
        """Enumerate mappings of Body(r2) into J = (K ∪ extras)γ ∪ New."""
        if gamma is None:
            J0 = list(dict.fromkeys(K0 + new_atoms))
        else:
            old, new = gamma
            J0 = list(dict.fromkeys(a.apply({old: new}) for a in K0))
        b2 = list(self.r2.body)
        n = len(b2)
        # Choose, per body atom of r2, whether it maps into J0 or becomes a
        # "free" atom added to K (and J) explicitly.
        for mask in range(2**n):
            if not self.budget.charge():
                return
            matched = [b2[i] for i in range(n) if mask & (1 << i)]
            free = [b2[i] for i in range(n) if not mask & (1 << i)]
            for g in find_homomorphisms(matched, J0, limit=None):
                if not self.budget.charge():
                    return
                yield from self._complete_witness(
                    Kbase, K0, new_atoms, gamma, h1, dict(g), free, supply,
                    check_defusal,
                )

    def _complete_witness(
        self,
        Kbase: Instance | None,
        K0: list[Atom],
        new_atoms: list[Atom],
        gamma: tuple[Term, Term] | None,
        h1: dict,
        h2: dict,
        free: list[Atom],
        supply: _TermSupply,
        check_defusal: bool,
    ) -> Iterator[tuple[Witness | None, bool]]:
        """Instantiate free atoms, build concrete K and J, run the checks."""
        unbound = sorted(
            {v for a in free for v in a.variables() if v not in h2},
            key=lambda v: v.name,
        )
        if unbound:
            # Each unbound variable may take a fresh null or any existing
            # witness term (e.g. the EGD merge survivor — needed when the
            # new match owes its existence to the merge, as in
            # "E(x,y) → x=y fires M(w) → ...": K = {E(a,η), M(η)}).
            if gamma is None:
                pool = sorted({t for a in K0 for t in a.args}, key=str)
            else:
                pool = sorted({t for a in K0 for t in a.args if t is not gamma[0]}, key=str)
            choices = [[supply.null()] + pool for _ in unbound]
            if len(unbound) > 3:
                choices = [[supply.null()] for _ in unbound]  # cap blow-up
            for combo in itertools.product(*choices):
                if not self.budget.charge():
                    return
                h2c = dict(h2)
                for v, t in zip(unbound, combo):
                    h2c[v] = t
                yield from self._complete_with_bound(
                    Kbase, K0, new_atoms, gamma, h1, h2c, free, check_defusal
                )
            return
        yield from self._complete_with_bound(
            Kbase, K0, new_atoms, gamma, h1, dict(h2), free, check_defusal
        )

    def _complete_with_bound(
        self,
        Kbase: Instance | None,
        K0: list[Atom],
        new_atoms: list[Atom],
        gamma: tuple[Term, Term] | None,
        h1: dict,
        h2: dict,
        free: list[Atom],
        check_defusal: bool,
    ) -> Iterator[tuple[Witness | None, bool]]:
        free_images = [a.apply(h2) for a in free]

        # Preimage patterns: for an EGD r1, a free atom may pre-exist in K
        # with the eliminated null in any subset of the merged positions.
        if gamma is None:
            preimage_choices: list[list[Atom]] = [free_images]
        else:
            old, new = gamma
            per_atom: list[list[Atom]] = []
            for img in free_images:
                positions = [i for i, t in enumerate(img.args) if t is new]
                options = [img]
                if positions and len(positions) <= MAX_PREIMAGE_POSITIONS:
                    for k in range(1, len(positions) + 1):
                        for combo in itertools.combinations(positions, k):
                            args = list(img.args)
                            for i in combo:
                                args[i] = old
                            options.append(Atom(img.predicate, args))
                elif positions:
                    args = [old if t is new else t for t in img.args]
                    options.append(Atom(img.predicate, args))
                per_atom.append(options)
            preimage_choices = [list(c) for c in itertools.product(*per_atom)]

        transactional = Kbase is not None
        for preimages in preimage_choices:
            if not self.budget.charge():
                return
            if transactional:
                sp = Kbase.savepoint()
                K = Kbase
            else:
                sp = None
                K = chase_instance(K0)
            try:
                K.add_all(preimages)
                # Build J: an overlay on K under a nested savepoint, or a
                # fork (copy backend).  Either way the same checks run and
                # the budget is charged at the same points.
                if transactional:
                    spJ = K.savepoint()
                    if gamma is None:
                        K.add_all(new_atoms)
                    else:
                        K.merge_terms(gamma[0], gamma[1])
                    J = K
                else:
                    if gamma is None:
                        J = K.copy()
                        J.add_all(new_atoms)
                    else:
                        J = K.apply({gamma[0]: gamma[1]})
                    spJ = None
                # Free images must actually be present in J (preimages
                # merge into them); guaranteed by construction, asserted
                # cheaply.
                inst_body: list[Atom] | None = None
                ok = all(img in J for img in free_images)
                if ok:
                    if not self.budget.charge():
                        ok = False
                    else:
                        inst_body = [a.apply(h2) for a in self.r2.body]
                        ok = self._witness_checks_J(J, inst_body, h2)
                if spJ is not None:
                    K.rollback(spJ)
                if not ok or inst_body is None:
                    continue
                if not self._witness_checks_K(K, inst_body, h1):
                    continue
                witness = self._materialize(K, new_atoms, gamma, h1, h2)
                if not check_defusal:
                    yield witness, False
                    return
                survivor = self._defusal(witness)
                if survivor is not None:
                    yield survivor, False
                    return
                yield None, True
            finally:
                if sp is not None:
                    Kbase.rollback(sp)

    # -- conditions (i)-(iii) -------------------------------------------------

    def _witness_checks_J(
        self, J: Instance, inst_body: list[Atom], h2: dict
    ) -> bool:
        """The conditions that read the *J* state."""
        # (iii) needs h2(Body(r2)) ⊆ J.
        if not all(a in J for a in inst_body):
            return False
        # (iii): J must violate h2(r2).  Under the oblivious step semantics
        # (c-stratification) a TGD trigger "fires" regardless of head
        # satisfaction, so (iii) degenerates to the new-trigger condition
        # checked in :meth:`_witness_checks_K`; EGD applicability stays the
        # same.
        if isinstance(self.r2, EGD):
            if h2[self.r2.lhs] is h2[self.r2.rhs]:
                return False
        elif self.step_variant != "oblivious":
            seed = {v: h2[v] for v in self.r2.frontier()}
            if find_homomorphism(self.r2.head, J, seed=seed, frozen_nulls=True):
                return False
        return True

    def _witness_checks_K(
        self, K: Instance, inst_body: list[Atom], h1: dict
    ) -> bool:
        """The conditions that read the *K* state."""
        # (i) via newness: some instantiated body atom must be absent from K
        # (otherwise (i) and (iii) cannot both hold; see module docstring).
        if all(a in K for a in inst_body):
            return False
        # (ii): the r1 step must be applicable on K.
        return self._step_applicable(K, h1)

    def _materialize(
        self,
        K: Instance,
        new_atoms: list[Atom],
        gamma: tuple[Term, Term] | None,
        h1: dict,
        h2: dict,
    ) -> Witness:
        """A witness holding instances detached from the enumeration state
        (the savepoint backend keeps mutating ``K`` after this returns)."""
        K_snap = K.copy() if self.snapshots == "savepoint" else K
        if gamma is None:
            J_snap = K_snap.copy()
            J_snap.add_all(new_atoms)
        else:
            J_snap = K_snap.apply({gamma[0]: gamma[1]})
        return Witness(K_snap, J_snap, dict(h1), dict(h2), self.orig_r1, self.orig_r2)

    def _check_witness(
        self, K: Instance, J: Instance, h1: dict, h2: dict
    ) -> Witness | None:
        """Conditions (i)-(iii) over already-materialised K and J (the
        defusal saturation loop re-checks its evolving witness this way)."""
        if not self.budget.charge():
            return None
        inst_body = [a.apply(h2) for a in self.r2.body]
        if not self._witness_checks_J(J, inst_body, h2):
            return None
        if not self._witness_checks_K(K, inst_body, h1):
            return None
        return Witness(K, J, dict(h1), dict(h2), self.orig_r1, self.orig_r2)

    def _step_applicable(self, K: Instance, h1: dict) -> bool:
        if isinstance(self.r1, EGD):
            t1, t2 = h1[self.r1.lhs], h1[self.r1.rhs]
            if t1 is t2:
                return False
            # A failing step (two constants) yields ⊥ which satisfies
            # everything, so it can never witness an edge; our freeze uses
            # nulls, keeping the step successful.
            return isinstance(t1, Null) or isinstance(t2, Null)
        if self.step_variant == "oblivious":
            return True  # the oblivious step fires regardless of satisfaction
        seed = {v: h1[v] for v in self.r1.frontier()}
        ext = find_homomorphism(self.r1.head, K, seed=seed, frozen_nulls=True)
        return ext is None

    # -- condition (iv): defusal -------------------------------------------------

    def _defusal(self, witness: Witness) -> Witness | None:
        """Return a (possibly saturated) surviving witness, or None.

        Full-TGD defusers are neutralised by adding their instantiated
        heads to K (mandatory — the only way to make them inapplicable);
        EGD defusers kill the witness (blocking them needs different
        variable merges, which the outer partition loop provides, or a
        flipped substitution direction, which we try here).
        """
        # The witness's instances are detached per-candidate state (see
        # :meth:`_materialize`), so the saturation loop may grow them in
        # place: on failure the witness is discarded, on success they back
        # the surviving witness.
        K, J = witness.K, witness.J
        h2 = witness.h2
        # Saturation adds full-TGD heads over a fixed term domain, so it is
        # finitely bounded; if the generous loop bound is ever hit we keep
        # the witness (over-approximating edges is the sound direction).
        for _ in range(64 + len(K) * 16):
            if not self.budget.charge():
                return None
            defuser = self._find_defuser(K, h2)
            if defuser is None:
                return Witness(K, J, witness.h1, h2, self.orig_r1, self.orig_r2)
            kind, r3, h3 = defuser
            if kind == "egd":
                return None
            # Neutralise the full TGD by satisfying it in K (and hence J).
            inst_head = [a.apply(h3) for a in r3.head]
            K.add_all(inst_head)
            J.add_all(inst_head)
            refreshed = self._check_witness(K, J, witness.h1, h2)
            if refreshed is None:
                return None
        return Witness(K, J, witness.h1, h2, self.orig_r1, self.orig_r2)

    def _find_defuser(self, K: Instance, h2: dict) -> tuple | None:
        """An applicable full-dependency step on K whose result satisfies
        h2(r2) — including vacuous satisfaction (Example 11)."""
        k_preds = K.predicates()
        for r3 in self.fulls:
            if any(a.predicate not in k_preds for a in r3.body):
                continue  # its body cannot map into K at all
            # Materialise the homomorphism list up front: the probes below
            # mutate K under a savepoint, which would invalidate a live
            # enumeration over its indexes.
            if isinstance(r3, TGD):
                for h3 in list(find_homomorphisms(r3.body, K, limit=None)):
                    if not self.budget.charge():
                        return None
                    inst_head = [a.apply(h3) for a in r3.head]
                    if all(a in K for a in inst_head):
                        continue  # not applicable (standard step)
                    with self._scratch(K) as Jp:
                        Jp.add_all(inst_head)
                        defused = satisfies_instantiated(Jp, self.r2, h2)
                    if defused:
                        return ("tgd", r3, h3)
            else:
                for h3 in list(find_homomorphisms(r3.body, K, limit=None)):
                    if not self.budget.charge():
                        return None
                    t1, t2 = h3[r3.lhs], h3[r3.rhs]
                    if t1 is t2:
                        continue
                    if isinstance(t1, Constant) and isinstance(t2, Constant):
                        return ("egd", r3, h3)  # ⊥ defuses by convention
                    # Definition 1 fixes the substitution direction from the
                    # null/constant labels of the images; our freeze labels
                    # are free, so the witness survives this hom if SOME
                    # realisable direction fails to defuse.  Direction
                    # choices are treated per-hom rather than via one global
                    # labelling — an over-approximation of survival, i.e. of
                    # edges, which is the sound direction for the criteria.
                    if self._all_directions_defuse(K, h2, t1, t2):
                        return ("egd", r3, h3)
        return None

    @staticmethod
    def _egd_directions(t1: Term, t2: Term) -> list[tuple[Term, Term]]:
        dirs = []
        if isinstance(t1, Null):
            dirs.append((t1, t2))
        if isinstance(t2, Null):
            dirs.append((t2, t1))
        return dirs

    def _all_directions_defuse(
        self, K: Instance, h2: dict, t1: Term, t2: Term
    ) -> bool:
        directions = self._egd_directions(t1, t2)
        if not directions:
            return True  # both constants: ⊥, defuses
        for old, new in directions:
            # ``old`` is a null (``_egd_directions`` guarantees it), so the
            # substitution is an in-place merge under the scratch scope.
            with self._scratch(K) as Jp:
                Jp.merge_terms(old, new)
                sat = satisfies_instantiated(Jp, self.r2, h2)
            if not sat:
                return False
        return True


# -- module-level conveniences -------------------------------------------------


def decide_precedes(
    r1: AnyDependency,
    r2: AnyDependency,
    step_variant: str = "standard",
    budget: Budget | int = DEFAULT_BUDGET,
    snapshots: str = "savepoint",
) -> FiringDecision:
    """Decide ``r1 ≺ r2`` (chase-graph edge)."""
    return WitnessEngine(r1, r2, (), step_variant, budget, snapshots).precedes()


def decide_fires(
    r1: AnyDependency,
    r2: AnyDependency,
    fulls: Iterable[AnyDependency],
    step_variant: str = "standard",
    budget: Budget | int = DEFAULT_BUDGET,
    snapshots: str = "savepoint",
) -> FiringDecision:
    """Decide ``r1 < r2`` (firing-graph edge) w.r.t. the full dependencies."""
    return WitnessEngine(
        r1, r2, tuple(fulls), step_variant, budget, snapshots
    ).fires()
