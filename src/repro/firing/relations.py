"""Cached oracles for the firing relations over a dependency set.

:class:`FiringOracle` answers ``r1 ≺ r2`` (chase graph) and ``r1 < r2``
(firing graph, Definition 2) for pairs from a dependency set, caching
decisions.  The ≺ decision depends only on the pair; the < decision also
depends on the set of full dependencies (condition (iv)), so its cache is
keyed accordingly — the adornment algorithm re-queries the oracle as its
adorned set grows.

Each pair decision runs under a fresh step budget of ``self.budget``
steps; fresh budgets are linked to the ambient budget of the enclosing
analysis scope (see :mod:`repro.budget`), so a criterion-level deadline
or cancellation stops the oracle mid-pair with a sound, inexact answer.

Several criteria interrogate the same pairs of the same Σ (Str and S-Str
share the standard-step relation; CStr, SR and IR all rebuild the
oblivious-step chase graph).  A :class:`DecisionCache` — owned by an
:class:`~repro.analysis.context.AnalysisContext`, or installed for a
dynamic scope with :func:`shared_firing_cache` as the classification
portfolio does — lets every oracle wired to it reuse decisions across
criteria.  The cache is **thread-safe and single-flight**: when two
criteria of a parallel portfolio race to the same undecided edge, one
runs the witness engine and the other blocks until the decision lands,
so a chase probe is never duplicated.  Only deterministic decisions are
stored: a decision truncated by a wall-clock deadline or a cancellation
is kept out so one criterion's exhaustion can never leak approximation
into another criterion's verdict.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterable, Iterator, Sequence

from ..budget import coerce_budget
from ..concurrency import SingleFlightCache
from ..model.dependencies import AnyDependency, DependencySet
from .witness import DEFAULT_BUDGET, FiringDecision, WitnessEngine


def _deterministic(decision: FiringDecision, engine: WitnessEngine) -> bool:
    """Safe for a shared cache: decided by the pair alone.

    A decision is reproducible iff it completed, or was truncated by the
    engine's *own* per-pair step allowance.  Truncation inherited from an
    enclosing budget (a criterion's deadline, total-step limit or
    cancellation) depends on how much that criterion had already spent,
    so caching it would leak one criterion's exhaustion into another's
    analysis.
    """
    exhausted = engine.budget.exhausted
    if exhausted is None:
        return True
    if exhausted.dimension not in ("steps", "facts"):
        return False
    parent = engine.budget.parent
    return parent is None or parent.exhausted is None


class DecisionCache(SingleFlightCache):
    """A thread-safe, single-flight store of deterministic firing decisions.

    ``decide(key, compute)`` returns the cached decision for ``key`` or
    elects exactly one caller per key as the *leader* that runs
    ``compute`` (the witness-engine probe); concurrent callers for the
    same key block until the leader finishes (the
    :class:`~repro.concurrency.SingleFlightCache` protocol).  ``compute``
    returns ``(decision, deterministic)`` — only deterministic decisions
    enter the cache, so a leader whose enclosing budget blew mid-probe
    leaves the key undecided and the next caller re-elects a leader under
    its own budget.

    Stats (``hits``/``misses``/``waits``) are updated under the lock and
    surfaced through :meth:`stats` for the ``--stats`` report and the CI
    bench summary.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0
        self.waits = 0
        self.preloaded = 0

    def _on_hit(self) -> None:
        self.hits += 1

    def _on_miss(self) -> None:
        self.misses += 1

    def _on_wait(self) -> None:
        self.waits += 1

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._values

    def decide(
        self,
        key: tuple,
        compute: Callable[[], tuple[FiringDecision, bool]],
    ) -> FiringDecision:
        return self._get_or_build(key, compute)

    def seed(self, key: tuple, decision: FiringDecision) -> None:
        """Install a decision computed elsewhere (the batch artifact
        store's warm-start path).  Seeded decisions must be deterministic
        — the caller vouches, the cache cannot re-check."""
        with self._lock:
            if key not in self._values:
                self._values[key] = decision
                self.preloaded += 1

    def snapshot(self) -> dict[tuple, FiringDecision]:
        """A point-in-time copy of the decided edges (for persistence)."""
        with self._lock:
            return dict(self._values)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._values),
                "hits": self.hits,
                "misses": self.misses,
                "waits": self.waits,
                "preloaded": self.preloaded,
                "hit_rate": self.hits / total if total else 0.0,
            }


_SHARED_CACHE: ContextVar[DecisionCache | None] = ContextVar(
    "repro_shared_firing_cache", default=None
)


def current_firing_cache() -> DecisionCache | None:
    """The decision cache installed for the current dynamic scope."""
    return _SHARED_CACHE.get()


@contextmanager
def shared_firing_cache(
    cache: DecisionCache | None = None,
) -> Iterator[DecisionCache]:
    """Install a decision cache shared by every oracle in the scope."""
    cache = DecisionCache() if cache is None else cache
    token = _SHARED_CACHE.set(cache)
    try:
        yield cache
    finally:
        _SHARED_CACHE.reset(token)


@contextmanager
def no_firing_cache() -> Iterator[None]:
    """Suppress any enclosing shared cache for the scope.

    The ``backend="isolated"`` reference path of the classification
    portfolio uses this so each criterion recomputes every probe — the
    recompute baseline the shared-context bench compares against.
    """
    token = _SHARED_CACHE.set(None)
    try:
        yield
    finally:
        _SHARED_CACHE.reset(token)


class FiringOracle:
    """Decides and caches firing-relation edges.

    ``decisions`` wires the oracle to an explicit :class:`DecisionCache`
    (the shared-context path); without one the oracle falls back to the
    scope cache installed by :func:`shared_firing_cache`, and without
    that it probes uncached.  The per-oracle dicts stay in front of the
    shared cache as a lock-free fast path, and ``ever_inexact`` is
    per-oracle so one consumer's truncated probes never flag another's
    verdict.
    """

    def __init__(
        self,
        sigma: DependencySet | Sequence[AnyDependency],
        step_variant: str = "standard",
        budget: int = DEFAULT_BUDGET,
        snapshots: str = "savepoint",
        decisions: DecisionCache | None = None,
    ) -> None:
        self.deps = list(sigma)
        self.step_variant = step_variant
        self.budget = budget
        # Witness-engine state-management backend.  Decisions are
        # byte-identical across backends (differential-tested), so the
        # shared-cache keys deliberately do not include it.
        self.snapshots = snapshots
        self._decisions = decisions
        self._precedes_cache: dict[tuple, FiringDecision] = {}
        self._fires_cache: dict[tuple, FiringDecision] = {}
        self.ever_inexact = False

    @property
    def fulls(self) -> list[AnyDependency]:
        return [d for d in self.deps if d.is_full]

    def _note(self, decision: FiringDecision) -> bool:
        if not decision.exact:
            self.ever_inexact = True
        return decision.edge

    def _shared(self) -> DecisionCache | None:
        if self._decisions is not None:
            return self._decisions
        return _SHARED_CACHE.get()

    def _probe(
        self, shared_key: tuple, build: Callable[[], WitnessEngine], method: str
    ) -> FiringDecision:
        shared = self._shared()
        if shared is None:
            engine = build()
            return getattr(engine, method)()

        def compute() -> tuple[FiringDecision, bool]:
            engine = build()
            decision = getattr(engine, method)()
            return decision, _deterministic(decision, engine)

        return shared.decide(shared_key, compute)

    def precedes(self, r1: AnyDependency, r2: AnyDependency) -> bool:
        """``r1 ≺ r2``."""
        key = (r1, r2)
        decision = self._precedes_cache.get(key)
        if decision is None:
            shared_key = ("precedes", r1, r2, self.step_variant, self.budget)
            decision = self._probe(
                shared_key,
                lambda: WitnessEngine(
                    r1, r2, (), self.step_variant,
                    coerce_budget(self.budget), self.snapshots,
                ),
                "precedes",
            )
            self._precedes_cache[key] = decision
        return self._note(decision)

    def fires(
        self,
        r1: AnyDependency,
        r2: AnyDependency,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """``r1 < r2`` w.r.t. the full dependencies (defaults to Σ∀)."""
        fulls = tuple(fulls) if fulls is not None else tuple(self.fulls)
        key = (r1, r2, frozenset(fulls))
        decision = self._fires_cache.get(key)
        if decision is None:
            shared_key = (
                "fires", r1, r2, frozenset(fulls), self.step_variant, self.budget,
            )
            decision = self._probe(
                shared_key,
                lambda: WitnessEngine(
                    r1, r2, fulls, self.step_variant,
                    coerce_budget(self.budget), self.snapshots,
                ),
                "fires",
            )
            self._fires_cache[key] = decision
        return self._note(decision)

    def fireable(
        self,
        r: AnyDependency,
        candidates: Iterable[AnyDependency] | None = None,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """Definition 2: r is fireable w.r.t. Σ iff some r2 ∈ Σ has r2 < r."""
        pool = list(candidates) if candidates is not None else self.deps
        for r2 in pool:
            if self.fires(r2, r, fulls=fulls):
                return True
        return False
