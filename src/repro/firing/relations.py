"""Cached oracles for the firing relations over a dependency set.

:class:`FiringOracle` answers ``r1 ≺ r2`` (chase graph) and ``r1 < r2``
(firing graph, Definition 2) for pairs from a dependency set, caching
decisions.  The ≺ decision depends only on the pair; the < decision also
depends on the set of full dependencies (condition (iv)), so its cache is
keyed accordingly — the adornment algorithm re-queries the oracle as its
adorned set grows.

Each pair decision runs under a fresh step budget of ``self.budget``
steps; fresh budgets are linked to the ambient budget of the enclosing
analysis scope (see :mod:`repro.budget`), so a criterion-level deadline
or cancellation stops the oracle mid-pair with a sound, inexact answer.

Several criteria interrogate the same pairs of the same Σ (Str and S-Str
share the standard-step relation; CStr, SR and IR all rebuild the
oblivious-step chase graph).  A *shared decision cache* — installed for a
dynamic scope with :func:`shared_firing_cache`, as the classification
portfolio does — lets every oracle in the scope reuse decisions across
criteria.  Only deterministic decisions enter the shared cache: a
decision truncated by a wall-clock deadline or a cancellation is kept out
so one criterion's exhaustion can never leak approximation into another
criterion's verdict.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator, Sequence

from ..budget import coerce_budget
from ..model.dependencies import AnyDependency, DependencySet
from .witness import DEFAULT_BUDGET, FiringDecision, WitnessEngine

_SHARED_CACHE: ContextVar[dict | None] = ContextVar(
    "repro_shared_firing_cache", default=None
)


@contextmanager
def shared_firing_cache(cache: dict | None = None) -> Iterator[dict]:
    """Install a decision cache shared by every oracle in the scope."""
    cache = {} if cache is None else cache
    token = _SHARED_CACHE.set(cache)
    try:
        yield cache
    finally:
        _SHARED_CACHE.reset(token)


def _deterministic(decision: FiringDecision, engine: WitnessEngine) -> bool:
    """Safe for the shared cache: decided by the pair alone.

    A decision is reproducible iff it completed, or was truncated by the
    engine's *own* per-pair step allowance.  Truncation inherited from an
    enclosing budget (a criterion's deadline, total-step limit or
    cancellation) depends on how much that criterion had already spent,
    so caching it would leak one criterion's exhaustion into another's
    analysis.
    """
    exhausted = engine.budget.exhausted
    if exhausted is None:
        return True
    if exhausted.dimension not in ("steps", "facts"):
        return False
    parent = engine.budget.parent
    return parent is None or parent.exhausted is None


class FiringOracle:
    """Decides and caches firing-relation edges."""

    def __init__(
        self,
        sigma: DependencySet | Sequence[AnyDependency],
        step_variant: str = "standard",
        budget: int = DEFAULT_BUDGET,
        snapshots: str = "savepoint",
    ) -> None:
        self.deps = list(sigma)
        self.step_variant = step_variant
        self.budget = budget
        # Witness-engine state-management backend.  Decisions are
        # byte-identical across backends (differential-tested), so the
        # shared-cache keys deliberately do not include it.
        self.snapshots = snapshots
        self._precedes_cache: dict[tuple, FiringDecision] = {}
        self._fires_cache: dict[tuple, FiringDecision] = {}
        self.ever_inexact = False

    @property
    def fulls(self) -> list[AnyDependency]:
        return [d for d in self.deps if d.is_full]

    def _note(self, decision: FiringDecision) -> bool:
        if not decision.exact:
            self.ever_inexact = True
        return decision.edge

    def precedes(self, r1: AnyDependency, r2: AnyDependency) -> bool:
        """``r1 ≺ r2``."""
        key = (r1, r2)
        decision = self._precedes_cache.get(key)
        if decision is None:
            shared = _SHARED_CACHE.get()
            shared_key = ("precedes", r1, r2, self.step_variant, self.budget)
            decision = shared.get(shared_key) if shared is not None else None
            if decision is None:
                engine = WitnessEngine(
                    r1, r2, (), self.step_variant,
                    coerce_budget(self.budget), self.snapshots,
                )
                decision = engine.precedes()
                if shared is not None and _deterministic(decision, engine):
                    shared[shared_key] = decision
            self._precedes_cache[key] = decision
        return self._note(decision)

    def fires(
        self,
        r1: AnyDependency,
        r2: AnyDependency,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """``r1 < r2`` w.r.t. the full dependencies (defaults to Σ∀)."""
        fulls = tuple(fulls) if fulls is not None else tuple(self.fulls)
        key = (r1, r2, frozenset(fulls))
        decision = self._fires_cache.get(key)
        if decision is None:
            shared = _SHARED_CACHE.get()
            shared_key = (
                "fires", r1, r2, frozenset(fulls), self.step_variant, self.budget,
            )
            decision = shared.get(shared_key) if shared is not None else None
            if decision is None:
                engine = WitnessEngine(
                    r1, r2, fulls, self.step_variant,
                    coerce_budget(self.budget), self.snapshots,
                )
                decision = engine.fires()
                if shared is not None and _deterministic(decision, engine):
                    shared[shared_key] = decision
            self._fires_cache[key] = decision
        return self._note(decision)

    def fireable(
        self,
        r: AnyDependency,
        candidates: Iterable[AnyDependency] | None = None,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """Definition 2: r is fireable w.r.t. Σ iff some r2 ∈ Σ has r2 < r."""
        pool = list(candidates) if candidates is not None else self.deps
        for r2 in pool:
            if self.fires(r2, r, fulls=fulls):
                return True
        return False
