"""Cached oracles for the firing relations over a dependency set.

:class:`FiringOracle` answers ``r1 ≺ r2`` (chase graph) and ``r1 < r2``
(firing graph, Definition 2) for pairs from a dependency set, caching
decisions.  The ≺ decision depends only on the pair; the < decision also
depends on the set of full dependencies (condition (iv)), so its cache is
keyed accordingly — the adornment algorithm re-queries the oracle as its
adorned set grows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..model.dependencies import AnyDependency, DependencySet
from .witness import DEFAULT_BUDGET, FiringDecision, WitnessEngine


class FiringOracle:
    """Decides and caches firing-relation edges."""

    def __init__(
        self,
        sigma: DependencySet | Sequence[AnyDependency],
        step_variant: str = "standard",
        budget: int = DEFAULT_BUDGET,
    ) -> None:
        self.deps = list(sigma)
        self.step_variant = step_variant
        self.budget = budget
        self._precedes_cache: dict[tuple, FiringDecision] = {}
        self._fires_cache: dict[tuple, FiringDecision] = {}
        self.ever_inexact = False

    @property
    def fulls(self) -> list[AnyDependency]:
        return [d for d in self.deps if d.is_full]

    def precedes(self, r1: AnyDependency, r2: AnyDependency) -> bool:
        """``r1 ≺ r2``."""
        key = (r1, r2)
        decision = self._precedes_cache.get(key)
        if decision is None:
            engine = WitnessEngine(r1, r2, (), self.step_variant, self.budget)
            decision = engine.precedes()
            self._precedes_cache[key] = decision
        if not decision.exact:
            self.ever_inexact = True
        return decision.edge

    def fires(
        self,
        r1: AnyDependency,
        r2: AnyDependency,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """``r1 < r2`` w.r.t. the full dependencies (defaults to Σ∀)."""
        fulls = tuple(fulls) if fulls is not None else tuple(self.fulls)
        key = (r1, r2, frozenset(fulls))
        decision = self._fires_cache.get(key)
        if decision is None:
            engine = WitnessEngine(r1, r2, fulls, self.step_variant, self.budget)
            decision = engine.fires()
            self._fires_cache[key] = decision
        if not decision.exact:
            self.ever_inexact = True
        return decision.edge

    def fireable(
        self,
        r: AnyDependency,
        candidates: Iterable[AnyDependency] | None = None,
        fulls: Iterable[AnyDependency] | None = None,
    ) -> bool:
        """Definition 2: r is fireable w.r.t. Σ iff some r2 ∈ Σ has r2 < r."""
        pool = list(candidates) if candidates is not None else self.deps
        for r2 in pool:
            if self.fires(r2, r, fulls=fulls):
                return True
        return False
