"""The chase graph G(Σ) and the firing graph Gf(Σ) (paper Section 5).

* ``G(Σ)`` has an edge (r1, r2) iff ``r1 ≺ r2``  — used by stratification;
* ``Gf(Σ)`` has an edge (r1, r2) iff ``r1 < r2`` — used by
  semi-stratification (Definition 2); its edges are a subset of G(Σ)'s
  because the firing relation adds the full-dependency defusal condition
  for existentially quantified targets.

Figure 1 of the paper shows both graphs for Σ11; the Figure 1 bench and
tests pin those edge sets.
"""

from __future__ import annotations

import networkx as nx

from ..model.dependencies import AnyDependency, DependencySet
from .relations import FiringOracle


def chase_graph(
    sigma: DependencySet, oracle: FiringOracle | None = None
) -> nx.DiGraph:
    """Build G(Σ)."""
    oracle = oracle or FiringOracle(sigma)
    g = nx.DiGraph()
    g.add_nodes_from(sigma)
    for r1 in sigma:
        for r2 in sigma:
            if oracle.precedes(r1, r2):
                g.add_edge(r1, r2)
    return g


def firing_graph(
    sigma: DependencySet, oracle: FiringOracle | None = None
) -> nx.DiGraph:
    """Build Gf(Σ)."""
    oracle = oracle or FiringOracle(sigma)
    fulls = tuple(d for d in sigma if d.is_full)
    g = nx.DiGraph()
    g.add_nodes_from(sigma)
    for r1 in sigma:
        for r2 in sigma:
            if oracle.fires(r1, r2, fulls=fulls):
                g.add_edge(r1, r2)
    return g


def oblivious_chase_graph(
    sigma: DependencySet,
    budget: int | None = None,
    oracle: FiringOracle | None = None,
) -> nx.DiGraph:
    """The chase graph computed with oblivious chase steps (used by
    c-stratification).  Pass (and keep) an ``oracle`` to observe whether
    any edge decision was inexact (``oracle.ever_inexact``)."""
    if oracle is None:
        kwargs = {"budget": budget} if budget is not None else {}
        oracle = FiringOracle(sigma, step_variant="oblivious", **kwargs)
    return chase_graph(sigma, oracle)


def edge_labels(graph: nx.DiGraph) -> set[tuple[str, str]]:
    """Edges as (label, label) pairs — convenient for tests and display."""
    return {
        (u.label or str(u), v.label or str(v)) for u, v in graph.edges()
    }


def render_graph(graph: nx.DiGraph, title: str) -> str:
    """A small ASCII rendering used by the Figure 1 bench."""
    lines = [title, "-" * len(title)]
    for node in sorted(graph.nodes(), key=lambda d: d.label or str(d)):
        name = node.label or str(node)
        succs = sorted(
            (s.label or str(s)) for s in graph.successors(node)
        )
        arrow = " -> " + ", ".join(succs) if succs else "   (no outgoing edges)"
        lines.append(f"  {name}{arrow}")
    return "\n".join(lines)


def to_dot(graph: nx.DiGraph, name: str = "G") -> str:
    """Render a chase/firing graph as Graphviz DOT."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes(), key=lambda d: d.label or str(d)):
        label = node.label or str(node)
        shape = "ellipse" if node.is_existential else "box"
        lines.append(f'  "{label}" [shape={shape}];')
    for u, v in sorted(
        graph.edges(), key=lambda e: (e[0].label or "", e[1].label or "")
    ):
        lines.append(f'  "{u.label or u}" -> "{v.label or v}";')
    lines.append("}")
    return "\n".join(lines)
