"""Firing relations (≺ and <), chase graph, and firing graph."""

from .graphs import (
    chase_graph,
    edge_labels,
    firing_graph,
    oblivious_chase_graph,
    render_graph,
)
from .relations import (
    DecisionCache,
    FiringOracle,
    current_firing_cache,
    no_firing_cache,
    shared_firing_cache,
)
from .witness import (
    DEFAULT_BUDGET,
    FiringDecision,
    Witness,
    WitnessEngine,
    decide_fires,
    decide_precedes,
)

__all__ = [
    "chase_graph",
    "edge_labels",
    "firing_graph",
    "oblivious_chase_graph",
    "render_graph",
    "DecisionCache",
    "FiringOracle",
    "current_firing_cache",
    "no_firing_cache",
    "shared_firing_cache",
    "DEFAULT_BUDGET",
    "FiringDecision",
    "Witness",
    "WitnessEngine",
    "decide_fires",
    "decide_precedes",
]
