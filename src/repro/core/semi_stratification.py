"""Semi-stratification (paper Section 5, Definitions 2–3).

Σ is *semi-stratified* (S-Str) iff every strongly connected component of
the firing graph ``Gf(Σ)`` is weakly acyclic.  The firing graph refines
the chase graph: an edge into an existentially quantified dependency is
dropped when some full dependency can "defuse" the trigger first
(Definition 2's fourth condition) — this is how the EGD ``r3`` of
Example 1 and the symmetric rule ``r3`` of Example 11 break the cycles
that stratification cannot.

Guarantees (Theorem 3): for every semi-stratified Σ and every database D
there is a terminating standard chase sequence, of length polynomial in
``|D|`` — i.e. S-Str ⊆ CTstd∃.  Str ⊊ S-Str and S-Str is incomparable
with SC, AC and MFA (Theorem 5).
"""

from __future__ import annotations

import networkx as nx

from ..criteria.base import Guarantee, TerminationCriterion, register
from ..criteria.weak_acyclicity import is_weakly_acyclic
from ..firing.graphs import firing_graph
from ..firing.relations import FiringOracle
from ..model.dependencies import DependencySet


def _is_cyclic_component(graph: nx.DiGraph, scc: set) -> bool:
    """Does the SCC actually contain a cycle (size > 1, or a self-loop)?

    Cycle-free dependencies are exempt from the weak-acyclicity check, as
    in stratification's "every cycle" phrasing — otherwise a single
    existential dependency nothing can fire would already disqualify Σ
    and S-Str would not even contain Str (contradicting Theorem 5.1).
    """
    if len(scc) > 1:
        return True
    node = next(iter(scc))
    return graph.has_edge(node, node)


def semi_stratification_components(
    sigma: DependencySet, oracle: FiringOracle | None = None
) -> list[tuple[DependencySet, bool, bool]]:
    """The SCCs of Gf(Σ) as (component, contains-cycle, weakly-acyclic)."""
    oracle = oracle or FiringOracle(sigma)
    graph = firing_graph(sigma, oracle)
    out = []
    for scc in nx.strongly_connected_components(graph):
        component = sigma.restricted_to(scc)
        cyclic = _is_cyclic_component(graph, scc)
        out.append((component, cyclic, is_weakly_acyclic(component)))
    return out


def is_semi_stratified(sigma: DependencySet) -> bool:
    """Definition 3 (cycle-containing components must be weakly acyclic)."""
    return all(
        ok for _, cyclic, ok in semi_stratification_components(sigma) if cyclic
    )


@register
class SemiStratification(TerminationCriterion):
    """S-Str: every SCC of the firing graph is weakly acyclic."""

    name = "S-Str"
    guarantee = Guarantee.CT_EXISTS

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        graph, oracle_exact = ctx.firing_graph()
        bad = 0
        components = 0
        for scc in ctx.firing_sccs():
            components += 1
            if not _is_cyclic_component(graph, scc):
                continue
            if not is_weakly_acyclic(sigma.restricted_to(scc)):
                bad += 1
        details = {
            "firing_graph_edges": graph.number_of_edges(),
            "components": components,
            "non_wa_components": bad,
        }
        return bad == 0, oracle_exact, details
