"""The Adn∃ adornment algorithm (paper Section 6, Algorithm 1 + Function 2).

Adn∃ rewrites Σ into a set Σµ of *adorned* dependencies that tracks which
facts a chase execution can derive and how their terms are produced:

* adornment symbols: ``b`` (bound — a constant of the database) and
  ``f_i`` (free — a labelled null introduced by a specific Skolem term);
* every ``f_i`` carries *adornment definitions* ``f_i = f^r_z(α)``
  recording the rule ``r``, existential variable ``z`` and argument
  adornments ``α`` that produce it;
* full dependencies are adorned before existential ones, and adorned EGDs
  are *executed* over the abstract database ``Dµ(Σµ)`` (``b`` behaves as a
  constant, the ``f_i`` as nulls): an EGD chase step yields a substitution
  ``τ = {f_i/s}`` applied to Σµ and AD — this is the paper's direct
  analysis of EGDs, the step every earlier criterion lacks;
* new adorned dependencies must be **fireable** w.r.t. Σµ (some adorned
  dependency ``<``-fires them — Definition 2), embedding the
  semi-stratification analysis;
* whenever a new adorned dependency equals an existing one up to a *valid*
  substitution θ (same-Skolem-function symbols only), θ is applied
  globally; if the merged head is *cyclic* w.r.t. the definition graph
  Ω(AD), a potential non-termination is detected and ``Acyc`` flips to
  false.

Ω(AD) has an edge ``f_i → f_j`` labelled ``f^r_z`` iff AD contains
``f_i = f^r_z(… f_j …)`` and ``f_j = f^s_w(…)`` with ``r, s ∈ Σ∃`` and
there is a firing chain ``s < r_1 < … < r_n < r`` through full
dependencies (n ≥ 0) — decided lazily with the firing oracle over the
*original* Σ.  A symbol is cyclic if some walk from it repeats an edge
label; an adorned head is cyclic if an existential position carries a
cyclic symbol.

The module also implements the TGD-only **AC** rewriting mode (no EGD
execution, no fireability filter, label-nesting edges without the firing
chain condition), the rewriting-based criterion of Greco–Spezzano–
Trubitsyna that semi-acyclicity strictly extends (Theorem 9).

Outputs mirror the paper's ``Adn∃(Σ) = ⟨Σµ, Acyc⟩``: :class:`AdnResult`
carries the adorned set (bridge dependencies ``R(x̄) → R^{b…b}(x̄)``
included, as in Algorithm 1 line 2), the boolean, the definitions, and
run statistics.
"""

from __future__ import annotations

import itertools
import re
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

from ..budget import Budget, BudgetExhausted, coerce_budget
from ..firing.relations import FiringOracle
from ..homomorphism.finder import find_homomorphisms
from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.instances import Instance
from ..model.terms import Constant, Null, Term, Variable

# -- adornment symbols --------------------------------------------------------

BOUND = "b"
Symbol = Union[str, int]  # BOUND or an int i standing for f_i
Adornment = tuple[Symbol, ...]

_ADN_RE = re.compile(r"b|f(\d+)")


def symbol_str(sym: Symbol) -> str:
    """``b`` or ``f<i>`` — the paper's rendering of adornment symbols."""
    return "b" if sym == BOUND else f"f{sym}"


def encode_predicate(base: str, adornment: Adornment) -> str:
    """``R`` + adornment → ``R^bf1`` (the adorned predicate's name)."""
    return base + "^" + "".join(symbol_str(s) for s in adornment)


def decode_predicate(name: str) -> tuple[str, Adornment] | None:
    """Inverse of :func:`encode_predicate`; None for unadorned predicates."""
    if "^" not in name:
        return None
    base, _, suffix = name.partition("^")
    adn: list[Symbol] = []
    pos = 0
    # repro-lint: disable=budget-loop -- pos strictly advances to len(suffix); pure string decode, no chase work
    while pos < len(suffix):
        m = _ADN_RE.match(suffix, pos)
        if m is None:
            return None
        adn.append(BOUND if m.group() == "b" else int(m.group(1)))
        pos = m.end()
    return base, tuple(adn)


def _sym_key(sym: Symbol) -> tuple[int, int]:
    return (0, 0) if sym == BOUND else (1, sym)  # type: ignore[return-value]


# -- adornment definitions -------------------------------------------------------


@dataclass(frozen=True)
class AdornmentDefinition:
    """``f_i = f^r_z(α)``."""

    symbol: int
    rule: TGD
    z: Variable
    args: Adornment

    def substitute(self, mapping: dict[int, Symbol]) -> "AdornmentDefinition":
        sym = mapping.get(self.symbol, self.symbol)
        if not isinstance(sym, int):
            raise ValueError("a definition's own symbol cannot become bound")
        args = tuple(
            mapping.get(a, a) if isinstance(a, int) else a for a in self.args
        )
        return AdornmentDefinition(sym, self.rule, self.z, args)

    def __str__(self) -> str:
        inner = "".join(symbol_str(a) for a in self.args)
        label = self.rule.label or "r?"
        return f"f{self.symbol} = f^{label}_{self.z.name}({inner})"


# -- adorned dependency records -----------------------------------------------------


@dataclass(frozen=True)
class AdornedRecord:
    """One element of Σµ: an adorned dependency and its source."""

    dep: AnyDependency          # predicates encoded with adornments
    src: AnyDependency | None   # None for the bridge dependencies of line 2

    @property
    def is_bridge(self) -> bool:
        return self.src is None

    def body_key(self) -> tuple:
        return tuple(a.predicate for a in self.dep.body)


def _apply_symbols_to_dep(
    dep: AnyDependency, mapping: dict[int, Symbol]
) -> AnyDependency:
    """Rename adornment symbols inside a dependency's encoded predicates."""

    def rename(atom: Atom) -> Atom:
        decoded = decode_predicate(atom.predicate)
        if decoded is None:
            return atom
        base, adn = decoded
        new_adn = tuple(
            mapping.get(s, s) if isinstance(s, int) else s for s in adn
        )
        if new_adn == adn:
            return atom
        return Atom(encode_predicate(base, new_adn), atom.args)

    if isinstance(dep, TGD):
        return TGD(
            [rename(a) for a in dep.body],
            [rename(a) for a in dep.head],
            existential=dep.existential,
            label=dep.label,
        )
    return EGD([rename(a) for a in dep.body], dep.lhs, dep.rhs, label=dep.label)


def strip_adornments_dep(dep: AnyDependency) -> AnyDependency:
    """``src``: delete all adornments from a dependency."""

    def strip(atom: Atom) -> Atom:
        decoded = decode_predicate(atom.predicate)
        if decoded is None:
            return atom
        return Atom(decoded[0], atom.args)

    if isinstance(dep, TGD):
        return TGD(
            [strip(a) for a in dep.body],
            [strip(a) for a in dep.head],
            existential=dep.existential,
            label=dep.label,
        )
    return EGD([strip(a) for a in dep.body], dep.lhs, dep.rhs, label=dep.label)


def strip_adornments_instance(instance: Instance) -> Instance:
    """``src`` on instances: drop adornments from every fact's predicate."""
    out = Instance()
    for fact in instance:
        decoded = decode_predicate(fact.predicate)
        out.add(fact if decoded is None else Atom(decoded[0], fact.args))
    return out


# -- result -----------------------------------------------------------------------


@dataclass
class AdnResult:
    """``Adn∃(Σ) = ⟨Σµ, Acyc⟩`` plus diagnostics.

    ``exact=False`` means the saturation was cut short — by the resource
    budget, by the livelock detector, or by the symbol/record caps — and
    ``acyclic=False`` is then the conservative verdict, not the
    algorithm's fixpoint answer.  ``exhausted`` records which budget
    dimension blew (None when a livelock or cap stopped the run; the
    ``stats["stopped"]`` entry distinguishes those).
    """

    adorned: DependencySet
    acyclic: bool
    definitions: list[AdornmentDefinition]
    records: list[AdornedRecord] = field(default_factory=list)
    exact: bool = True
    exhausted: BudgetExhausted | None = None
    stats: dict = field(default_factory=dict)

    def __iter__(self):  # unpack like the paper's pair
        yield self.adorned
        yield self.acyclic

    def __getitem__(self, i: int):
        return (self.adorned, self.acyclic)[i]


# -- the algorithm ------------------------------------------------------------------

#: Default per-run budget: total step charges (driver iterations, candidate
#: bodies, Dµ homomorphisms, witness-engine work funded through the
#: oracles) and a wall-clock backstop for divergence shapes no counter
#: anticipates.  The livelock detector usually fires long before either.
DEFAULT_ADN_STEPS = 5_000_000
DEFAULT_ADN_MS = 10_000.0


class AdornmentAlgorithm:
    """One run of Adn∃ (or the AC rewriting when ``mode="ac"``).

    Saturation is bounded three ways, every one of them a graceful
    verdict (``exact=False``), never a hang:

    * a **livelock detector**: the driver state (records + definitions)
      is fingerprinted each iteration with free symbols canonically
      renumbered; since the driver is deterministic and all its decisions
      are invariant under monotone renamings of the free symbols, a
      repeated fingerprint proves the run cycles forever (the historical
      `adn_exists` divergence: an EGD chase step keeps merging away the
      symbols the adornment step keeps re-minting, so the state repeats
      up to ever-growing symbol numbers and no size cap ever fires);
    * a :class:`~repro.budget.Budget` (steps + wall clock, linked to the
      ambient analysis budget) charged in the driver loop, the candidate
      body enumeration, the Dµ EGD chase step and — through the firing
      oracles — the witness engine;
    * the legacy ``max_records``/``max_symbol`` size caps.
    """

    def __init__(
        self,
        sigma: DependencySet,
        mode: str = "adn_exists",
        firing_budget: int = 60_000,
        max_records: int | None = None,
        max_symbol: int = 5_000,
        budget: Budget | None = None,
    ) -> None:
        if mode not in ("adn_exists", "ac"):
            raise ValueError(f"unknown adornment mode {mode!r}")
        if mode == "ac" and sigma.egds:
            raise ValueError("AC mode is TGD-only; simulate EGDs first")
        self.sigma = sigma
        self.mode = mode
        self.records: list[AdornedRecord] = []
        self.definitions: list[AdornmentDefinition] = []
        self.acyclic = True
        self.exact = True
        self.stopped: str | None = None  # "livelock" | "max_symbol" | ...
        self.max_records = max_records or max(2_000, 60 * max(len(sigma), 1))
        self.max_symbol = max_symbol
        if budget is None:
            budget = coerce_budget(None)  # fresh, linked to the ambient scope
            budget.max_steps = DEFAULT_ADN_STEPS
            budget.max_ms = DEFAULT_ADN_MS
        self.budget = budget
        # Oracle over Σµ (fireability of adorned dependencies).
        self._mu_oracle = FiringOracle((), budget=firing_budget)
        # Oracle over Σ (firing chains for Ω(AD) cyclicity).
        self._sigma_oracle = FiringOracle(sigma, budget=firing_budget)
        self._chain_cache: dict[tuple, bool] = {}
        self._src_index = {d: i for i, d in enumerate(sigma)}
        self._charge_backlog = 0

    # -- driver ---------------------------------------------------------------

    def run(self) -> AdnResult:
        from ..budget import budget_scope

        with budget_scope(self.budget):
            return self._run()

    def _run(self) -> AdnResult:
        start = time.perf_counter()
        self._init_bridges()
        iterations = 0
        seen_states: set[tuple] = set()
        seen_counts: set[tuple[int, int]] = set()
        while True:
            iterations += 1
            if not self.budget.charge():
                self.stopped = "budget"
                break
            if self.stopped is not None:  # set mid-iteration (max_symbol)
                break
            if len(self.records) > self.max_records:
                self.stopped = "max_records"
                break
            # Livelock check, gated on a repeated count signature: a
            # cycling run revisits the same (records, definitions) sizes
            # forever, while a growing run almost never does — so the
            # O(|records|) fingerprint stays off the common path.
            counts = (len(self.records), len(self.definitions))
            if counts in seen_counts:
                state = self._state_fingerprint()
                if state in seen_states:
                    self.stopped = "livelock"
                    break
                seen_states.add(state)
            else:
                seen_counts.add(counts)
            added = self._adorn_one(self.sigma.full)
            if added is not None:
                rec, _ = added
                if isinstance(rec.src, EGD) and self.mode == "adn_exists":
                    self._egd_chase_step(rec.src)
                self._merge_step(self._current_version(rec))
                continue
            added = self._adorn_one(self.sigma.existential)
            if added is not None:
                rec, _ = added
                self._merge_step(self._current_version(rec))
                continue
            if not self.budget.ok:
                # The enumeration was cut short, not genuinely drained.
                self.stopped = "budget"
            break
        if self.stopped is not None:
            # Every stop is a truncated saturation: the conservative verdict
            # is "potentially non-terminating", flagged approximate.
            self.acyclic = False
            self.exact = False
        elapsed = (time.perf_counter() - start) * 1000.0
        deps = DependencySet(r.dep for r in self.records)
        return AdnResult(
            adorned=deps,
            acyclic=self.acyclic,
            definitions=list(self.definitions),
            records=list(self.records),
            exact=self.exact,
            exhausted=self.budget.exhausted,
            stats={
                "iterations": iterations,
                "size_sigma": len(self.sigma),
                "size_adorned": len(deps),
                "elapsed_ms": elapsed,
                "mode": self.mode,
                "stopped": self.stopped,
                "budget_steps": self.budget.steps,
            },
        )

    def _charge_batched(self, n: int = 1) -> bool:
        """Budget charge for the hot enumeration loops.

        ``Budget.charge`` walks the parent chain on every call, which the
        Table 2(b) bench showed costing double-digit percent when done
        per candidate body / per Dµ homomorphism.  Work is accumulated
        locally and flushed every 32 units; between flushes the cheap
        ``exact`` flag still stops the loop promptly once the budget is
        known-blown.
        """
        self._charge_backlog += n
        if self._charge_backlog < 32:
            return self.budget.exact
        pending, self._charge_backlog = self._charge_backlog, 0
        return self.budget.charge(pending)

    # -- livelock detection ----------------------------------------------------

    def _state_fingerprint(self) -> tuple:
        """The driver state with free symbols canonically renumbered.

        The renumbering maps the sorted distinct symbols to ``1..n`` —
        a *monotone* bijection, so every order-sensitive driver decision
        (adornment pools sort by symbol value) behaves identically on the
        renumbered state.  The driver being deterministic, a repeated
        fingerprint therefore proves the run will repeat it forever.

        A record is keyed by its source plus ``(base predicate, renamed
        adornment)`` per atom — that determines the adorned dependency
        (its atom arguments come verbatim from the source), and the base
        names keep the per-predicate bridges (which all share
        ``src=None``) apart.  The fingerprint is pure tuples: this runs
        every driver iteration, so it must not build dependency objects.
        """
        syms: set[int] = set()
        rec_atoms: list[tuple[int, list[tuple[str, Adornment]]]] = []
        for rec in self.records:
            atoms: tuple[Atom, ...] = rec.dep.body
            if isinstance(rec.dep, TGD):
                atoms = atoms + rec.dep.head
            decoded_atoms = []
            for a in atoms:
                decoded = decode_predicate(a.predicate)
                if decoded is None:
                    decoded_atoms.append((a.predicate, ()))
                    continue
                decoded_atoms.append(decoded)
                syms.update(s for s in decoded[1] if isinstance(s, int))
            src = -1 if rec.src is None else self._src_index[rec.src]
            rec_atoms.append((src, decoded_atoms))
        for d in self.definitions:
            syms.add(d.symbol)
            syms.update(a for a in d.args if isinstance(a, int))
        ren = {s: i + 1 for i, s in enumerate(sorted(syms))}

        def renamed(adn: Adornment) -> tuple:
            return tuple(ren[s] if isinstance(s, int) else s for s in adn)

        recs = tuple(
            (src, tuple((base, renamed(adn)) for base, adn in decoded_atoms))
            for src, decoded_atoms in rec_atoms
        )
        defs = tuple(
            (ren[d.symbol], self._src_index[d.rule], d.z.name, renamed(d.args))
            for d in self.definitions
        )
        return (self.acyclic, recs, defs)

    # -- line 2: bridge dependencies -----------------------------------------------

    def _init_bridges(self) -> None:
        for pred, arity in sorted(self.sigma.predicates().items()):
            args = [Variable(f"x{i + 1}") for i in range(arity)]
            bridge = TGD(
                [Atom(pred, args)],
                [Atom(encode_predicate(pred, (BOUND,) * arity), args)],
                label=f"base_{pred}",
            )
            self._add_record(AdornedRecord(bridge, None))

    def _add_record(self, rec: AdornedRecord) -> bool:
        if any(r.dep == rec.dep and r.src == rec.src for r in self.records):
            return False
        self.records.append(rec)
        return True

    def _current_version(self, rec: AdornedRecord) -> AdornedRecord:
        """Track a record through τ-rewrites (same src, latest dep)."""
        for r in reversed(self.records):
            if r.src == rec.src and r.dep == rec.dep:
                return r
        # The dep got rewritten; the most recent record of the same source
        # is the rewritten form.
        for r in reversed(self.records):
            if r.src == rec.src:
                return r
        return rec

    # -- adorned predicate pool ----------------------------------------------------

    def _adorned_predicates(self) -> dict[str, list[Adornment]]:
        pool: dict[str, set[Adornment]] = {}
        for rec in self.records:
            atoms: tuple[Atom, ...] = rec.dep.body
            if isinstance(rec.dep, TGD):
                atoms = atoms + rec.dep.head
            for a in atoms:
                decoded = decode_predicate(a.predicate)
                if decoded is not None:
                    pool.setdefault(decoded[0], set()).add(decoded[1])
        return {
            base: sorted(adns, key=lambda adn: tuple(_sym_key(s) for s in adn))
            for base, adns in pool.items()
        }

    def _body_keys(self, src: AnyDependency) -> set[tuple]:
        return {r.body_key() for r in self.records if r.src == src}

    # -- Function 2: adorn -------------------------------------------------------------

    def _adorn_one(
        self, candidates: Sequence[AnyDependency]
    ) -> tuple[AdornedRecord, list[AdornmentDefinition]] | None:
        pool = self._adorned_predicates()
        for r in candidates:
            got = self._adorn(r, pool)
            if got is not None:
                return got
        return None

    def _adorn(
        self, r: AnyDependency, pool: dict[str, list[Adornment]]
    ) -> tuple[AdornedRecord, list[AdornmentDefinition]] | None:
        seen_bodies = self._body_keys(r)
        for bodyµ, var_syms in self._coherent_bodies(r, pool):
            key = tuple(a.predicate for a in bodyµ)
            if key in seen_bodies:
                continue
            new_defs: list[AdornmentDefinition] = []
            headµ = self._head_adorn(r, var_syms, new_defs)
            dep = self._build_adorned(r, bodyµ, headµ)
            rec = AdornedRecord(dep, r)
            if self.mode == "adn_exists" and not self._fireable(dep):
                continue
            # Commit: tentative definitions become real.
            self.definitions.extend(new_defs)
            self._add_record(rec)
            return rec, new_defs
        return None

    def _coherent_bodies(
        self, r: AnyDependency, pool: dict[str, list[Adornment]]
    ) -> Iterator[tuple[list[Atom], dict[Variable, Symbol]]]:
        """All coherent adorned versions of Body(r), deterministic order."""
        atoms = list(r.body)

        def rec(
            idx: int, acc: list[Atom], binding: dict[Variable, Symbol]
        ) -> Iterator[tuple[list[Atom], dict[Variable, Symbol]]]:
            if idx == len(atoms):
                yield list(acc), dict(binding)
                return
            atom = atoms[idx]
            for adn in pool.get(atom.predicate, []):
                if not self._charge_batched():
                    return  # run() reports the truncation
                new_binding = dict(binding)
                ok = True
                for t, s in zip(atom.args, adn):
                    if isinstance(t, Constant):
                        if s != BOUND:
                            ok = False
                            break
                    else:
                        bound = new_binding.get(t)  # type: ignore[arg-type]
                        if bound is None:
                            new_binding[t] = s  # type: ignore[index]
                        elif bound != s:
                            ok = False
                            break
                if not ok:
                    continue
                acc.append(Atom(encode_predicate(atom.predicate, adn), atom.args))
                yield from rec(idx + 1, acc, new_binding)
                acc.pop()

        yield from rec(0, [], {})

    def _head_adorn(
        self,
        r: AnyDependency,
        var_syms: dict[Variable, Symbol],
        new_defs: list[AdornmentDefinition],
    ) -> list[Atom] | None:
        """HeadAdn: propagate body adornments into the head (TGDs only)."""
        if isinstance(r, EGD):
            return None
        ex_syms: dict[Variable, Symbol] = {}
        frontier = sorted(r.frontier(), key=lambda v: v.name)
        alpha: Adornment = tuple(var_syms[x] for x in frontier)
        for z in r.existential:
            sym = self._lookup_or_create(r, z, alpha, new_defs)
            ex_syms[z] = sym
        adorned_head = []
        for atom in r.head:
            adn: list[Symbol] = []
            for t in atom.args:
                if isinstance(t, Constant):
                    adn.append(BOUND)
                elif t in ex_syms:
                    adn.append(ex_syms[t])  # type: ignore[index]
                else:
                    adn.append(var_syms[t])  # type: ignore[index]
            adorned_head.append(
                Atom(encode_predicate(atom.predicate, tuple(adn)), atom.args)
            )
        return adorned_head

    def _lookup_or_create(
        self,
        r: TGD,
        z: Variable,
        alpha: Adornment,
        new_defs: list[AdornmentDefinition],
    ) -> int:
        for d in itertools.chain(self.definitions, new_defs):
            if d.rule == r and d.z == z and d.args == alpha:
                return d.symbol
        nxt = self._next_symbol(new_defs)
        new_defs.append(AdornmentDefinition(nxt, r, z, alpha))
        return nxt

    def _next_symbol(self, pending: list[AdornmentDefinition]) -> int:
        highest = 0
        for d in itertools.chain(self.definitions, pending):
            highest = max(highest, d.symbol)
            highest = max(
                (a for a in d.args if isinstance(a, int)), default=highest
            )
        for rec in self.records:
            atoms: tuple[Atom, ...] = rec.dep.body
            if isinstance(rec.dep, TGD):
                atoms = atoms + rec.dep.head
            for a in atoms:
                decoded = decode_predicate(a.predicate)
                if decoded:
                    highest = max(
                        (s for s in decoded[1] if isinstance(s, int)),
                        default=highest,
                    )
        if highest + 1 > self.max_symbol:
            self.stopped = "max_symbol"  # run() breaks at the next iteration
        return highest + 1

    def _build_adorned(
        self, r: AnyDependency, bodyµ: list[Atom], headµ: list[Atom] | None
    ) -> AnyDependency:
        if isinstance(r, EGD):
            return EGD(bodyµ, r.lhs, r.rhs, label=r.label)
        assert headµ is not None
        return TGD(bodyµ, headµ, existential=r.existential, label=r.label)

    # -- fireability (Definition 2 via the witness engine) -----------------------------

    def _fireable(self, dep: AnyDependency) -> bool:
        mu_deps = [rec.dep for rec in self.records]
        fulls = [d for d in mu_deps if d.is_full]
        if dep.is_full:
            fulls = fulls + [dep]
        body_preds = {a.predicate for a in dep.body}
        for s in mu_deps:
            if isinstance(s, TGD):
                if not body_preds & {a.predicate for a in s.head}:
                    continue
            if self._mu_oracle.fires(s, dep, fulls=fulls):
                return True
        return False

    # -- lines 8-10: EGD chase step over Dµ(Σµ) ------------------------------------------

    def d_mu(self) -> Instance:
        """``Dµ(Σµ)``: one fact per adorned predicate; b is a constant, the
        free symbols are labelled nulls."""
        inst = Instance()
        for base, adns in self._adorned_predicates().items():
            for adn in adns:
                args = [
                    Constant(BOUND) if s == BOUND else Null(s)  # type: ignore[arg-type]
                    for s in adn
                ]
                inst.add(Atom(base, args))
        return inst

    def _egd_chase_step(self, egd: EGD) -> None:
        d_mu = self.d_mu()
        body = [self._constants_to_b(a) for a in egd.body]
        best: tuple | None = None
        for h in find_homomorphisms(body, d_mu, limit=None):
            if not self._charge_batched():
                break  # apply the best substitution found so far, if any
            t1, t2 = h[egd.lhs], h[egd.rhs]
            if t1 is t2:
                continue
            key = (str(t1), str(t2))
            if best is None or key < best[0]:
                best = (key, t1, t2)
        if best is None:
            return
        _, t1, t2 = best
        # Definition 1 direction: the null (free) side is replaced.
        if isinstance(t1, Null):
            old, new = t1, t2
        else:
            old, new = t2, t1
        new_sym: Symbol = BOUND if isinstance(new, Constant) else new.label
        self._apply_symbol_substitution({old.label: new_sym}, drop_defs_of=old.label)

    @staticmethod
    def _constants_to_b(atom: Atom) -> Atom:
        args = [
            Constant(BOUND) if isinstance(t, Constant) else t for t in atom.args
        ]
        return Atom(atom.predicate, args)

    def _apply_symbol_substitution(
        self, mapping: dict[int, Symbol], drop_defs_of: int | None = None
    ) -> None:
        new_records: list[AdornedRecord] = []
        for rec in self.records:
            dep = _apply_symbols_to_dep(rec.dep, mapping)
            candidate = AdornedRecord(dep, rec.src)
            if not any(
                r.dep == candidate.dep and r.src == candidate.src
                for r in new_records
            ):
                new_records.append(candidate)
        self.records = new_records
        new_defs: list[AdornmentDefinition] = []
        for d in self.definitions:
            if drop_defs_of is not None and d.symbol == drop_defs_of:
                continue
            if d.symbol in mapping and not isinstance(
                mapping[d.symbol], int
            ):
                continue  # its symbol became bound: definition disappears
            nd = d.substitute(mapping)
            if nd not in new_defs:
                new_defs.append(nd)
        self.definitions = new_defs

    # -- lines 13-16: θ merge and cyclicity ------------------------------------------------

    def _merge_step(self, rec: AdornedRecord) -> None:
        if rec.src is None:
            return
        theta = self._find_valid_theta(rec)
        if theta is None:
            return
        self._apply_symbol_substitution(theta)  # θ maps free → free only
        # The paper's Definition of a cyclic head covers only existential
        # head positions, but its own Example 13 flips Acyc on an EGD
        # (whose head carries no adornments at all).  We therefore check
        # every free symbol occurring in rµθ — existential head positions
        # included — which matches the example and errs on the sound side.
        syms = self._merged_symbols(rec, theta)
        if any(self._is_cyclic_symbol(s) for s in syms):
            self.acyclic = False

    def _find_valid_theta(self, rec: AdornedRecord) -> dict[int, int] | None:
        my_adns = self._dep_adornments(rec.dep)
        for other in self.records:
            if other is rec or other.src != rec.src:
                continue
            theta = self._match_adornments(my_adns, self._dep_adornments(other.dep))
            if theta is None or not theta:
                continue
            if any(v in theta for v in theta.values()):
                continue  # fi/fj with fj/fk forbidden
            if not all(self._theta_pair_valid(a, b) for a, b in theta.items()):
                continue
            if _apply_symbols_to_dep(rec.dep, dict(theta)) == other.dep:
                return dict(theta)
        return None

    @staticmethod
    def _dep_adornments(dep: AnyDependency) -> list[Adornment]:
        atoms: tuple[Atom, ...] = dep.body
        if isinstance(dep, TGD):
            atoms = atoms + dep.head
        out = []
        for a in atoms:
            decoded = decode_predicate(a.predicate)
            out.append(decoded[1] if decoded else ())
        return out

    @staticmethod
    def _match_adornments(
        mine: list[Adornment], theirs: list[Adornment]
    ) -> dict[int, int] | None:
        if len(mine) != len(theirs):
            return None
        theta: dict[int, int] = {}
        for a, b in zip(mine, theirs):
            if len(a) != len(b):
                return None
            for s, t in zip(a, b):
                if s == t:
                    continue
                if not isinstance(s, int) or not isinstance(t, int):
                    return None  # substitutions map free symbols only
                bound = theta.get(s)
                if bound is None:
                    theta[s] = t
                elif bound != t:
                    return None
        return theta

    def _theta_pair_valid(self, fi: int, fj: int) -> bool:
        """Valid substitutions: both symbols defined by the same f^r_z."""
        defs_i = [(d.rule, d.z) for d in self.definitions if d.symbol == fi]
        defs_j = {(d.rule, d.z) for d in self.definitions if d.symbol == fj}
        return any(key in defs_j for key in defs_i)

    def _merged_symbols(
        self, rec: AdornedRecord, theta: dict[int, int]
    ) -> set[int]:
        """All free symbols occurring in rµθ (see _merge_step's comment)."""
        out: set[int] = set()
        atoms: tuple[Atom, ...] = rec.dep.body
        if isinstance(rec.dep, TGD):
            atoms = atoms + rec.dep.head
        for atom in atoms:
            decoded = decode_predicate(atom.predicate)
            if decoded is None:
                continue
            for s in decoded[1]:
                if isinstance(s, int):
                    out.add(theta.get(s, s))
        return out

    # -- Ω(AD) and cyclic symbols -----------------------------------------------------------

    def _omega_edges(self) -> list[tuple[int, int, tuple]]:
        """Edges (fi, fj, label) of Ω(AD)."""
        defined = {d.symbol for d in self.definitions}
        edges = []
        for d in self.definitions:
            for arg in d.args:
                if not isinstance(arg, int) or arg not in defined:
                    continue
                for d2 in self.definitions:
                    if d2.symbol != arg:
                        continue
                    if self.mode == "ac" or self._chain(d2.rule, d.rule):
                        edges.append((d.symbol, arg, (d.rule, d.z)))
                        break
        return edges

    def _chain(self, s: TGD, r: TGD) -> bool:
        """∃ r1..rn ∈ Σ∀ (n ≥ 0) with s < r1 < … < rn < r, over Σ."""
        key = (s, r)
        cached = self._chain_cache.get(key)
        if cached is not None:
            return cached
        fulls = self.sigma.full
        # BFS from s through full intermediates.
        frontier: list[AnyDependency] = [s]
        visited: set[AnyDependency] = set()
        found = False
        # repro-lint: disable=budget-loop -- BFS over the finite full-TGD set; visited guard enqueues each dependency at most once
        while frontier and not found:
            node = frontier.pop()
            if self._sigma_oracle.fires(node, r, fulls=fulls):
                found = True
                break
            for mid in fulls:
                if mid in visited:
                    continue
                if self._sigma_oracle.fires(node, mid, fulls=fulls):
                    visited.add(mid)
                    frontier.append(mid)
        self._chain_cache[key] = found
        return found

    def _is_cyclic_symbol(self, start: int) -> bool:
        """A walk from ``start`` in Ω(AD) using two same-labelled edges."""
        edges = self._omega_edges()
        if not edges:
            return False
        adj: dict[int, list[tuple[int, tuple]]] = {}
        for u, v, label in edges:
            adj.setdefault(u, []).append((v, label))
        reach: set[int] = set()
        stack = [start]
        # repro-lint: disable=budget-loop -- reachability walk over the finite Ω(AD) graph; reach guard pushes each node once
        while stack:
            node = stack.pop()
            for v, _ in adj.get(node, []):
                if v not in reach:
                    reach.add(v)
                    stack.append(v)
        reach.add(start)
        by_label: dict[tuple, list[tuple[int, int]]] = {}
        for u, v, label in edges:
            if u in reach:
                by_label.setdefault(label, []).append((u, v))
        for label, label_edges in by_label.items():
            for (u1, v1) in label_edges:
                for (u2, v2) in label_edges:
                    if (u1, v1) == (u2, v2):
                        # One edge used twice needs a cycle back to its tail.
                        if self._reaches(adj, v1, u1):
                            return True
                    elif self._reaches(adj, v1, u2):
                        return True
        return False

    @staticmethod
    def _reaches(adj: dict, src: int, dst: int) -> bool:
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        # repro-lint: disable=budget-loop -- reachability walk over the finite Ω(AD) graph; seen guard pushes each node once
        while stack:
            node = stack.pop()
            for v, _ in adj.get(node, []):
                if v == dst:
                    return True
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return False


def adn_exists(sigma: DependencySet, **kwargs) -> AdnResult:
    """Run Algorithm 1 (Adn∃) on Σ."""
    return AdornmentAlgorithm(sigma, mode="adn_exists", **kwargs).run()


def ac_rewriting(sigma: DependencySet, **kwargs) -> AdnResult:
    """The TGD-only AC adornment rewriting (EGDs must be simulated away)."""
    return AdornmentAlgorithm(sigma, mode="ac", **kwargs).run()
