"""Adn∃-C: combining the adornment algorithm with other criteria
(paper Section 6, Theorems 10 and 11).

Σ ∈ Adn∃-C iff ``Adn∃(Σ)[1]`` — the adorned set Σµ — is recognised by
criterion C.  Theorem 10: Σ ∈ Adn∃-C implies Σ ∈ CTstd∃ (even when C is a
CTstd∀ criterion: the adorned set's termination transfers only to the
existence of a terminating sequence of Σ).  Theorem 11: C ⊊ Adn∃-C for
every criterion C — preprocessing with Adn∃ strictly enlarges what C
recognises, because the adorned set has the same or weaker structural
properties than Σ.
"""

from __future__ import annotations

from ..criteria.base import (
    CriterionResult,
    Guarantee,
    TerminationCriterion,
    get_criterion,
)
from ..model.dependencies import DependencySet
from .adornment import AdnResult, adn_exists


class AdnCombined(TerminationCriterion):
    """The criterion Adn∃-C for a given inner criterion C."""

    guarantee = Guarantee.CT_EXISTS

    def __init__(self, inner: TerminationCriterion | str, **adn_kwargs) -> None:
        if isinstance(inner, str):
            inner = get_criterion(inner)
        self.inner = inner
        self.name = f"Adn-{inner.name}"
        self._adn_kwargs = adn_kwargs
        self.last_result: AdnResult | None = None

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        # As in SemiAcyclicity: only the default-knob Adn∃ run is the
        # context's memoized artifact.
        if self._adn_kwargs:
            result = adn_exists(sigma, **self._adn_kwargs)
        else:
            result = ctx.adn_result()
        self.last_result = result
        details: dict = {
            "size_adorned": result.stats["size_adorned"],
            "adn_exact": result.exact,
        }
        if not result.exact:
            # Σµ is a truncation (budget/livelock stop): C accepting the
            # truncated set proves nothing about Σ — reject, approximate.
            return False, False, details
        inner_result = self.inner.check(result.adorned)
        details["inner"] = inner_result.criterion
        details["inner_accepted"] = inner_result.accepted
        return inner_result.accepted, inner_result.exact, details


def adn_combined_check(
    sigma: DependencySet, criterion: TerminationCriterion | str, **adn_kwargs
) -> CriterionResult:
    """One-shot Adn∃-C check."""
    return AdnCombined(criterion, **adn_kwargs).check(sigma)
