"""The paper's contributions: semi-stratification, the Adn∃ adornment
algorithm, semi-acyclicity, and the Adn∃-C combination."""

from .adornment import (
    BOUND,
    AdnResult,
    AdornedRecord,
    AdornmentAlgorithm,
    AdornmentDefinition,
    ac_rewriting,
    adn_exists,
    decode_predicate,
    encode_predicate,
    strip_adornments_dep,
    strip_adornments_instance,
)
from .combined import AdnCombined, adn_combined_check
from .semi_acyclicity import SemiAcyclicity, is_semi_acyclic
from .semi_stratification import (
    SemiStratification,
    is_semi_stratified,
    semi_stratification_components,
)

__all__ = [
    "BOUND",
    "AdnResult",
    "AdornedRecord",
    "AdornmentAlgorithm",
    "AdornmentDefinition",
    "ac_rewriting",
    "adn_exists",
    "decode_predicate",
    "encode_predicate",
    "strip_adornments_dep",
    "strip_adornments_instance",
    "AdnCombined",
    "adn_combined_check",
    "SemiAcyclicity",
    "is_semi_acyclic",
    "SemiStratification",
    "is_semi_stratified",
    "semi_stratification_components",
]
