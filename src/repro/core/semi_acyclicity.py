"""Semi-acyclicity (paper Definition 4).

Σ is *semi-acyclic* (SAC) iff ``Adn∃(Σ)[2]`` is true — the adornment
algorithm completes without detecting a cyclic adorned head.

Guarantees (Theorem 8): every semi-acyclic Σ admits, for every database D,
a terminating standard chase sequence of length polynomial in ``|D|``
(SAC ⊆ CTstd∃).  Expressivity (Theorem 9): S-Str ⊊ SAC and AC ⊊ SAC.
"""

from __future__ import annotations

from ..criteria.base import Guarantee, TerminationCriterion, register
from ..model.dependencies import DependencySet
from .adornment import AdnResult, adn_exists


def is_semi_acyclic(sigma: DependencySet, **kwargs) -> bool:
    """Definition 4: the boolean returned by Adn∃."""
    return adn_exists(sigma, **kwargs).acyclic


@register
class SemiAcyclicity(TerminationCriterion):
    """SAC: Adn∃ detects no cyclic adornment."""

    name = "SAC"
    guarantee = Guarantee.CT_EXISTS

    def __init__(self, **adn_kwargs) -> None:
        self._adn_kwargs = adn_kwargs
        self.last_result: AdnResult | None = None

    def _accepts(self, sigma: DependencySet, ctx) -> tuple[bool, bool, dict]:
        # Non-default Adn∃ knobs produce a different artifact than the
        # context's memoized default-knob run, so they bypass it.
        if self._adn_kwargs:
            result = adn_exists(sigma, **self._adn_kwargs)
        else:
            result = ctx.adn_result()
        self.last_result = result
        details = dict(result.stats)
        details["adorned_ratio"] = (
            result.stats["size_adorned"] / max(1, len(sigma))
        )
        return result.acyclic, result.exact, details
