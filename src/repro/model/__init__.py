"""Relational model substrate: terms, atoms, dependencies, instances, parser."""

from .atoms import (
    Atom,
    Position,
    apply_mapping,
    atoms_constants,
    atoms_nulls,
    atoms_terms,
    atoms_variables,
)
from .columnar import ColumnarInstance
from .dependencies import EGD, TGD, AnyDependency, Dependency, DependencySet, dependency_set
from .instances import (
    InconsistencyError,
    Instance,
    Savepoint,
    database,
    instance_from_tuples,
)
from .parser import (
    ParseError,
    parse_dependencies,
    parse_dependency,
    parse_facts,
    to_text,
)
from .schema import Schema
from .terms import (
    Constant,
    GroundTerm,
    Null,
    NullFactory,
    Term,
    Variable,
    constants,
    fresh_null,
    variables,
)

__all__ = [
    "Atom",
    "Position",
    "apply_mapping",
    "atoms_constants",
    "atoms_nulls",
    "atoms_terms",
    "atoms_variables",
    "EGD",
    "TGD",
    "AnyDependency",
    "Dependency",
    "DependencySet",
    "dependency_set",
    "ColumnarInstance",
    "InconsistencyError",
    "Instance",
    "Savepoint",
    "database",
    "instance_from_tuples",
    "ParseError",
    "parse_dependencies",
    "parse_dependency",
    "parse_facts",
    "to_text",
    "Schema",
    "Constant",
    "GroundTerm",
    "Null",
    "NullFactory",
    "Term",
    "Variable",
    "constants",
    "fresh_null",
    "variables",
]
