"""Vectorised row-filter kernels for the columnar store (DESIGN.md §11).

The columnar executor (:func:`repro.matching.plans._codegen_columnar`)
runs its generated loop nests over :class:`~.columnar.ColumnarInstance`'s
typed flat buffers: ``array('q')`` tid columns and candidate row-id
cells, plus the ``bytearray`` live-row bitmap.  Those buffers expose the
buffer protocol, so when numpy is importable the kernels wrap them
**zero-copy** (``np.frombuffer``) and evaluate the live-bit test and the
per-position equality checks as whole-array operations; without numpy
the same kernels run as plain int loops.  The selection happens once at
import:

* ``REPRO_COLUMNAR_KERNELS=auto``   (default) — numpy if importable,
  pure Python otherwise;
* ``REPRO_COLUMNAR_KERNELS=python`` — force the pure-Python kernels
  (this is how the numpy-absent differential leg runs on machines that
  do have numpy installed);
* ``REPRO_COLUMNAR_KERNELS=numpy``  — require numpy (ImportError if
  missing; CI's numpy leg uses it so a broken install fails loudly).

numpy is an *optional accelerator*, never a dependency: every caller
must behave identically under both implementations, and the kernel
differential tests in ``tests/test_columnar.py`` hold the two against
each other on random inputs.

Vectorisation only pays above a pool-size threshold: boxing each
surviving row id back into a Python int costs more than a small scalar
loop, so the generated code consults :data:`MIN_VECTOR_ROWS` at run time
and keeps small pools on its inline scalar path.
"""

from __future__ import annotations

import os
from typing import Sequence

_MODE = os.environ.get("REPRO_COLUMNAR_KERNELS", "auto")
if _MODE not in ("auto", "numpy", "python"):
    raise ValueError(
        f"REPRO_COLUMNAR_KERNELS={_MODE!r} not understood; "
        "known: auto, numpy, python"
    )

_np = None
if _MODE != "python":
    try:
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:
        if _MODE == "numpy":
            raise
        _np = None

#: True when the numpy fast path is active.  The plan code generator
#: consults this once per generated executor: with the pure-Python
#: kernels there is no pool size at which a kernel call beats the inline
#: scalar loop, so no vectorised branch is emitted at all.
VECTORISED = _np is not None

#: Candidate pools smaller than this stay on the generated scalar loop
#: even when numpy is active (per-row boxing + fixed call overhead beat
#: the vector win on tiny cells; measured crossover is ~40-80 rows).
MIN_VECTOR_ROWS = 64


def describe() -> str:
    """One-line kernel-selection report for logs and CI summaries."""
    if _np is not None:
        return f"numpy {_np.__version__} (mode={_MODE})"
    return f"pure-python (mode={_MODE})"


def filter_rows_python(
    pool: Sequence[int],
    live: bytearray,
    eqs: tuple,
    pairs: tuple,
) -> list[int]:
    """The portable kernel: rows of ``pool`` that are live and pass every
    check.

    ``eqs``   — ``((column, value), ...)`` equality checks; a ``None``
    value means the probed term does not occur in the instance at all, so
    nothing can match.
    ``pairs`` — ``((col_a, col_b), ...)`` within-atom repeated-term
    checks.
    """
    for _col, v in eqs:
        if v is None:
            return []
    out = []
    for w in pool:
        if not live[w]:
            continue
        ok = True
        for col, v in eqs:
            if col[w] != v:
                ok = False
                break
        if ok:
            for ca, cb in pairs:
                if ca[w] != cb[w]:
                    ok = False
                    break
        if ok:
            out.append(w)
    return out


def filter_rows_numpy(
    pool: Sequence[int],
    live: bytearray,
    eqs: tuple,
    pairs: tuple,
) -> list[int]:
    """:func:`filter_rows_python` as whole-array numpy operations.

    ``pool`` and the columns are ``array('q')`` buffers and ``live`` is a
    ``bytearray``; ``np.frombuffer`` views them zero-copy, so the only
    per-row Python cost is boxing the survivors on the way out.
    """
    for _col, v in eqs:
        if v is None:
            return []
    idx = _np.frombuffer(pool, dtype=_np.int64, count=len(pool))
    mask = _np.frombuffer(live, dtype=_np.uint8, count=len(live))[idx] != 0
    for col, v in eqs:
        mask &= _np.frombuffer(col, dtype=_np.int64, count=len(col))[idx] == v
    for ca, cb in pairs:
        a = _np.frombuffer(ca, dtype=_np.int64, count=len(ca))[idx]
        b = _np.frombuffer(cb, dtype=_np.int64, count=len(cb))[idx]
        mask &= a == b
    return idx[mask].tolist()


#: The active kernel.  Generated executors bind the *module* and call
#: ``filter_rows`` through it, so tests can monkeypatch the attribute to
#: drive both implementations through identical generated code.
filter_rows = filter_rows_numpy if _np is not None else filter_rows_python
