"""Schemas: finite sets of predicates with arities.

Most of the library infers the schema from a dependency set or an instance,
but the adornment algorithm needs the schema explicitly (its initial Σµ
contains one bridge dependency ``R(x1..xn) → R^{b..b}(x1..xn)`` per predicate
R ∈ R), so a first-class representation is provided.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .dependencies import DependencySet
from .instances import Instance


class Schema:
    """An immutable mapping of predicate names to arities."""

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]) -> None:
        for name, ar in arities.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"bad predicate name {name!r}")
            if not isinstance(ar, int) or ar < 0:
                raise ValueError(f"bad arity {ar!r} for predicate {name}")
        object.__setattr__(self, "_arities", dict(arities))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Schema is immutable")

    @classmethod
    def from_dependencies(cls, sigma: DependencySet) -> "Schema":
        return cls(sigma.predicates())

    @classmethod
    def from_instance(cls, inst: Instance) -> "Schema":
        arities: dict[str, int] = {}
        for fact in inst:
            known = arities.get(fact.predicate)
            if known is None:
                arities[fact.predicate] = fact.arity
            elif known != fact.arity:
                raise ValueError(
                    f"predicate {fact.predicate} used with arities "
                    f"{known} and {fact.arity}"
                )
        return cls(arities)

    @classmethod
    def union(cls, *schemas: "Schema") -> "Schema":
        merged: dict[str, int] = {}
        for s in schemas:
            for name, ar in s._arities.items():
                known = merged.get(name)
                if known is None:
                    merged[name] = ar
                elif known != ar:
                    raise ValueError(
                        f"predicate {name} has conflicting arities {known} and {ar}"
                    )
        return cls(merged)

    def arity(self, predicate: str) -> int:
        return self._arities[predicate]

    def __contains__(self, predicate: object) -> bool:
        return predicate in self._arities

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._arities))

    def __len__(self) -> int:
        return len(self._arities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._arities == other._arities

    def __hash__(self) -> int:
        return hash(frozenset(self._arities.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}/{a}" for p, a in sorted(self._arities.items()))
        return f"Schema({inner})"

    def items(self) -> Iterable[tuple[str, int]]:
        return sorted(self._arities.items())
