"""A compact textual syntax for dependencies, dependency sets, and facts.

Grammar (informal)::

    program     := (line)*
    line        := [label ':'] dependency | comment | blank
    dependency  := conjunction '->' rhs
    rhs         := [existentials] conjunction          # TGD
                 | term '=' term                        # EGD
    existentials:= ('exists' | '∃') var (',' var)* '.'
    conjunction := atom (('&' | ',' | '∧' | 'and') atom)*
    atom        := IDENT '(' term (',' term)* ')'
    term        := IDENT                 # variable
                 | '"' chars '"'         # constant (string)
                 | "'" chars "'"         # constant (string)
                 | NUMBER                # constant (int)

Unquoted identifiers are **variables**; constants must be quoted or numeric.
``->`` and ``→`` are interchangeable, as are the conjunction spellings.
Lines starting with ``#`` or ``%`` are comments.  Example::

    r1: N(x) -> exists y. E(x, y)
    r2: E(x, y) -> N(y)
    r3: E(x, y) -> x = y

Facts use the same atom syntax but all arguments must be constants (or, for
instances, nulls written ``_1``, ``_2``...).
"""

from __future__ import annotations

import re
from typing import Iterator

from .atoms import Atom
from .dependencies import EGD, TGD, AnyDependency, DependencySet
from .instances import Instance
from .terms import Constant, Null, Term, Variable


class ParseError(ValueError):
    """Raised on malformed dependency/fact text, with position info."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__(f"{message} (line {line}, column {col})")
        self.line = line
        self.column = col


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[#%][^\n]*)
  | (?P<arrow>->|→)
  | (?P<exists>exists\b|∃)
  | (?P<and>and\b|&|∧|,)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<dot>\.)
  | (?P<colon>:)
  | (?P<eq>=)
  | (?P<dquote>"(?:[^"\\]|\\.)*")
  | (?P<squote>'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+)
  | (?P<null>_\d+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = m.lastgroup or ""
        if kind not in ("ws", "comment"):
            yield _Token(kind, m.group(), m.start())
        pos = m.end()
    yield _Token("eof", "", n)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = list(_tokenize(text))
        self.i = 0

    # -- token helpers ----------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.i]

    def advance(self) -> _Token:
        tok = self.tokens[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def expect(self, kind: str) -> _Token:
        if self.cur.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.cur.value!r}", self.text, self.cur.pos
            )
        return self.advance()

    def accept(self, kind: str) -> _Token | None:
        if self.cur.kind == kind:
            return self.advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse_term(self, allow_nulls: bool = False) -> Term:
        tok = self.cur
        if tok.kind == "ident":
            self.advance()
            return Variable(tok.value)
        if tok.kind in ("dquote", "squote"):
            self.advance()
            raw = tok.value[1:-1]
            return Constant(re.sub(r"\\(.)", r"\1", raw))
        if tok.kind == "number":
            self.advance()
            return Constant(int(tok.value))
        if tok.kind == "null":
            if not allow_nulls:
                raise ParseError("nulls are not allowed here", self.text, tok.pos)
            self.advance()
            return Null(int(tok.value[1:]))
        raise ParseError(f"expected a term, found {tok.value!r}", self.text, tok.pos)

    def parse_atom(self, allow_nulls: bool = False) -> Atom:
        name = self.expect("ident").value
        self.expect("lpar")
        args = [self.parse_term(allow_nulls)]
        while self.accept("and"):  # ',' tokenizes as 'and'
            args.append(self.parse_term(allow_nulls))
        self.expect("rpar")
        return Atom(name, args)

    def parse_conjunction(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self.cur.kind == "and":
            self.advance()
            atoms.append(self.parse_atom())
        return atoms

    def parse_dependency(self) -> AnyDependency:
        label = ""
        if (
            self.cur.kind == "ident"
            and self.i + 1 < len(self.tokens)
            and self.tokens[self.i + 1].kind == "colon"
        ):
            label = self.advance().value
            self.advance()  # ':'
        body = self.parse_conjunction()
        self.expect("arrow")
        if self.accept("exists"):
            ex_vars = [self._parse_variable()]
            while self.accept("and"):
                ex_vars.append(self._parse_variable())
            # Support both "exists y. H" and "exists y exists z. H" styles.
            while self.accept("exists"):
                ex_vars.append(self._parse_variable())
                while self.accept("and"):
                    ex_vars.append(self._parse_variable())
            self.accept("dot")
            head = self.parse_conjunction()
            return TGD(body, head, existential=ex_vars, label=label)
        # TGD without existentials, or EGD: decide by lookahead after the
        # first term-ish token.  An EGD right-hand side is `term = term`.
        if (
            self.cur.kind == "ident"
            and self.i + 1 < len(self.tokens)
            and self.tokens[self.i + 1].kind == "eq"
        ):
            lhs = self.parse_term()
            self.expect("eq")
            rhs = self.parse_term()
            if not isinstance(lhs, Variable) or not isinstance(rhs, Variable):
                raise ParseError(
                    "EGD equality sides must be variables", self.text, self.cur.pos
                )
            return EGD(body, lhs, rhs, label=label)
        head = self.parse_conjunction()
        return TGD(body, head, label=label)

    def _parse_variable(self) -> Variable:
        tok = self.expect("ident")
        return Variable(tok.value)

    def parse_program(self) -> DependencySet:
        out = DependencySet()
        while self.cur.kind != "eof":
            out.add(self.parse_dependency())
        return out

    def parse_facts(self) -> Instance:
        inst = Instance()
        while self.cur.kind != "eof":
            atom = self.parse_atom(allow_nulls=True)
            if not atom.is_fact:
                raise ParseError(
                    f"fact {atom} contains variables; quote constants",
                    self.text,
                    self.cur.pos,
                )
            inst.add(atom)
        return inst


def parse_dependency(text: str) -> AnyDependency:
    """Parse a single dependency, e.g. ``"E(x,y) -> x = y"``."""
    parser = _Parser(text)
    dep = parser.parse_dependency()
    if parser.cur.kind != "eof":
        raise ParseError("trailing input after dependency", text, parser.cur.pos)
    return dep


def parse_dependencies(text: str) -> DependencySet:
    """Parse a whole dependency program (one dependency per statement)."""
    return _Parser(text).parse_program()


def parse_facts(text: str) -> Instance:
    """Parse facts like ``N("a") E("a", "b") P(_1)`` into an instance."""
    return _Parser(text).parse_facts()


def to_text(sigma: DependencySet) -> str:
    """Render a dependency set back to parseable text."""
    lines = []
    for d in sigma:
        prefix = f"{d.label}: " if d.label else ""
        lines.append(prefix + _dep_to_text(d))
    return "\n".join(lines)


def _dep_to_text(dep: AnyDependency) -> str:
    body = " & ".join(_atom_to_text(a) for a in dep.body)
    if isinstance(dep, EGD):
        return f"{body} -> {dep.lhs.name} = {dep.rhs.name}"
    head = " & ".join(_atom_to_text(a) for a in dep.head)
    if dep.existential:
        ex = ", ".join(v.name for v in dep.existential)
        return f"{body} -> exists {ex}. {head}"
    return f"{body} -> {head}"


def _atom_to_text(atom: Atom) -> str:
    parts = []
    for t in atom.args:
        if isinstance(t, Variable):
            parts.append(t.name)
        elif isinstance(t, Constant):
            if isinstance(t.value, int):
                parts.append(str(t.value))
            else:
                escaped = str(t.value).replace("\\", "\\\\").replace('"', '\\"')
                parts.append(f'"{escaped}"')
        elif isinstance(t, Null):
            parts.append(f"_{t.label}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot render term {t!r}")
    return f"{atom.predicate}({', '.join(parts)})"
