"""Terms of the relational model: constants, labelled nulls, and variables.

The paper (Section 2) assumes three pairwise disjoint infinite sets of
symbols: ``Consts`` (constants), ``Nulls`` (labelled nulls), and ``Vars``
(variables).  A *term* is an element of any of the three sets.

All term classes here are immutable, hashable and interned: constructing the
same term twice yields the same object, so identity comparison is safe and
sets/dicts over terms are fast.  Interning matters because the chase engine
and the homomorphism finder handle millions of term lookups on larger
workloads.

Besides object identity, every interned term carries a **term id**
(:attr:`Term.tid`): a process-local small int allocated once per distinct
term, shared across all term kinds (constants, nulls, variables, and the
Skolem terms of :mod:`repro.chase.skolem`).  Hot structures key on the id
instead of the object — the instance's ``(predicate, position)`` buckets,
the compiled matcher plans' probes (:mod:`repro.matching.plans`), the
runner's fired-trigger keys — so their dict operations hash small ints
rather than objects, and a compiled plan can burn a term's id into a
probe at compile time.  Term ids are *process-local and allocation-order
dependent*: they must never reach a persisted artefact (fingerprints,
JSONL records, cursors) — see DESIGN.md §9.
"""

from __future__ import annotations

import itertools
import threading
from typing import Union

#: The shared term-id allocator.  ``next()`` on an ``itertools.count`` is
#: atomic under the GIL, so allocation needs no lock of its own; the
#: per-class intern locks already serialise the assignment to each term.
_TID_COUNTER = itertools.count(1)


def next_term_id() -> int:
    """Allocate a fresh term id (for :class:`Term` subclasses' interners)."""
    return next(_TID_COUNTER)


class Term:
    """Abstract base class for constants, labelled nulls, and variables.

    Every concrete term carries a process-local ``tid`` small int assigned
    at intern time (see the module docstring).
    """

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_null(self) -> bool:
        return isinstance(self, Null)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)


class Constant(Term):
    """A constant from ``Consts``.

    Constants are identified by their ``value`` (any hashable Python object;
    strings and integers in practice).  Homomorphisms fix constants:
    ``h(c) = c``.
    """

    __slots__ = ("value", "tid", "__weakref__")

    _intern: dict[object, "Constant"] = {}
    _lock = threading.Lock()

    def __new__(cls, value: object) -> "Constant":
        cached = cls._intern.get(value)
        if cached is not None:
            return cached
        with cls._lock:
            cached = cls._intern.get(value)
            if cached is None:
                cached = super().__new__(cls)
                object.__setattr__(cached, "value", value)
                object.__setattr__(cached, "tid", next_term_id())
                cls._intern[value] = cached
        return cached

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return f'"{self.value}"' if isinstance(self.value, str) else str(self.value)

    def __reduce__(self):
        return (Constant, (self.value,))

    # Interning makes default identity-based __eq__/__hash__ correct.


class Null(Term):
    """A labelled null from ``Nulls``.

    Nulls are identified by an integer label.  Fresh nulls are produced by
    :func:`fresh_null`; the chase uses them as the witnesses for
    existentially quantified variables.
    """

    __slots__ = ("label", "tid", "__weakref__")

    _intern: dict[int, "Null"] = {}
    _lock = threading.Lock()

    def __new__(cls, label: int) -> "Null":
        cached = cls._intern.get(label)
        if cached is not None:
            return cached
        with cls._lock:
            cached = cls._intern.get(label)
            if cached is None:
                cached = super().__new__(cls)
                object.__setattr__(cached, "label", label)
                object.__setattr__(cached, "tid", next_term_id())
                cls._intern[label] = cached
        return cached

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Null is immutable")

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"η{self.label}"  # η1, η2, ...

    def __reduce__(self):
        return (Null, (self.label,))


class Variable(Term):
    """A variable from ``Vars``, identified by its name."""

    __slots__ = ("name", "tid", "__weakref__")

    _intern: dict[str, "Variable"] = {}
    _lock = threading.Lock()

    def __new__(cls, name: str) -> "Variable":
        cached = cls._intern.get(name)
        if cached is not None:
            return cached
        with cls._lock:
            cached = cls._intern.get(name)
            if cached is None:
                cached = super().__new__(cls)
                object.__setattr__(cached, "name", name)
                object.__setattr__(cached, "tid", next_term_id())
                cls._intern[name] = cached
        return cached

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        return (Variable, (self.name,))


GroundTerm = Union[Constant, Null]


class NullFactory:
    """A source of fresh labelled nulls.

    Each chase run owns its own factory so that null labels are reproducible
    run-to-run (the global counter alternative would leak state between
    runs and make tests order-dependent).
    """

    __slots__ = ("_counter",)

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def fresh(self) -> Null:
        return Null(next(self._counter))

    def fresh_many(self, n: int) -> list[Null]:
        return [self.fresh() for _ in range(n)]


_GLOBAL_FACTORY = NullFactory(start=1_000_000)


def fresh_null() -> Null:
    """Return a fresh null from the module-global factory.

    Reserved for ad-hoc uses (tests, examples); the chase engine always uses
    a run-local :class:`NullFactory`.
    """
    return _GLOBAL_FACTORY.fresh()


def variables(names: str) -> tuple[Variable, ...]:
    """Convenience: ``x, y, z = variables("x y z")``."""
    return tuple(Variable(n) for n in names.split())


def constants(values: str) -> tuple[Constant, ...]:
    """Convenience: ``a, b = constants("a b")``."""
    return tuple(Constant(v) for v in values.split())
