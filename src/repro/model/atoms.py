"""Atoms and facts.

An atom over a schema is an expression ``R(t1, ..., tn)`` where ``R`` is an
n-ary predicate and each ``ti`` is a term.  If every ``ti`` is a constant or
a labelled null, the atom is a *fact* (Section 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .terms import Constant, Null, Term, Variable


class Atom:
    """An immutable, hashable atom ``R(t1, ..., tn)``.

    ``predicate`` is the predicate name (a string); ``args`` is a tuple of
    :class:`~repro.model.terms.Term`.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, args: Iterable[Term] = ()) -> None:
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))
        for t in self.args:
            if not isinstance(t, Term):
                raise TypeError(f"atom argument {t!r} is not a Term")
        object.__setattr__(self, "_hash", hash((predicate, self.args)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    # -- structure ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.args)

    def terms(self) -> Iterator[Term]:
        return iter(self.args)

    def variables(self) -> set[Variable]:
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set[Constant]:
        return {t for t in self.args if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        return {t for t in self.args if isinstance(t, Null)}

    @property
    def is_fact(self) -> bool:
        """True iff every argument is a constant or a labelled null."""
        return all(not isinstance(t, Variable) for t in self.args)

    @property
    def is_ground_with_constants(self) -> bool:
        """True iff every argument is a constant (no nulls, no variables)."""
        return all(isinstance(t, Constant) for t in self.args)

    def positions(self) -> Iterator[tuple["Position", Term]]:
        """Yield ``(position, term)`` pairs for this atom."""
        for i, t in enumerate(self.args):
            yield Position(self.predicate, i), t

    # -- substitution ------------------------------------------------------

    def apply(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Return the atom with every term replaced per ``mapping``.

        Terms absent from ``mapping`` are left unchanged.  Returns ``self``
        when nothing changes (preserves interning-friendly identity).
        """
        new_args = tuple(mapping.get(t, t) for t in self.args)
        if new_args == self.args:
            return self
        return Atom(self.predicate, new_args)


class Position:
    """A position ``R_i``: the i-th argument slot (0-based) of predicate R.

    Positions are the vertices of the dependency graph used by weak
    acyclicity and its refinements.
    """

    __slots__ = ("predicate", "index", "_hash")

    def __init__(self, predicate: str, index: int) -> None:
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "_hash", hash((predicate, index)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Position is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Position):
            return NotImplemented
        return self.predicate == other.predicate and self.index == other.index

    def __lt__(self, other: "Position") -> bool:
        return (self.predicate, self.index) < (other.predicate, other.index)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Position({self.predicate!r}, {self.index})"

    def __str__(self) -> str:
        return f"{self.predicate}[{self.index + 1}]"


def atoms_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """All variables occurring in a collection of atoms."""
    out: set[Variable] = set()
    for a in atoms:
        out.update(a.variables())
    return out


def atoms_constants(atoms: Iterable[Atom]) -> set[Constant]:
    """All constants occurring in a collection of atoms."""
    out: set[Constant] = set()
    for a in atoms:
        out.update(a.constants())
    return out


def atoms_nulls(atoms: Iterable[Atom]) -> set[Null]:
    """All labelled nulls occurring in a collection of atoms."""
    out: set[Null] = set()
    for a in atoms:
        out.update(a.nulls())
    return out


def atoms_terms(atoms: Iterable[Atom]) -> set[Term]:
    """``Dom(A)``: all terms occurring in a collection of atoms."""
    out: set[Term] = set()
    for a in atoms:
        out.update(a.args)
    return out


def apply_mapping(atoms: Iterable[Atom], mapping: Mapping[Term, Term]) -> list[Atom]:
    """Apply a term mapping to every atom, preserving order."""
    return [a.apply(mapping) for a in atoms]
