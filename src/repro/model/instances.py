"""Instances and databases.

An *instance* is a set of facts (atoms over constants and labelled nulls);
a *database* is an instance containing only constants (Section 2).

:class:`Instance` maintains three indexes that the rest of the system
depends on for performance:

* a predicate index (``predicate → set of facts``) used by the homomorphism
  finder,
* a position index (``(predicate, position) → term id → set of facts``)
  used by the indexed matching engine and the compiled plans
  (:mod:`repro.matching`) to intersect candidate buckets instead of
  scanning whole predicate extents.  Its cells are keyed by the interned
  term id (``term.tid``, a process-local small int — see
  :mod:`repro.model.terms`) rather than the term object, so the hot
  probe path hashes ints, and
* a term index (``term → set of facts containing it``) used by EGD chase
  steps, which must rewrite every fact mentioning the merged null.

It also keeps a monotone *delta log*: every successful :meth:`add` appends
the fact to an append-only list.  Consumers snapshot :attr:`tick` and later
call :meth:`added_since` to obtain exactly the facts added in between —
the semi-naive discovery protocol of the chase runner and of the Skolem
saturation loop (see DESIGN.md, "Indexed matching and semi-naive
discovery").  Facts rewritten by :meth:`merge_terms` re-enter the log
because the rewrite is a discard followed by an add.

The public accessors :meth:`with_predicate` and :meth:`with_term` return
*copies* of the internal buckets: callers may iterate them while the chase
mutates the instance without hitting "set changed size during iteration".
Internal hot paths (the matching engine) use the borrowing accessors
``_pred_bucket`` / ``_pos_bucket``, whose results are only valid until the
next mutation — a :meth:`rollback` counts as a mutation — and must never
be mutated by the caller.

**Transactions.**  Branching searches (the chase explorer, the witness
engine, core computation) need to try a step and undo it.  Instead of
paying ``copy()`` — O(|I|) per branch — they take a :meth:`savepoint`,
mutate freely, and :meth:`rollback`: every :meth:`add` and
:meth:`discard` performed while at least one savepoint is active appends
an inverse operation to an undo log, and rollback replays the inverses in
reverse, restoring the fact set, all three indexes *and* the delta-log
tick in O(changes since the savepoint).  Savepoints nest (DFS takes one
per branch); each token must be rolled back or :meth:`release`-d exactly
once, innermost first.  ``copy()`` remains the right tool for a fork that
must outlive its parent (and as the reference backend the differential
suite holds the undo log against).  See DESIGN.md §5.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .terms import Constant, GroundTerm, Null, Term, Variable

_EMPTY_SET: frozenset[Atom] = frozenset()

# Undo-log entry kinds (first element of each entry tuple).
_UNDO_ADD = 0      # (kind, fact, grown_slots) — undone by un-indexing the fact
_UNDO_DISCARD = 1  # (kind, fact)              — undone by re-indexing the fact


class Savepoint:
    """A point in an instance's undo log that :meth:`Instance.rollback`
    can restore.  Opaque; obtained from :meth:`Instance.savepoint`."""

    __slots__ = ("_undo_len", "_log_len", "_live")

    def __init__(self, undo_len: int, log_len: int) -> None:
        self._undo_len = undo_len
        self._log_len = log_len
        self._live = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._live else "consumed"
        return f"Savepoint(undo={self._undo_len}, tick={self._log_len}, {state})"


class InconsistencyError(Exception):
    """Raised when an EGD step would equate two distinct constants.

    This is the ``J = ⊥`` case of Definition 1(2a): the chase sequence fails.
    """


class Instance:
    """A mutable set of facts with predicate, position and term indexes."""

    __slots__ = (
        "_facts", "_by_predicate", "_by_term", "_by_pos", "_log",
        "_undo", "_sp_stack",
    )

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: set[Atom] = set()
        self._by_predicate: dict[str, set[Atom]] = {}
        self._by_term: dict[Term, set[Atom]] = {}
        # predicate → per-position list of (term id → facts with that term
        # at that position) buckets; keyed by ``term.tid`` so probes hash
        # small ints instead of term objects.
        self._by_pos: dict[str, list[dict[int, set[Atom]]]] = {}
        # Monotone delta log; see the module docstring.
        self._log: list[Atom] = []
        # Undo log: None unless at least one savepoint is active, so the
        # non-transactional hot path pays one None-check per mutation.
        self._undo: list[tuple] | None = None
        self._sp_stack: list[Savepoint] = []
        for f in facts:
            self.add(f)

    # -- index maintenance (shared by add/discard and the undo replay) -----

    def _index_insert(self, fact: Atom) -> int:
        """Enter ``fact`` into the fact set and all three indexes.

        Returns how many per-position slots the fact's predicate gained
        (> 0 only for a predicate never seen at this arity) — the undo log
        needs it to shrink ``_by_pos`` back exactly.
        """
        self._facts.add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        slots = self._by_pos.setdefault(fact.predicate, [])
        grown = len(fact.args) - len(slots)
        while len(slots) < len(fact.args):
            slots.append({})
        for i, t in enumerate(fact.args):
            self._by_term.setdefault(t, set()).add(fact)
            slots[i].setdefault(t.tid, set()).add(fact)
        return grown if grown > 0 else 0

    def _index_remove(self, fact: Atom) -> None:
        """Remove ``fact`` from the fact set and all three indexes,
        deleting buckets that become empty (slot lists are kept — their
        length is managed only by :meth:`_index_insert`/undo)."""
        self._facts.discard(fact)
        bucket = self._by_predicate.get(fact.predicate)
        if bucket is not None:
            bucket.discard(fact)
            if not bucket:
                del self._by_predicate[fact.predicate]
        for t in set(fact.args):
            tb = self._by_term.get(t)
            if tb is not None:
                tb.discard(fact)
                if not tb:
                    del self._by_term[t]
        slots = self._by_pos.get(fact.predicate)
        if slots is not None:
            for i, t in enumerate(fact.args):
                tid = t.tid
                cell = slots[i].get(tid)
                if cell is not None:
                    cell.discard(fact)
                    if not cell:
                        del slots[i][tid]

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Add a fact; returns True if it was new."""
        if not fact.is_fact:
            raise ValueError(f"{fact} contains variables and is not a fact")
        if fact in self._facts:
            return False
        grown = self._index_insert(fact)
        self._log.append(fact)
        if self._undo is not None:
            self._undo.append((_UNDO_ADD, fact, grown))
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add many facts; returns how many were new."""
        return sum(1 for f in facts if self.add(f))

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present; returns True if it was there."""
        if fact not in self._facts:
            return False
        self._index_remove(fact)
        if self._undo is not None:
            self._undo.append((_UNDO_DISCARD, fact))
        return True

    def merge_terms(self, old: Null, new: GroundTerm) -> None:
        """Replace every occurrence of the null ``old`` by ``new`` in place.

        This is the effect of an EGD chase step's substitution γ = {old/new}.
        Rewritten facts re-enter the delta log (a merge can enable body
        matches with repeated variables, so they count as new facts for
        semi-naive discovery).
        """
        if old is new:
            return
        if not isinstance(old, Null):
            raise TypeError("only labelled nulls can be merged away")
        touched = list(self._by_term.get(old, ()))
        mapping = {old: new}
        for fact in touched:
            self.discard(fact)
            self.add(fact.apply(mapping))

    # -- savepoints ---------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Open a transaction scope: remember the current state cheaply.

        Until the returned token is consumed by :meth:`rollback` or
        :meth:`release`, every mutation is recorded in the undo log.
        Savepoints nest; tokens must be consumed innermost-first.
        """
        if self._undo is None:
            self._undo = []
        sp = Savepoint(len(self._undo), len(self._log))
        self._sp_stack.append(sp)
        return sp

    def rollback(self, sp: Savepoint) -> None:
        """Restore the exact state :meth:`savepoint` saw, in O(changes).

        Facts, all three indexes and the delta-log tick are restored;
        savepoints opened after ``sp`` (and ``sp`` itself) are consumed.
        Borrowed buckets (``_pred_bucket``/``_pos_bucket``) obtained since
        the savepoint are invalidated, like by any other mutation.
        """
        self._consume(sp)
        undo = self._undo
        assert undo is not None
        for entry in reversed(undo[sp._undo_len:]):
            if entry[0] == _UNDO_ADD:
                self._index_remove(entry[1])
                grown = entry[2]
                if grown:
                    # This add created those slots, and every fact that
                    # could occupy them was added later — hence already
                    # unwound above — so they are empty now.
                    slots = self._by_pos[entry[1].predicate]
                    del slots[-grown:]
                    if not slots:
                        del self._by_pos[entry[1].predicate]
            else:
                self._index_insert(entry[1])
        del undo[sp._undo_len:]
        del self._log[sp._log_len:]
        if not self._sp_stack:
            self._undo = None

    def release(self, sp: Savepoint) -> None:
        """Consume ``sp`` *keeping* the changes made since (commit).

        Inner savepoints still open are consumed too.  The recorded undo
        entries are retained while an outer savepoint remains active — its
        rollback still covers the released scope — and dropped otherwise.
        """
        self._consume(sp)
        if not self._sp_stack:
            self._undo = None

    def _consume(self, sp: Savepoint) -> None:
        if not sp._live or sp not in self._sp_stack:
            raise ValueError(
                "savepoint is not active on this instance (already rolled "
                "back, released, or taken from another instance)"
            )
        while self._sp_stack:
            top = self._sp_stack.pop()
            top._live = False
            if top is sp:
                return

    @property
    def in_transaction(self) -> bool:
        """True while at least one savepoint is active."""
        return bool(self._sp_stack)

    def compact_log(self) -> None:
        """Drop the delta log; the tick resets to 0.

        For long-lived instances whose consumers hold no outstanding tick
        snapshots (the core chase between rounds): without compaction the
        log would pin every fact ever added, including long-retracted
        ones.  Disallowed while a savepoint is active — rollback relies
        on log positions recorded at the savepoint.
        """
        if self._sp_stack:
            raise RuntimeError(
                "cannot compact the delta log inside a transaction"
            )
        self._log.clear()

    # -- delta log ---------------------------------------------------------

    @property
    def tick(self) -> int:
        """The current position of the delta log (monotonically increasing)."""
        return len(self._log)

    def added_since(self, tick: int) -> Sequence[Atom]:
        """The facts added after log position ``tick``, in add order.

        Facts that were added and later discarded (e.g. rewritten away by a
        subsequent merge) still appear; callers that only care about live
        facts should re-check membership.
        """
        return self._log[tick:]

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        """Value equality: two instances are equal iff they hold the same
        facts.  Indexes, the delta log and tick positions are derived
        state and deliberately excluded — they record *how* an instance
        was built, not *what* it contains.  Comparison against a plain
        ``set``/``frozenset`` of atoms is supported for test ergonomics.
        """
        if isinstance(other, Instance):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        """Instances are explicitly unhashable.

        With a value-based ``__eq__`` on a *mutable* container, any hash
        would be broken one way or the other: hashing the facts changes
        as the chase mutates the instance (corrupting any dict or set it
        sits in), while the silent default — ``object.__hash__``,
        identity-based — would violate the ``a == b ⇒ hash(a) == hash(b)``
        law and make equal instances land in different hash buckets.
        Raising here (rather than ``__hash__ = None``) gives callers the
        remedy: hash the immutable :meth:`frozen` snapshot instead.
        Regression-tested in ``tests/test_instances.py``.
        """
        raise TypeError("Instance is mutable and unhashable; use frozen()")

    def __repr__(self) -> str:
        return f"Instance({len(self)} facts)"

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(str(f) for f in self._facts)) + "}"

    def facts(self) -> frozenset[Atom]:
        return frozenset(self._facts)

    def frozen(self) -> frozenset[Atom]:
        return frozenset(self._facts)

    def copy(self) -> "Instance":
        out = Instance()
        # Rebuild indexes by direct copying (faster than re-adding).  The
        # delta log starts empty: ticks are relative to each instance.
        # Savepoints do not transfer: the copy is its own transaction scope.
        out._facts = set(self._facts)
        out._by_predicate = {p: set(s) for p, s in self._by_predicate.items()}
        out._by_term = {t: set(s) for t, s in self._by_term.items()}
        out._by_pos = {
            pred: [{tid: set(s) for tid, s in cells.items()} for cells in slots]
            for pred, slots in self._by_pos.items()
        }
        return out

    def with_predicate(self, predicate: str) -> frozenset[Atom]:
        """All facts over ``predicate`` (a snapshot, safe to iterate while
        the instance mutates)."""
        bucket = self._by_predicate.get(predicate)
        return frozenset(bucket) if bucket else _EMPTY_SET

    def with_term(self, term: Term) -> frozenset[Atom]:
        """All facts mentioning ``term`` (a snapshot, safe to iterate while
        the instance mutates)."""
        bucket = self._by_term.get(term)
        return frozenset(bucket) if bucket else _EMPTY_SET

    # -- borrowing accessors (internal; see module docstring) ---------------

    def _pred_bucket(self, predicate: str) -> set[Atom] | frozenset[Atom]:
        """Live predicate bucket — read-only, valid until the next mutation."""
        return self._by_predicate.get(predicate, _EMPTY_SET)

    def _pos_bucket(
        self, predicate: str, index: int, term: Term
    ) -> set[Atom] | frozenset[Atom]:
        """Live ``(predicate, position, term)`` bucket — read-only, valid
        until the next mutation."""
        slots = self._by_pos.get(predicate)
        if slots is None or index >= len(slots):
            return _EMPTY_SET
        return slots[index].get(term.tid, _EMPTY_SET)

    def _pos_slots(self, predicate: str) -> list[dict[int, set[Atom]]] | None:
        """Live per-position bucket list for ``predicate`` (or None).

        Cells are keyed by term id (``term.tid``), not by term object."""
        return self._by_pos.get(predicate)

    def predicates(self) -> set[str]:
        return set(self._by_predicate)

    def domain(self) -> set[Term]:
        """``Dom``: all terms occurring in the instance."""
        return set(self._by_term)

    def nulls(self) -> set[Null]:
        return {t for t in self._by_term if isinstance(t, Null)}

    def constants(self) -> set[Constant]:
        return {t for t in self._by_term if isinstance(t, Constant)}

    @property
    def is_database(self) -> bool:
        """True iff only constants appear (the paper's notion of database)."""
        return not self.nulls()

    def null_free_part(self) -> "Instance":
        """``J↓``: the facts that contain no labelled nulls."""
        return Instance(f for f in self._facts if not f.nulls())

    def apply(self, mapping: Mapping[Term, Term]) -> "Instance":
        """A new instance with the mapping applied to every fact."""
        return Instance(f.apply(mapping) for f in self._facts)


def database(*facts: Atom) -> Instance:
    """Build a database, checking that no nulls appear."""
    inst = Instance(facts)
    if not inst.is_database:
        raise ValueError("databases may not contain labelled nulls")
    return inst


def instance_from_tuples(rows: Mapping[str, Iterable[tuple]]) -> Instance:
    """Build an instance from ``{"R": [(a, b), ...], ...}``.

    Python values become constants; :class:`Null` / :class:`Constant`
    instances are used as-is.  Example::

        instance_from_tuples({"N": [("a",)], "E": [("a", "b")]})
    """
    inst = Instance()
    for pred, tuples in rows.items():
        for row in tuples:
            args = [
                t if isinstance(t, (Constant, Null)) else Constant(t) for t in row
            ]
            if any(isinstance(t, Variable) for t in args):
                raise ValueError("facts may not contain variables")
            inst.add(Atom(pred, args))
    return inst
