"""The columnar fact store: facts as row indexes over typed tid columns.

:class:`ColumnarInstance` is the ``"columnar"`` matching backend's fact
representation (DESIGN.md §10/§11) — since PR 10 the **default** chase
substrate.  Where :class:`~.instances.Instance` stores a set of
:class:`~.atoms.Atom` objects and indexes them three ways, this store
keeps **no per-fact Python object at all**:

* each ``(predicate, arity)`` pair owns a :class:`_Store` — one flat
  ``array('q')`` of *local* term ids per argument position (the
  *columns*), a live-row bitmap (``bytearray``), and a per-position
  index mapping ``lid → array('q') of candidate rows``;
* a *fact* is a row index into those columns; membership and
  value-identity go through ``rowmap`` (live lid-tuple → row);
* the matcher (:mod:`repro.matching.plans`) executes compiled join plans
  directly over the cells and columns — every probe, check and register
  write is an int operation (vectorised through :mod:`.kernels` above a
  pool-size threshold), and no ``Atom``/``Term`` object is touched on
  the hot path.

**Local term ids.**  Terms are interned process-wide with stable
``tid``\\ s, but those are sparse; every instance *family* (an instance
plus everything forked from it by :meth:`copy`) shares one
:class:`_TermTable` mapping each term to a **dense** local id.  Columns,
cells and rowmap keys hold local ids, so boundary materialisation is one
list index (``terms[lid]``) instead of a dict probe, and the ids stay
small.  The table is monotone and append-only — forks share it without
copying, and a lid, once assigned, is stable for the family's lifetime.

**Row-id lifetime.**  Rows are append-only: ``add`` assigns the next row
id; ``discard`` only clears the live bit and drops the ``rowmap`` entry.
Index cells are append-only **tombstone** cells: a discarded row stays
in its cells (the executor and every cell consumer re-check the live
bitmap), which makes discard/undo O(arity) with no set surgery and keeps
each cell sorted ascending by construction.  Columns only shrink when a
transaction rollback pops rows added since the savepoint (undo replays
LIFO, so the popped row is always both the store's and each of its
cells' last).  Dead rows keep their column data, which is what lets
:meth:`added_since` materialise a rolled-over delta fact after the fact
died.  Tombstones are reclaimed at fork time: :meth:`copy` hands the
child a compacted rebuild of any store whose dead fraction crossed
``COMPACT_DEAD_FRACTION``.

**Copy-on-write forks.**  :meth:`copy` does **not** duplicate columns:
parent and child share the same frozen ``_Store`` objects, and both
sides drop their ownership marks, so the fork costs O(predicates) — plus
compaction for tombstone-heavy stores — instead of O(rows).  The first
mutation of a shared store (add, discard, merge, or a rollback that has
to pop/revive its rows) un-shares it with one C-level deep copy
(``array('q')`` columns copy as memcpy); stores the branch never writes
are never copied.  A sharer **never** mutates a shared buffer in place,
so a child fork can outlive, precede, or interleave with its parent's
savepoints and rollbacks.

**Boundary materialisation.**  ``Atom`` objects are built from the term
table only at the representation boundaries — iteration, rendering,
fingerprints/canonical keys, ``added_since``, witness extraction —
never inside plan execution.  Fingerprints and canonical keys therefore
stay tid-free exactly as DESIGN.md §9 demands.  The explorer's memo
path uses :meth:`memo_parts` instead: per-store cached splits of the
live rowmap keys into ground and null-mentioning rows, so memoising a
visited state does not materialise a ``frozenset[Atom]`` at all.

The full :class:`~.instances.Instance` contract is honoured:
add/discard/merge_terms, the savepoint/rollback/release undo log in
O(changes), the monotone delta log (with :meth:`added_rows_since`
returning ``(storekey, row)`` handles the matcher consumes without
materialising atoms), value-equality ``__eq__``, and the same public
accessors.  The differential suites drive all four matching backends to
byte-identical chase decisions over it, under both the numpy and the
pure-Python kernels.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .instances import Instance, Savepoint
from .terms import Constant, GroundTerm, Null, Term

# Undo-log entry kinds (first element of each entry tuple).
_UNDO_ADD = 0      # (kind, skey, row, created_store)
_UNDO_DISCARD = 1  # (kind, skey, row)

#: A delta-log / undo-log store key: ``(predicate, arity)``.
StoreKey = tuple[str, int]

#: A delta-log row handle: ``(storekey, row id)``.
RowHandle = tuple[StoreKey, int]

#: :meth:`ColumnarInstance.copy` compacts a store's tombstones away when
#: at least this fraction of its rows is dead; lighter tombstone loads
#: ride along shared (re-checking a dead row costs one bitmap read).
COMPACT_DEAD_FRACTION = 0.25


class _TermTable:
    """The family-shared dense term registry.

    ``local_of`` maps a process-global ``term.tid`` to the family's
    local id; ``terms[lid]`` is the interned term object (one list
    index per boundary materialisation); ``null_lids`` is the set of
    local ids naming labelled nulls (the memo path's ground/null split).
    All three are monotone append-only, which is what lets every fork of
    a family share the one table without copying or synchronising: a
    lid, once assigned, means the same term to every sharer forever.
    """

    __slots__ = ("local_of", "terms", "null_lids")

    def __init__(self) -> None:
        self.local_of: dict[int, int] = {}
        self.terms: list[Term] = []
        self.null_lids: set[int] = set()

    def register(self, term: Term) -> int:
        lid = self.local_of.get(term.tid)
        if lid is None:
            lid = len(self.terms)
            self.local_of[term.tid] = lid
            self.terms.append(term)
            if isinstance(term, Null):
                self.null_lids.add(lid)
        return lid


class _Store:
    """The columns of one ``(predicate, arity)`` pair.

    ``cols[pos][row]`` is the local term id at argument position ``pos``
    of row ``row`` (an ``array('q')`` — a typed flat buffer the kernels
    view zero-copy); ``index[pos][lid]`` is an append-only ``array('q')``
    of the rows holding that lid there, ascending, **including dead
    rows** (consumers filter through ``live``); ``rowmap`` maps each
    live row's full lid-tuple to its row id (doubling as the membership
    test and the probe-free scan — its keys *are* the column values, so
    full-extent enumeration never reads a column); ``live``/``nlive``
    track the bitmap, ``nrows`` the column length.  ``version`` bumps on
    every mutation and keys the :meth:`split_keys` memo cache.
    """

    __slots__ = (
        "arity", "cols", "rowmap", "index", "live",
        "nlive", "nrows", "version", "_split",
    )

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.cols: list[array] = [array("q") for _ in range(arity)]
        self.rowmap: dict[tuple[int, ...], int] = {}
        self.index: list[dict[int, array]] = [{} for _ in range(arity)]
        self.live = bytearray()
        self.nlive = 0
        self.nrows = 0
        self.version = 0
        self._split: tuple | None = None

    def row_key(self, row: int) -> tuple[int, ...]:
        return tuple(col[row] for col in self.cols)

    def copy(self) -> "_Store":
        """A deep, exclusively-owned duplicate (the un-share step of a
        copy-on-write fork).  Every copy is C-level: ``array('q')`` and
        ``bytearray`` duplicate as memcpy, dict/cell copies loop in C."""
        out = _Store.__new__(_Store)
        out.arity = self.arity
        out.cols = [array("q", col) for col in self.cols]
        out.rowmap = dict(self.rowmap)
        out.index = [
            {lid: array("q", cell) for lid, cell in cell_map.items()}
            for cell_map in self.index
        ]
        out.live = bytearray(self.live)
        out.nlive = self.nlive
        out.nrows = self.nrows
        out.version = 0
        out._split = None
        return out

    def compacted(self) -> "_Store":
        """A rebuilt store holding only the live rows, renumbered densely
        in row order.  Only safe for a fresh fork: row ids change, so the
        owner must have no undo entries or delta handles into this store."""
        out = _Store(self.arity)
        keep = [row for row in range(self.nrows) if self.live[row]]
        out.cols = [array("q", map(col.__getitem__, keep)) for col in self.cols]
        n = len(keep)
        out.live = bytearray(b"\x01" * n)
        out.nlive = n
        out.nrows = n
        rowmap = out.rowmap
        index = out.index
        cols = out.cols
        for new_row in range(n):
            key = tuple(col[new_row] for col in cols)
            rowmap[key] = new_row
            for pos, lid in enumerate(key):
                cell = index[pos].get(lid)
                if cell is None:
                    index[pos][lid] = array("q", (new_row,))
                else:
                    cell.append(new_row)
        return out

    def split_keys(self, null_lids: set[int]) -> tuple[frozenset, tuple]:
        """The live rowmap keys split into (ground frozenset, null-row
        tuple), cached per :attr:`version`.

        This is the explorer memo path's cached input: across sibling
        branch states only the stepped store's version moves, so the
        untouched stores answer from cache.  Monotone ``null_lids``
        growth cannot stale the cache — a row can only mention a null
        registered before the row was added, and adding the row bumped
        the version.
        """
        cached = self._split
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        ground = []
        with_nulls = []
        if null_lids:
            isdisjoint = null_lids.isdisjoint
            for key in self.rowmap:
                if isdisjoint(key):
                    ground.append(key)
                else:
                    with_nulls.append(key)
        else:
            ground = list(self.rowmap)
        result = (frozenset(ground), tuple(with_nulls))
        self._split = (self.version, *result)
        return result


class ColumnarInstance:
    """A mutable set of facts stored as lid columns plus row-id indexes."""

    __slots__ = ("_stores", "_terms", "_owned", "_cow", "_log", "_undo", "_sp_stack")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._stores: dict[StoreKey, _Store] = {}
        self._terms = _TermTable()
        # Copy-on-write state: after a fork both sides set ``_cow`` and
        # clear ``_owned`` — a store not in ``_owned`` may be shared with
        # another instance and must be un-shared (deep-copied) before its
        # first mutation.  ``_owned`` is relative to the *latest* fork.
        self._owned: set[StoreKey] = set()
        self._cow = False
        # Monotone delta log of (storekey, row) handles.
        self._log: list[RowHandle] = []
        self._undo: list[tuple] | None = None
        self._sp_stack: list[Savepoint] = []
        for f in facts:
            self.add(f)

    # -- copy-on-write ------------------------------------------------------

    def _writable(self, skey: StoreKey) -> _Store:
        """The store for ``skey``, un-shared if a fork may still see it."""
        store = self._stores[skey]
        if self._cow and skey not in self._owned:
            store = store.copy()
            self._stores[skey] = store
            self._owned.add(skey)
        return store

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Add a fact; returns True if it was new."""
        if not fact.is_fact:
            raise ValueError(f"{fact} contains variables and is not a fact")
        register = self._terms.register
        return self._add_key(
            (fact.predicate, len(fact.args)),
            tuple(register(t) for t in fact.args),
        )

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add many facts; returns how many were new."""
        return sum(1 for f in facts if self.add(f))

    def _add_key(self, skey: StoreKey, key: tuple[int, ...]) -> bool:
        """Insert one row by its lid-tuple (terms already registered)."""
        store = self._stores.get(skey)
        created = False
        if store is None:
            store = _Store(skey[1])
            self._stores[skey] = store
            if self._cow:
                self._owned.add(skey)  # brand new: nobody else holds it
            created = True
        elif key in store.rowmap:
            return False
        else:
            store = self._writable(skey)
        row = store.nrows
        index = store.index
        for pos, lid in enumerate(key):
            store.cols[pos].append(lid)
            cell = index[pos].get(lid)
            if cell is None:
                index[pos][lid] = array("q", (row,))
            else:
                cell.append(row)
        store.rowmap[key] = row
        store.live.append(1)
        store.nrows = row + 1
        store.nlive += 1
        store.version += 1
        self._log.append((skey, row))
        if self._undo is not None:
            self._undo.append((_UNDO_ADD, skey, row, created))
        return True

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present; returns True if it was there."""
        skey = (fact.predicate, len(fact.args))
        store = self._stores.get(skey)
        if store is None:
            return False
        local_of = self._terms.local_of
        lids = []
        for t in fact.args:
            lid = local_of.get(t.tid)
            if lid is None:
                return False  # term never entered this family
            lids.append(lid)
        key = tuple(lids)
        if key not in store.rowmap:
            return False
        self._discard_key(skey, key)
        return True

    def _discard_key(self, skey: StoreKey, key: tuple[int, ...]) -> None:
        """Tombstone one live row: clear the bit, drop the rowmap entry.
        Index cells keep the row (consumers filter through ``live``)."""
        store = self._writable(skey)
        row = store.rowmap.pop(key)
        store.live[row] = 0
        store.nlive -= 1
        store.version += 1
        if self._undo is not None:
            self._undo.append((_UNDO_DISCARD, skey, row))

    def merge_terms(self, old: Null, new: GroundTerm) -> None:
        """Replace every occurrence of the null ``old`` by ``new`` in place.

        Same contract as :meth:`Instance.merge_terms`: each rewritten row
        is a discard followed by an add, so it re-enters the delta log.
        """
        if old is new:
            return
        if not isinstance(old, Null):
            raise TypeError("only labelled nulls can be merged away")
        olid = self._terms.local_of.get(old.tid)
        if olid is None:
            self._terms.register(new)
            return
        nlid = self._terms.register(new)
        touched: list[tuple[StoreKey, tuple[int, ...]]] = []
        for skey, store in self._stores.items():
            live = store.live
            rows: set[int] = set()
            for cell_map in store.index:
                cell = cell_map.get(olid)
                if cell:
                    rows.update(r for r in cell if live[r])
            for row in rows:
                touched.append((skey, store.row_key(row)))
        for skey, key in touched:
            self._discard_key(skey, key)
            self._add_key(
                skey, tuple(nlid if lid == olid else lid for lid in key)
            )

    # -- savepoints ---------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Open a transaction scope (same contract as ``Instance``)."""
        if self._undo is None:
            self._undo = []
        sp = Savepoint(len(self._undo), len(self._log))
        self._sp_stack.append(sp)
        return sp

    def rollback(self, sp: Savepoint) -> None:
        """Restore the exact state :meth:`savepoint` saw, in O(changes).

        Columns, bitmap, indexes, rowmaps *and* the delta-log tick are
        restored exactly: adds since the savepoint pop their rows (undo
        replays in reverse, so the popped row is always both the store's
        and each of its cells' last), discards re-mark theirs live.  A
        fork taken since the savepoint survives untouched: every store it
        shares is un-shared here before its rows are popped or revived.
        """
        self._consume(sp)
        undo = self._undo
        assert undo is not None
        stores = self._stores
        for entry in reversed(undo[sp._undo_len:]):
            kind, skey, row = entry[0], entry[1], entry[2]
            store = self._writable(skey)
            if kind == _UNDO_ADD:
                key = store.row_key(row)
                if store.live[row]:
                    del store.rowmap[key]
                    store.nlive -= 1
                for pos, lid in enumerate(key):
                    cell = store.index[pos][lid]
                    cell.pop()
                    if not cell:
                        del store.index[pos][lid]
                for col in store.cols:
                    col.pop()
                store.live.pop()
                store.nrows -= 1
                store.version += 1
                if entry[3]:
                    # This add created the store; everything added to it
                    # later was unwound first, so it is empty again.
                    del stores[skey]
                    self._owned.discard(skey)
            else:
                store.live[row] = 1
                store.nlive += 1
                store.rowmap[store.row_key(row)] = row
                store.version += 1
        del undo[sp._undo_len:]
        del self._log[sp._log_len:]
        if not self._sp_stack:
            self._undo = None

    def release(self, sp: Savepoint) -> None:
        """Consume ``sp`` *keeping* the changes made since (commit)."""
        self._consume(sp)
        if not self._sp_stack:
            self._undo = None

    def _consume(self, sp: Savepoint) -> None:
        if not sp._live or sp not in self._sp_stack:
            raise ValueError(
                "savepoint is not active on this instance (already rolled "
                "back, released, or taken from another instance)"
            )
        while self._sp_stack:
            top = self._sp_stack.pop()
            top._live = False
            if top is sp:
                return

    @property
    def in_transaction(self) -> bool:
        """True while at least one savepoint is active."""
        return bool(self._sp_stack)

    def compact_log(self) -> None:
        """Drop the delta log; the tick resets to 0 (see ``Instance``)."""
        if self._sp_stack:
            raise RuntimeError(
                "cannot compact the delta log inside a transaction"
            )
        self._log.clear()

    # -- delta log ---------------------------------------------------------

    @property
    def tick(self) -> int:
        """The current position of the delta log (monotonically increasing)."""
        return len(self._log)

    def added_rows_since(self, tick: int) -> Sequence[RowHandle]:
        """The ``(storekey, row)`` handles added after log position
        ``tick``, in add order — the zero-materialisation delta surface
        the matcher consumes.  Handles of rows discarded in the meantime
        still appear; filter with :meth:`row_live`."""
        return self._log[tick:]

    def row_live(self, handle: RowHandle) -> bool:
        """Is the row behind a delta handle still live?"""
        skey, row = handle
        store = self._stores.get(skey)
        return store is not None and bool(store.live[row])

    def added_since(self, tick: int) -> Sequence[Atom]:
        """The facts added after log position ``tick``, materialised —
        the ``Instance``-compatible boundary; hot consumers use
        :meth:`added_rows_since`.  Discarded facts still appear (dead
        rows keep their column data); callers re-check membership."""
        return [self._atom_at(*handle) for handle in self._log[tick:]]

    def _atom_at(self, skey: StoreKey, row: int) -> Atom:
        store = self._stores[skey]
        terms = self._terms.terms
        return Atom(skey[0], tuple(terms[col[row]] for col in store.cols))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Atom) or not fact.is_fact:
            return False
        store = self._stores.get((fact.predicate, len(fact.args)))
        if store is None:
            return False
        local_of = self._terms.local_of
        lids = []
        for t in fact.args:
            lid = local_of.get(t.tid)
            if lid is None:
                return False
            lids.append(lid)
        return tuple(lids) in store.rowmap

    def __iter__(self) -> Iterator[Atom]:
        terms = self._terms.terms
        for (pred, _arity), store in self._stores.items():
            for key in store.rowmap:
                yield Atom(pred, tuple(terms[lid] for lid in key))

    def __len__(self) -> int:
        return sum(store.nlive for store in self._stores.values())

    def __eq__(self, other: object) -> bool:
        """Value equality on the fact *set* (derived state — indexes,
        dead rows, log and tick positions, sharing marks — excluded),
        mirroring ``Instance.__eq__``.  Within one fork family local ids
        are bijective with terms, so two related columnar instances
        compare by raw rowmap keys; unrelated columnar instances,
        ``Instance`` and plain ``set``/``frozenset`` operands compare
        through materialised atoms."""
        if isinstance(other, ColumnarInstance):
            if self._terms is other._terms:
                mine = {
                    k: s.rowmap.keys()
                    for k, s in self._stores.items() if s.nlive
                }
                theirs = {
                    k: s.rowmap.keys()
                    for k, s in other._stores.items() if s.nlive
                }
                return mine == theirs
            return self.facts() == other.facts()
        if isinstance(other, Instance):
            return self.facts() == other.facts()
        if isinstance(other, (set, frozenset)):
            return self.facts() == other
        return NotImplemented

    def __hash__(self) -> int:
        """Unhashable for the same reason ``Instance`` is (mutable value
        equality); hash the :meth:`frozen` snapshot instead."""
        raise TypeError(
            "ColumnarInstance is mutable and unhashable; use frozen()"
        )

    def __repr__(self) -> str:
        return f"ColumnarInstance({len(self)} facts)"

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(str(f) for f in self)) + "}"

    def facts(self) -> frozenset[Atom]:
        return frozenset(self)

    def frozen(self) -> frozenset[Atom]:
        return frozenset(self)

    def copy(self, *, cow: bool = True) -> "ColumnarInstance":
        """An O(predicates + changes) copy-on-write fork.

        Parent and child share the term table and every store; both drop
        their ownership marks, so whichever side mutates a store first
        pays one deep store copy and the other side keeps the original.
        Stores whose dead-row fraction reached ``COMPACT_DEAD_FRACTION``
        are handed to the child as compacted rebuilds instead (the
        satellite fix for tombstone snowballing across long-lived
        forks): the child has no delta handles or undo entries yet, so
        renumbering its rows is safe, while the parent — which may be
        mid-transaction — keeps its row ids.

        The child's delta log starts empty (ticks are relative to each
        instance) and savepoints do not transfer: the fork is its own
        transaction scope.

        ``cow=False`` deep-copies every store up front — the eager
        PR 9 fork behaviour, kept as the fork microbench's reference arm
        and for callers that want fully detached buffers immediately.
        """
        out = ColumnarInstance()
        out._terms = self._terms
        child_stores: dict[StoreKey, _Store] = {}
        owned: set[StoreKey] = set()
        for skey, store in self._stores.items():
            dead = store.nrows - store.nlive
            if dead and dead >= COMPACT_DEAD_FRACTION * store.nrows:
                child_stores[skey] = store.compacted()
                owned.add(skey)
            elif cow:
                child_stores[skey] = store
            else:
                child_stores[skey] = store.copy()
                owned.add(skey)
        out._stores = child_stores
        out._owned = owned
        if cow:
            out._cow = True
            self._cow = True
            self._owned = set()
        return out

    def memo_parts(self) -> tuple[frozenset, list[Atom]]:
        """The explorer memo path's cached ``canonical_key`` inputs.

        Returns ``(ground_key, null_facts)``: ``ground_key`` is a
        frozenset of ``(storekey, frozenset-of-lid-tuples)`` pairs over
        the live null-free rows (no ``Atom`` is materialised — the
        lid-tuples already exist as rowmap keys, and the per-store split
        is cached across sibling states by ``_Store.split_keys``), and
        ``null_facts`` are the few null-mentioning facts, materialised
        for the colour-refinement canonicaliser.  Local ids are only
        meaningful within one fork family — two instances' ground keys
        compare correctly iff they share ``_terms``, which every state
        of one exploration does.  Never persist these keys (§9).
        """
        null_lids = self._terms.null_lids
        terms = self._terms.terms
        ground = []
        null_facts: list[Atom] = []
        for skey, store in self._stores.items():
            if not store.nlive:
                continue
            g, null_keys = store.split_keys(null_lids)
            if g:
                ground.append((skey, g))
            if null_keys:
                pred = skey[0]
                null_facts.extend(
                    Atom(pred, tuple(terms[lid] for lid in key))
                    for key in null_keys
                )
        return frozenset(ground), null_facts

    def with_predicate(self, predicate: str) -> frozenset[Atom]:
        """All facts over ``predicate`` (a snapshot, safe to iterate while
        the instance mutates)."""
        terms = self._terms.terms
        return frozenset(
            Atom(predicate, tuple(terms[lid] for lid in key))
            for (pred, _arity), store in self._stores.items()
            if pred == predicate
            for key in store.rowmap
        )

    def with_term(self, term: Term) -> frozenset[Atom]:
        """All facts mentioning ``term`` (a snapshot)."""
        lid = self._terms.local_of.get(term.tid)
        if lid is None:
            return frozenset()
        terms = self._terms.terms
        out = []
        for (pred, _arity), store in self._stores.items():
            live = store.live
            rows: set[int] = set()
            for cell_map in store.index:
                cell = cell_map.get(lid)
                if cell:
                    rows.update(r for r in cell if live[r])
            for row in rows:
                out.append(
                    Atom(pred, tuple(terms[t] for t in store.row_key(row)))
                )
        return frozenset(out)

    def predicates(self) -> set[str]:
        return {
            pred for (pred, _a), store in self._stores.items() if store.nlive
        }

    def _live_lids(self) -> set[int]:
        """Local ids occurring in live rows (via rowmap keys: live rows
        only by construction, no tombstone filtering needed)."""
        lids: set[int] = set()
        for store in self._stores.values():
            for key in store.rowmap:
                lids.update(key)
        return lids

    def domain(self) -> set[Term]:
        """``Dom``: all terms occurring in (live) facts."""
        terms = self._terms.terms
        return {terms[lid] for lid in self._live_lids()}

    def nulls(self) -> set[Null]:
        null_lids = self._terms.null_lids
        if not null_lids:
            return set()
        terms = self._terms.terms
        return {terms[lid] for lid in self._live_lids() & null_lids}

    def constants(self) -> set[Constant]:
        return {t for t in self.domain() if isinstance(t, Constant)}

    @property
    def is_database(self) -> bool:
        """True iff only constants appear (the paper's notion of database)."""
        return not self.nulls()

    def null_free_part(self) -> "ColumnarInstance":
        """``J↓``: the facts that contain no labelled nulls."""
        return ColumnarInstance(f for f in self if not f.nulls())

    def apply(self, mapping: Mapping[Term, Term]) -> "ColumnarInstance":
        """A new columnar instance with the mapping applied to every fact."""
        return ColumnarInstance(f.apply(mapping) for f in self)
