"""The columnar fact store: facts as row indexes over per-position tid
columns.

:class:`ColumnarInstance` is the ``"columnar"`` matching backend's fact
representation (DESIGN.md §10).  Where :class:`~.instances.Instance`
stores a set of :class:`~.atoms.Atom` objects and indexes them three
ways, this store keeps **no per-fact Python object at all**:

* each ``(predicate, arity)`` pair owns a :class:`_Store` — one flat
  Python list of interned term ids (``term.tid``) per argument position
  (the *columns*), a live-row bitmap, and a per-position index mapping
  ``tid → set of row ids``;
* a *fact* is a row index into those columns; membership and
  value-identity go through ``rowmap`` (live tid-tuple → row);
* the matcher (:mod:`repro.matching.plans`) executes compiled join plans
  directly over the row-id sets and columns — every probe, check and
  register write is an int operation, no ``Atom``/``Term`` object is
  touched on the hot path.

**Row-id lifetime.**  Rows are append-only: ``add`` assigns the next row
id, ``discard`` only clears the live bit (and removes the row from
``rowmap``/index — the executor therefore never consults the bitmap;
every row id reachable through ``rowmap`` or the index is live by
construction).  Dead rows keep their column data, which is what lets the
undo log restore a discard in O(arity) and lets :meth:`added_since`
materialise a rolled-over delta fact after the fact died.  There is no
compaction: a store's columns only shrink when a transaction rollback
pops rows added since the savepoint (undo is exactly LIFO, so the popped
row is always the last one).  Long-lived instances reclaim dead rows the
same way ``Instance`` reclaims its log — :meth:`compact_log` plus a
fresh :meth:`copy`.

**Boundary materialisation.**  ``_term_of`` maps every tid ever added to
its (process-interned, hence alive) term object; ``Atom`` objects are
built from it only at the representation boundaries — iteration,
rendering, fingerprints/canonical keys, ``added_since``, witness
extraction — never inside plan execution.  Fingerprints and canonical
keys therefore stay tid-free exactly as DESIGN.md §9 demands: the
boundary hands them ordinary terms, and the metamorphic tid-churn suite
pins it.

The full :class:`~.instances.Instance` contract is honoured:
add/discard/merge_terms, the savepoint/rollback/release undo log in
O(changes), the monotone delta log (with :meth:`added_rows_since`
returning ``(storekey, row)`` handles the matcher consumes without
materialising atoms), value-equality ``__eq__``, and the same
public accessors.  The differential suites drive all four matching
backends to byte-identical chase decisions over it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .instances import Instance, Savepoint
from .terms import Constant, GroundTerm, Null, Term

# Undo-log entry kinds (first element of each entry tuple).
_UNDO_ADD = 0      # (kind, skey, row, created_store)
_UNDO_DISCARD = 1  # (kind, skey, row)

#: A delta-log / undo-log store key: ``(predicate, arity)``.
StoreKey = tuple[str, int]

#: A delta-log row handle: ``(storekey, row id)``.
RowHandle = tuple[StoreKey, int]


class _Store:
    """The columns of one ``(predicate, arity)`` pair.

    ``cols[pos][row]`` is the tid at argument position ``pos`` of row
    ``row``; ``index[pos][tid]`` is the set of *live* rows holding that
    tid there; ``rowmap`` maps each live row's full tid-tuple to its row
    id (doubling as the membership test and the full-extent scan);
    ``live``/``nlive`` track the bitmap, ``nrows`` the column length.
    """

    __slots__ = ("arity", "cols", "rowmap", "index", "live", "nlive", "nrows")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.cols: list[list[int]] = [[] for _ in range(arity)]
        self.rowmap: dict[tuple[int, ...], int] = {}
        self.index: list[dict[int, set[int]]] = [{} for _ in range(arity)]
        self.live = bytearray()
        self.nlive = 0
        self.nrows = 0

    def row_key(self, row: int) -> tuple[int, ...]:
        return tuple(col[row] for col in self.cols)

    def copy(self) -> "_Store":
        out = _Store.__new__(_Store)
        out.arity = self.arity
        out.cols = [list(col) for col in self.cols]
        out.rowmap = dict(self.rowmap)
        out.index = [
            {tid: set(rows) for tid, rows in cell.items()} for cell in self.index
        ]
        out.live = bytearray(self.live)
        out.nlive = self.nlive
        out.nrows = self.nrows
        return out


class ColumnarInstance:
    """A mutable set of facts stored as tid columns plus row-id indexes."""

    __slots__ = ("_stores", "_term_of", "_log", "_undo", "_sp_stack")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._stores: dict[StoreKey, _Store] = {}
        # tid → term object, for boundary materialisation.  Monotone: a
        # tid is registered on first add and never dropped (the mapping
        # keeps the term interned, so the tid stays stable for the
        # instance's whole lifetime).
        self._term_of: dict[int, Term] = {}
        # Monotone delta log of (storekey, row) handles.
        self._log: list[RowHandle] = []
        self._undo: list[tuple] | None = None
        self._sp_stack: list[Savepoint] = []
        for f in facts:
            self.add(f)

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Add a fact; returns True if it was new."""
        if not fact.is_fact:
            raise ValueError(f"{fact} contains variables and is not a fact")
        term_of = self._term_of
        for t in fact.args:
            term_of[t.tid] = t
        return self._add_key(
            (fact.predicate, len(fact.args)),
            tuple(t.tid for t in fact.args),
        )

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add many facts; returns how many were new."""
        return sum(1 for f in facts if self.add(f))

    def _add_key(self, skey: StoreKey, key: tuple[int, ...]) -> bool:
        """Insert one row by its tid-tuple (terms already registered)."""
        store = self._stores.get(skey)
        created = False
        if store is None:
            store = _Store(skey[1])
            self._stores[skey] = store
            created = True
        elif key in store.rowmap:
            return False
        row = store.nrows
        index = store.index
        for pos, tid in enumerate(key):
            store.cols[pos].append(tid)
            cell = index[pos].get(tid)
            if cell is None:
                index[pos][tid] = {row}
            else:
                cell.add(row)
        store.rowmap[key] = row
        store.live.append(1)
        store.nrows = row + 1
        store.nlive += 1
        self._log.append((skey, row))
        if self._undo is not None:
            self._undo.append((_UNDO_ADD, skey, row, created))
        return True

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present; returns True if it was there."""
        skey = (fact.predicate, len(fact.args))
        store = self._stores.get(skey)
        if store is None:
            return False
        key = tuple(t.tid for t in fact.args)
        row = store.rowmap.get(key)
        if row is None:
            return False
        self._discard_row(skey, store, key, row)
        return True

    def _discard_row(
        self, skey: StoreKey, store: _Store, key: tuple[int, ...], row: int
    ) -> None:
        del store.rowmap[key]
        store.live[row] = 0
        store.nlive -= 1
        for pos, tid in enumerate(key):
            cell = store.index[pos][tid]
            cell.discard(row)
            if not cell:
                del store.index[pos][tid]
        if self._undo is not None:
            self._undo.append((_UNDO_DISCARD, skey, row))

    def merge_terms(self, old: Null, new: GroundTerm) -> None:
        """Replace every occurrence of the null ``old`` by ``new`` in place.

        Same contract as :meth:`Instance.merge_terms`: each rewritten row
        is a discard followed by an add, so it re-enters the delta log.
        """
        if old is new:
            return
        if not isinstance(old, Null):
            raise TypeError("only labelled nulls can be merged away")
        otid, ntid = old.tid, new.tid
        self._term_of[ntid] = new
        touched: list[tuple[StoreKey, _Store, tuple[int, ...], int]] = []
        for skey, store in self._stores.items():
            rows: set[int] = set()
            for cell_map in store.index:
                cell = cell_map.get(otid)
                if cell:
                    rows.update(cell)
            for row in rows:
                touched.append((skey, store, store.row_key(row), row))
        for skey, store, key, row in touched:
            self._discard_row(skey, store, key, row)
            self._add_key(
                skey, tuple(ntid if t == otid else t for t in key)
            )

    # -- savepoints ---------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Open a transaction scope (same contract as ``Instance``)."""
        if self._undo is None:
            self._undo = []
        sp = Savepoint(len(self._undo), len(self._log))
        self._sp_stack.append(sp)
        return sp

    def rollback(self, sp: Savepoint) -> None:
        """Restore the exact state :meth:`savepoint` saw, in O(changes).

        Columns, bitmap, indexes, rowmaps *and* the delta-log tick are
        restored exactly: adds since the savepoint pop their rows (undo
        replays in reverse, so the popped row is always the store's last),
        discards re-mark theirs live.
        """
        self._consume(sp)
        undo = self._undo
        assert undo is not None
        stores = self._stores
        for entry in reversed(undo[sp._undo_len :]):
            kind, skey, row = entry[0], entry[1], entry[2]
            store = stores[skey]
            key = store.row_key(row)
            if kind == _UNDO_ADD:
                if store.live[row]:
                    del store.rowmap[key]
                    store.nlive -= 1
                    for pos, tid in enumerate(key):
                        cell = store.index[pos].get(tid)
                        if cell is not None:
                            cell.discard(row)
                            if not cell:
                                del store.index[pos][tid]
                for col in store.cols:
                    col.pop()
                store.live.pop()
                store.nrows -= 1
                if entry[3]:
                    # This add created the store; everything added to it
                    # later was unwound first, so it is empty again.
                    del stores[skey]
            else:
                store.live[row] = 1
                store.nlive += 1
                store.rowmap[key] = row
                for pos, tid in enumerate(key):
                    store.index[pos].setdefault(tid, set()).add(row)
        del undo[sp._undo_len :]
        del self._log[sp._log_len :]
        if not self._sp_stack:
            self._undo = None

    def release(self, sp: Savepoint) -> None:
        """Consume ``sp`` *keeping* the changes made since (commit)."""
        self._consume(sp)
        if not self._sp_stack:
            self._undo = None

    def _consume(self, sp: Savepoint) -> None:
        if not sp._live or sp not in self._sp_stack:
            raise ValueError(
                "savepoint is not active on this instance (already rolled "
                "back, released, or taken from another instance)"
            )
        while self._sp_stack:
            top = self._sp_stack.pop()
            top._live = False
            if top is sp:
                return

    @property
    def in_transaction(self) -> bool:
        """True while at least one savepoint is active."""
        return bool(self._sp_stack)

    def compact_log(self) -> None:
        """Drop the delta log; the tick resets to 0 (see ``Instance``)."""
        if self._sp_stack:
            raise RuntimeError(
                "cannot compact the delta log inside a transaction"
            )
        self._log.clear()

    # -- delta log ---------------------------------------------------------

    @property
    def tick(self) -> int:
        """The current position of the delta log (monotonically increasing)."""
        return len(self._log)

    def added_rows_since(self, tick: int) -> Sequence[RowHandle]:
        """The ``(storekey, row)`` handles added after log position
        ``tick``, in add order — the zero-materialisation delta surface
        the matcher consumes.  Handles of rows discarded in the meantime
        still appear; filter with :meth:`row_live`."""
        return self._log[tick:]

    def row_live(self, handle: RowHandle) -> bool:
        """Is the row behind a delta handle still live?"""
        skey, row = handle
        store = self._stores.get(skey)
        return store is not None and bool(store.live[row])

    def added_since(self, tick: int) -> Sequence[Atom]:
        """The facts added after log position ``tick``, materialised —
        the ``Instance``-compatible boundary; hot consumers use
        :meth:`added_rows_since`.  Discarded facts still appear (dead
        rows keep their column data); callers re-check membership."""
        return [self._atom_at(*handle) for handle in self._log[tick:]]

    def _atom_at(self, skey: StoreKey, row: int) -> Atom:
        store = self._stores[skey]
        term_of = self._term_of
        return Atom(skey[0], tuple(term_of[col[row]] for col in store.cols))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Atom) or not fact.is_fact:
            return False
        store = self._stores.get((fact.predicate, len(fact.args)))
        return store is not None and (
            tuple(t.tid for t in fact.args) in store.rowmap
        )

    def __iter__(self) -> Iterator[Atom]:
        term_of = self._term_of
        for (pred, _arity), store in self._stores.items():
            for key in store.rowmap:
                yield Atom(pred, tuple(term_of[tid] for tid in key))

    def __len__(self) -> int:
        return sum(store.nlive for store in self._stores.values())

    def __eq__(self, other: object) -> bool:
        """Value equality on the fact *set* (derived state — indexes,
        dead rows, log and tick positions — excluded), mirroring
        ``Instance.__eq__``.  tid-tuples compare columnar instances
        directly (terms are interned: equal terms share one tid);
        ``Instance`` and plain ``set``/``frozenset`` operands compare
        through materialised atoms."""
        if isinstance(other, ColumnarInstance):
            mine = {k: s.rowmap.keys() for k, s in self._stores.items() if s.nlive}
            theirs = {
                k: s.rowmap.keys() for k, s in other._stores.items() if s.nlive
            }
            return mine == theirs
        if isinstance(other, Instance):
            return self.facts() == other.facts()
        if isinstance(other, (set, frozenset)):
            return self.facts() == other
        return NotImplemented

    def __hash__(self) -> int:
        """Unhashable for the same reason ``Instance`` is (mutable value
        equality); hash the :meth:`frozen` snapshot instead."""
        raise TypeError(
            "ColumnarInstance is mutable and unhashable; use frozen()"
        )

    def __repr__(self) -> str:
        return f"ColumnarInstance({len(self)} facts)"

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(str(f) for f in self)) + "}"

    def facts(self) -> frozenset[Atom]:
        return frozenset(self)

    def frozen(self) -> frozenset[Atom]:
        return frozenset(self)

    def copy(self) -> "ColumnarInstance":
        out = ColumnarInstance()
        out._stores = {skey: store.copy() for skey, store in self._stores.items()}
        out._term_of = dict(self._term_of)
        # The delta log starts empty: ticks are relative to each instance.
        # Savepoints do not transfer: the copy is its own transaction scope.
        return out

    def with_predicate(self, predicate: str) -> frozenset[Atom]:
        """All facts over ``predicate`` (a snapshot, safe to iterate while
        the instance mutates)."""
        term_of = self._term_of
        return frozenset(
            Atom(predicate, tuple(term_of[tid] for tid in key))
            for (pred, _arity), store in self._stores.items()
            if pred == predicate
            for key in store.rowmap
        )

    def with_term(self, term: Term) -> frozenset[Atom]:
        """All facts mentioning ``term`` (a snapshot)."""
        tid = term.tid
        term_of = self._term_of
        out = []
        for (pred, _arity), store in self._stores.items():
            rows: set[int] = set()
            for cell_map in store.index:
                cell = cell_map.get(tid)
                if cell:
                    rows.update(cell)
            for row in rows:
                out.append(
                    Atom(pred, tuple(term_of[t] for t in store.row_key(row)))
                )
        return frozenset(out)

    def predicates(self) -> set[str]:
        return {
            pred for (pred, _a), store in self._stores.items() if store.nlive
        }

    def _live_tids(self) -> set[int]:
        tids: set[int] = set()
        for store in self._stores.values():
            for cell_map in store.index:
                tids.update(cell_map)
        return tids

    def domain(self) -> set[Term]:
        """``Dom``: all terms occurring in (live) facts."""
        term_of = self._term_of
        return {term_of[tid] for tid in self._live_tids()}

    def nulls(self) -> set[Null]:
        return {t for t in self.domain() if isinstance(t, Null)}

    def constants(self) -> set[Constant]:
        return {t for t in self.domain() if isinstance(t, Constant)}

    @property
    def is_database(self) -> bool:
        """True iff only constants appear (the paper's notion of database)."""
        return not self.nulls()

    def null_free_part(self) -> "ColumnarInstance":
        """``J↓``: the facts that contain no labelled nulls."""
        return ColumnarInstance(f for f in self if not f.nulls())

    def apply(self, mapping: Mapping[Term, Term]) -> "ColumnarInstance":
        """A new columnar instance with the mapping applied to every fact."""
        return ColumnarInstance(f.apply(mapping) for f in self)
