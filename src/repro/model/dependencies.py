"""Tuple generating dependencies (TGDs) and equality generating dependencies
(EGDs).

A TGD has the form  ``∀x∀y ϕ(x, y) → ∃z ψ(x, z)``; it is *full* (universally
quantified) when ``z`` is empty, otherwise *existentially quantified*.
An EGD has the form ``∀x ϕ(x) → x1 = x2``.

EGDs are always *full* dependencies: the paper's ``Σ∀`` contains all full
TGDs and all EGDs, while ``Σ∃`` contains the existentially quantified TGDs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, Union

from .atoms import Atom, Position, atoms_constants, atoms_variables
from .terms import Constant, Term, Variable


class Dependency:
    """Common base class of :class:`TGD` and :class:`EGD`."""

    __slots__ = ("body", "label", "_hash")

    body: tuple[Atom, ...]
    label: str

    # -- classification ------------------------------------------------

    @property
    def is_tgd(self) -> bool:
        return isinstance(self, TGD)

    @property
    def is_egd(self) -> bool:
        return isinstance(self, EGD)

    @property
    def is_full(self) -> bool:
        """Full (universally quantified) dependencies: EGDs and full TGDs."""
        raise NotImplementedError

    @property
    def is_existential(self) -> bool:
        return not self.is_full

    # -- structure -------------------------------------------------------

    def body_variables(self) -> set[Variable]:
        return atoms_variables(self.body)

    def body_constants(self) -> set[Constant]:
        return atoms_constants(self.body)

    def variables(self) -> set[Variable]:
        raise NotImplementedError

    def body_positions_of(self, var: Variable) -> list[Position]:
        """All positions at which ``var`` occurs in the body."""
        out = []
        for atom in self.body:
            for i, t in enumerate(atom.args):
                if t is var:
                    out.append(Position(atom.predicate, i))
        return out

    def rename_variables(self, suffix: str) -> "Dependency":
        """Return a copy with every variable renamed (``x`` → ``x#suffix``).

        Used to rename dependencies apart before unification-based analyses.
        """
        raise NotImplementedError

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Dependency") -> bool:
        return str(self) < str(other)


class TGD(Dependency):
    """A tuple generating dependency ``ϕ(x, y) → ∃z ψ(x, z)``.

    ``body`` and ``head`` are tuples of atoms.  The existentially quantified
    variables are exactly the head variables that do not occur in the body;
    they may also be given explicitly via ``existential`` (the order given
    there is preserved — the adornment algorithm processes existential
    variables "following the order they appear in z").
    """

    __slots__ = ("head", "existential")

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        existential: Sequence[Variable] | None = None,
        label: str = "",
    ) -> None:
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head", tuple(head))
        if not self.body:
            raise ValueError("a TGD needs a non-empty body")
        if not self.head:
            raise ValueError("a TGD needs a non-empty head")
        body_vars = atoms_variables(self.body)
        head_vars = atoms_variables(self.head)
        inferred = head_vars - body_vars
        if existential is None:
            ordered: list[Variable] = []
            for atom in self.head:
                for t in atom.args:
                    if isinstance(t, Variable) and t in inferred and t not in ordered:
                        ordered.append(t)
            existential = ordered
        else:
            existential = list(existential)
            if set(existential) != inferred:
                raise ValueError(
                    f"existential variables {sorted(v.name for v in inferred)} "
                    f"do not match the declared ones "
                    f"{sorted(v.name for v in existential)}"
                )
        object.__setattr__(self, "existential", tuple(existential))
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("TGD", self.body, self.head)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TGD is immutable")

    # -- structure -------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return not self.existential

    def head_variables(self) -> set[Variable]:
        return atoms_variables(self.head)

    def frontier(self) -> set[Variable]:
        """Variables occurring in both body and head (the TGD's frontier).

        The semi-oblivious chase identifies triggers by their restriction to
        the frontier.
        """
        return self.body_variables() & self.head_variables()

    def variables(self) -> set[Variable]:
        return self.body_variables() | self.head_variables()

    def existential_variables(self) -> tuple[Variable, ...]:
        return self.existential

    def head_positions_of(self, var: Variable) -> list[Position]:
        out = []
        for atom in self.head:
            for i, t in enumerate(atom.args):
                if t is var:
                    out.append(Position(atom.predicate, i))
        return out

    def rename_variables(self, suffix: str) -> "TGD":
        ren: dict[Term, Term] = {
            v: Variable(f"{v.name}#{suffix}") for v in self.variables()
        }
        return TGD(
            [a.apply(ren) for a in self.body],
            [a.apply(ren) for a in self.head],
            existential=[ren[v] for v in self.existential],  # type: ignore[misc]
            label=self.label,
        )

    def _key(self) -> tuple:
        return (self.body, self.head)

    def __repr__(self) -> str:
        return f"TGD({self.label or str(self)!r})"

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.body)
        head = " ∧ ".join(str(a) for a in self.head)
        if self.existential:
            ex = " ".join(f"∃{v.name}" for v in self.existential)
            return f"{body} → {ex} {head}"
        return f"{body} → {head}"


class EGD(Dependency):
    """An equality generating dependency ``ϕ(x, y) → x1 = x2``."""

    __slots__ = ("lhs", "rhs")

    def __init__(
        self,
        body: Sequence[Atom],
        lhs: Variable,
        rhs: Variable,
        label: str = "",
    ) -> None:
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise ValueError("an EGD needs a non-empty body")
        if not isinstance(lhs, Variable) or not isinstance(rhs, Variable):
            raise TypeError("EGD equality sides must be variables")
        body_vars = atoms_variables(self.body)
        if lhs not in body_vars or rhs not in body_vars:
            raise ValueError("EGD equality variables must occur in the body")
        if lhs is rhs:
            raise ValueError("trivial EGD: both equality sides are the same variable")
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("EGD", self.body, lhs, rhs)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EGD is immutable")

    @property
    def is_full(self) -> bool:
        return True

    def variables(self) -> set[Variable]:
        return self.body_variables()

    def rename_variables(self, suffix: str) -> "EGD":
        ren: dict[Term, Term] = {
            v: Variable(f"{v.name}#{suffix}") for v in self.variables()
        }
        return EGD(
            [a.apply(ren) for a in self.body],
            ren[self.lhs],  # type: ignore[arg-type]
            ren[self.rhs],  # type: ignore[arg-type]
            label=self.label,
        )

    def _key(self) -> tuple:
        return (self.body, self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"EGD({self.label or str(self)!r})"

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.body)
        return f"{body} → {self.lhs.name} = {self.rhs.name}"


AnyDependency = Union[TGD, EGD]


class DependencySet:
    """An ordered, duplicate-free set of dependencies Σ.

    Provides the paper's standard partitions:

    * ``tgds`` / ``egds``              — Σtgd and Σegd;
    * ``full`` / ``existential``       — Σ∀ (full TGDs + all EGDs) and Σ∃.
    """

    __slots__ = ("_deps", "_index")

    def __init__(self, deps: Iterable[AnyDependency] = ()) -> None:
        self._deps: list[AnyDependency] = []
        self._index: dict[AnyDependency, int] = {}
        for d in deps:
            self.add(d)

    def add(self, dep: AnyDependency) -> None:
        if not isinstance(dep, (TGD, EGD)):
            raise TypeError(f"{dep!r} is not a dependency")
        if dep not in self._index:
            self._index[dep] = len(self._deps)
            self._deps.append(dep)

    # -- container protocol ----------------------------------------------

    def __iter__(self) -> Iterator[AnyDependency]:
        return iter(self._deps)

    def __len__(self) -> int:
        return len(self._deps)

    def __contains__(self, dep: object) -> bool:
        return dep in self._index

    def __getitem__(self, i: int) -> AnyDependency:
        return self._deps[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencySet):
            return NotImplemented
        return set(self._deps) == set(other._deps)

    def __hash__(self) -> int:
        return hash(frozenset(self._deps))

    def __repr__(self) -> str:
        return f"DependencySet({len(self)} dependencies)"

    def __str__(self) -> str:
        return "\n".join(
            f"{d.label + ': ' if d.label else ''}{d}" for d in self._deps
        )

    # -- partitions --------------------------------------------------------

    @property
    def tgds(self) -> list[TGD]:
        """Σtgd: all TGDs."""
        return [d for d in self._deps if isinstance(d, TGD)]

    @property
    def egds(self) -> list[EGD]:
        """Σegd: all EGDs."""
        return [d for d in self._deps if isinstance(d, EGD)]

    @property
    def full(self) -> list[AnyDependency]:
        """Σ∀: full TGDs and all EGDs."""
        return [d for d in self._deps if d.is_full]

    @property
    def existential(self) -> list[TGD]:
        """Σ∃: existentially quantified TGDs."""
        return [d for d in self._deps if not d.is_full]

    def tgds_only(self) -> "DependencySet":
        """The sub-set consisting of the TGDs (drops EGDs)."""
        return DependencySet(self.tgds)

    def restricted_to(self, deps: Iterable[AnyDependency]) -> "DependencySet":
        """The sub-set containing exactly ``deps`` (order preserved)."""
        wanted = set(deps)
        return DependencySet(d for d in self._deps if d in wanted)

    # -- schema ------------------------------------------------------------

    def predicates(self) -> dict[str, int]:
        """Predicate name → arity for every predicate mentioned in Σ.

        Raises if a predicate is used with two different arities.
        """
        out: dict[str, int] = {}
        for d in self._deps:
            atoms: tuple[Atom, ...] = d.body
            if isinstance(d, TGD):
                atoms = atoms + d.head
            for a in atoms:
                known = out.get(a.predicate)
                if known is None:
                    out[a.predicate] = a.arity
                elif known != a.arity:
                    raise ValueError(
                        f"predicate {a.predicate} used with arities "
                        f"{known} and {a.arity}"
                    )
        return out

    def positions(self) -> list[Position]:
        """All positions of the schema induced by Σ."""
        return [
            Position(p, i)
            for p, ar in sorted(self.predicates().items())
            for i in range(ar)
        ]

    def constants(self) -> set[Constant]:
        out: set[Constant] = set()
        for d in self._deps:
            out.update(d.body_constants())
            if isinstance(d, TGD):
                out.update(atoms_constants(d.head))
        return out

    def relabel(self, prefix: str = "r") -> "DependencySet":
        """Return a copy where dependencies are labelled ``r1, r2, ...``.

        Existing labels are overwritten; useful for pretty-printing
        generated sets.
        """
        out = DependencySet()
        for i, d in enumerate(self._deps, start=1):
            if isinstance(d, TGD):
                out.add(TGD(d.body, d.head, d.existential, label=f"{prefix}{i}"))
            else:
                out.add(EGD(d.body, d.lhs, d.rhs, label=f"{prefix}{i}"))
        return out


def dependency_set(*deps: AnyDependency) -> DependencySet:
    """Convenience constructor: ``dependency_set(r1, r2, r3)``."""
    return DependencySet(deps)
