"""Serialisation: dependency sets and instances to/from JSON.

The text format of :mod:`repro.model.parser` is the human-facing syntax;
the JSON format here is the machine-facing one (stable field names, easy
to diff, round-trips nulls exactly).  Used to snapshot generated corpora
and chase results.

Schema (informal)::

    dependency set:  {"dependencies": [{"kind": "tgd"|"egd", ...}, ...]}
    tgd:             {"kind": "tgd", "label": str, "body": [atom, ...],
                      "head": [atom, ...], "existential": [str, ...]}
    egd:             {"kind": "egd", "label": str, "body": [atom, ...],
                      "lhs": str, "rhs": str}
    atom:            {"predicate": str, "args": [term, ...]}
    term:            {"var": str} | {"const": value} | {"null": int}
    instance:        {"facts": [atom, ...]}
"""

from __future__ import annotations

import json
from typing import Any

from .model.atoms import Atom
from .model.dependencies import EGD, TGD, AnyDependency, DependencySet
from .model.instances import Instance
from .model.terms import Constant, Null, Term, Variable


class SerialisationError(ValueError):
    """Raised on malformed JSON payloads."""


# -- terms --------------------------------------------------------------------


def term_to_json(t: Term) -> dict:
    """One term → its single-key JSON object."""
    if isinstance(t, Variable):
        return {"var": t.name}
    if isinstance(t, Constant):
        return {"const": t.value}
    if isinstance(t, Null):
        return {"null": t.label}
    raise SerialisationError(f"cannot serialise term {t!r}")


def term_from_json(data: dict) -> Term:
    """Inverse of :func:`term_to_json`."""
    if not isinstance(data, dict) or len(data) != 1:
        raise SerialisationError(f"bad term payload: {data!r}")
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return Constant(data["const"])
    if "null" in data:
        return Null(int(data["null"]))
    raise SerialisationError(f"bad term payload: {data!r}")


# -- atoms --------------------------------------------------------------------


def atom_to_json(atom: Atom) -> dict:
    """One atom → JSON."""
    return {
        "predicate": atom.predicate,
        "args": [term_to_json(t) for t in atom.args],
    }


def atom_from_json(data: dict) -> Atom:
    """Inverse of :func:`atom_to_json`."""
    try:
        return Atom(
            data["predicate"], [term_from_json(t) for t in data["args"]]
        )
    except (KeyError, TypeError) as exc:
        raise SerialisationError(f"bad atom payload: {data!r}") from exc


# -- dependencies --------------------------------------------------------------


def dependency_to_json(dep: AnyDependency) -> dict:
    """One TGD/EGD → JSON (kind-tagged)."""
    if isinstance(dep, TGD):
        return {
            "kind": "tgd",
            "label": dep.label,
            "body": [atom_to_json(a) for a in dep.body],
            "head": [atom_to_json(a) for a in dep.head],
            "existential": [v.name for v in dep.existential],
        }
    return {
        "kind": "egd",
        "label": dep.label,
        "body": [atom_to_json(a) for a in dep.body],
        "lhs": dep.lhs.name,
        "rhs": dep.rhs.name,
    }


def dependency_from_json(data: dict) -> AnyDependency:
    """Inverse of :func:`dependency_to_json`."""
    try:
        kind = data["kind"]
        body = [atom_from_json(a) for a in data["body"]]
        if kind == "tgd":
            return TGD(
                body,
                [atom_from_json(a) for a in data["head"]],
                existential=[Variable(n) for n in data.get("existential", [])],
                label=data.get("label", ""),
            )
        if kind == "egd":
            return EGD(
                body,
                Variable(data["lhs"]),
                Variable(data["rhs"]),
                label=data.get("label", ""),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerialisationError(f"bad dependency payload: {data!r}") from exc
    raise SerialisationError(f"unknown dependency kind {data.get('kind')!r}")


# -- top level -------------------------------------------------------------------


def dependencies_to_json(sigma: DependencySet) -> dict:
    """A dependency set → JSON."""
    return {"dependencies": [dependency_to_json(d) for d in sigma]}


def dependencies_from_json(data: dict) -> DependencySet:
    """Inverse of :func:`dependencies_to_json`."""
    try:
        payload = data["dependencies"]
    except (KeyError, TypeError) as exc:
        raise SerialisationError("missing 'dependencies' key") from exc
    return DependencySet(dependency_from_json(d) for d in payload)


def instance_to_json(inst: Instance) -> dict:
    """An instance → JSON (facts sorted for stable diffs)."""
    return {"facts": [atom_to_json(f) for f in sorted(inst, key=str)]}


def instance_from_json(data: dict) -> Instance:
    """Inverse of :func:`instance_to_json`."""
    try:
        payload = data["facts"]
    except (KeyError, TypeError) as exc:
        raise SerialisationError("missing 'facts' key") from exc
    return Instance(atom_from_json(a) for a in payload)


# -- JSONL ---------------------------------------------------------------------


def jsonl_dumps(record: dict) -> str:
    """One record → one compact JSON line (no newline appended).

    Keys are sorted so identical records always serialise identically —
    the batch result cache (:mod:`repro.batch.cache`) relies on this for
    stable diffs of its on-disk log.
    """
    text = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if "\n" in text:  # only possible via exotic payloads; keep lines atomic
        raise SerialisationError("JSONL records must serialise to one line")
    return text


def iter_jsonl(text: str) -> Any:
    """Yield ``(line_number, record_or_None)`` for each non-blank line.

    Malformed lines — truncated tails of an interrupted writer, garbage
    from a corrupted disk — yield ``None`` instead of raising, so a
    reader can count and skip them while keeping every intact record
    before *and after* the damage.
    """
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            yield i, None
            continue
        yield i, record if isinstance(record, dict) else None


def dumps(obj: DependencySet | Instance, indent: int | None = 2) -> str:
    """JSON text for a dependency set or an instance."""
    if isinstance(obj, DependencySet):
        return json.dumps(dependencies_to_json(obj), indent=indent)
    if isinstance(obj, Instance):
        return json.dumps(instance_to_json(obj), indent=indent)
    raise SerialisationError(f"cannot serialise {type(obj).__name__}")


def loads(text: str) -> DependencySet | Instance:
    """Inverse of :func:`dumps` (dispatches on the top-level key)."""
    data: Any = json.loads(text)
    if isinstance(data, dict) and "dependencies" in data:
        return dependencies_from_json(data)
    if isinstance(data, dict) and "facts" in data:
        return instance_from_json(data)
    raise SerialisationError("expected a 'dependencies' or 'facts' object")
