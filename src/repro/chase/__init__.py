"""Chase engine: standard / oblivious / semi-oblivious / core chase,
sequence exploration, and Skolemisation."""

from .core_chase import core_chase, core_chase_step
from .explorer import (
    DISCOVERY_MODES,
    SNAPSHOT_BACKENDS,
    ExplorationResult,
    ExplorationVerdict,
    canonical_key,
    explore_chase,
)
from .provenance import Derivation, ProvenanceIndex, explain
from .result import ChaseResult, ChaseStatus
from .runner import ChaseRunner, run_chase
from .skolem import (
    SaturationResult,
    SkolemisedTGD,
    SkolemTerm,
    critical_instance,
    saturate,
    skolemise,
)
from .step import StepOutcome, Substitution, Trigger, apply_step, egd_substitution
from .strategies import (
    NAMED_STRATEGIES,
    Strategy,
    egd_first,
    existential_first,
    fifo,
    full_first,
    lifo,
    random_strategy,
    resolve_strategy,
)

__all__ = [
    "core_chase",
    "core_chase_step",
    "DISCOVERY_MODES",
    "SNAPSHOT_BACKENDS",
    "ExplorationResult",
    "ExplorationVerdict",
    "canonical_key",
    "explore_chase",
    "Derivation",
    "ProvenanceIndex",
    "explain",
    "ChaseResult",
    "ChaseStatus",
    "ChaseRunner",
    "run_chase",
    "SaturationResult",
    "SkolemisedTGD",
    "SkolemTerm",
    "critical_instance",
    "saturate",
    "skolemise",
    "StepOutcome",
    "Substitution",
    "Trigger",
    "apply_step",
    "egd_substitution",
    "NAMED_STRATEGIES",
    "Strategy",
    "egd_first",
    "existential_first",
    "fifo",
    "full_first",
    "lifo",
    "random_strategy",
    "resolve_strategy",
]
