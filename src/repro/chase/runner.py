"""The sequential chase runner: standard, oblivious, and semi-oblivious.

The runner owns a working instance and a pool of *pending* candidate
triggers.  Discovery is incremental (new facts seed new body matches), while
a full sweep runs whenever the pool drains, guaranteeing exhaustiveness:

* a trigger that fails its applicability check is dead **permanently** for
  every variant (a satisfied TGD trigger stays satisfied under both fact
  additions and EGD merges; an EGD trigger with equal images stays equal;
  a fired oblivious key stays fired), so pruning at pop time is sound;
* EGD merges rewrite the instance, every pending trigger, and every
  recorded (semi-)oblivious trigger key — implementing the paper's
  ``h_i(x) = h_j(x)γ_j···γ_{i-1}`` composed-substitution comparison;
* rewritten facts count as *new* facts for discovery (a merge can enable
  body matches with repeated variables, e.g. ``E(x,x)`` after ``E(a,η)``
  collapses to ``E(a,a)``).

Variant-specific applicability (Section 2):

* standard: TGD triggers must have no head extension in the current
  instance; EGD triggers need ``h(x1) ≠ h(x2)``;
* oblivious: each trigger fires at most once, keyed on all body variables;
* semi-oblivious: keyed on the variables shared between body and head
  (the TGD frontier; for an EGD, the two equated variables).
"""

from __future__ import annotations

from typing import Iterable

from ..homomorphism.finder import find_homomorphism, find_homomorphisms
from ..homomorphism.satisfaction import violations
from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.instances import Instance
from ..model.terms import GroundTerm, Null, NullFactory, Variable
from .result import ChaseResult, ChaseStatus
from .step import StepOutcome, Substitution, Trigger, apply_step
from .strategies import Strategy, resolve_strategy

VARIANTS = ("standard", "oblivious", "semi_oblivious")


class ChaseBudgetExceeded(Exception):
    """Internal signal: step budget exhausted (mapped to EXCEEDED status)."""


def _key_variables(dep: AnyDependency, variant: str) -> tuple[Variable, ...]:
    """The variables identifying a trigger for the given chase variant."""
    if variant == "oblivious":
        return tuple(sorted(dep.body_variables(), key=lambda v: v.name))
    # semi-oblivious: variables occurring in both body and head.
    if isinstance(dep, TGD):
        shared = dep.frontier()
    else:
        shared = {dep.lhs, dep.rhs}
    return tuple(sorted(shared, key=lambda v: v.name))


class ChaseRunner:
    """Runs one chase sequence over a private copy of the database."""

    def __init__(
        self,
        database: Instance,
        sigma: DependencySet,
        variant: str = "standard",
        strategy: Strategy | str = "fifo",
        max_steps: int = 10_000,
        copy_database: bool = True,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown chase variant {variant!r}; known: {VARIANTS}")
        self.sigma = sigma
        self.variant = variant
        self.strategy = resolve_strategy(strategy)
        self.max_steps = max_steps
        self.instance = database.copy() if copy_database else database
        start = max((n.label for n in self.instance.nulls()), default=0) + 1
        self.nulls = NullFactory(start=start)
        self.steps: list[StepOutcome] = []
        self._pending: list[Trigger] = []
        self._seen: set[Trigger] = set()
        self._fired_keys: set[tuple] = set()
        self._key_vars: dict[AnyDependency, tuple[Variable, ...]] = {}
        if variant != "standard":
            self._key_vars = {d: _key_variables(d, variant) for d in sigma}

    # -- discovery ---------------------------------------------------------

    def _push(self, trigger: Trigger) -> None:
        if trigger not in self._seen:
            self._seen.add(trigger)
            self._pending.append(trigger)

    def _discover_full(self) -> None:
        """Full sweep: (re)discover every candidate trigger."""
        if self.variant == "standard":
            for dep in self.sigma:
                for h in violations(self.instance, dep):
                    self._push(Trigger.make(dep, h))
        else:
            for dep in self.sigma:
                for h in find_homomorphisms(dep.body, self.instance, limit=None):
                    self._push(Trigger.make(dep, h))

    def _discover_from_facts(self, new_facts: Iterable[Atom]) -> None:
        """Find candidate triggers whose body uses one of the new facts."""
        facts = [f for f in new_facts if f in self.instance]
        if not facts:
            return
        by_pred: dict[str, list[Atom]] = {}
        for f in facts:
            by_pred.setdefault(f.predicate, []).append(f)
        for dep in self.sigma:
            for idx, atom in enumerate(dep.body):
                for fact in by_pred.get(atom.predicate, ()):
                    seed = self._seed_from(atom, fact)
                    if seed is None:
                        continue
                    for h in find_homomorphisms(
                        dep.body, self.instance, seed=seed, limit=None
                    ):
                        self._push(Trigger.make(dep, h))

    @staticmethod
    def _seed_from(atom: Atom, fact: Atom) -> dict | None:
        """Partial mapping sending ``atom`` onto ``fact`` (or None)."""
        if atom.arity != fact.arity:
            return None
        seed: dict = {}
        for s, t in zip(atom.args, fact.args):
            if isinstance(s, Variable):
                bound = seed.get(s)
                if bound is None:
                    seed[s] = t
                elif bound is not t:
                    return None
            elif s is not t:  # constant mismatch
                return None
        return seed

    # -- applicability -------------------------------------------------------

    def _applicable(self, trigger: Trigger) -> bool:
        dep = trigger.dependency
        h = trigger.mapping()
        if isinstance(dep, EGD) and h[dep.lhs] is h[dep.rhs]:
            return False
        if self.variant == "standard":
            if isinstance(dep, TGD):
                seed = {v: h[v] for v in dep.frontier()}
                ext = find_homomorphism(
                    dep.head, self.instance, seed=seed, frozen_nulls=True
                )
                return ext is None
            return True
        key = trigger.key(self._key_vars[dep])
        return key not in self._fired_keys

    # -- merges ---------------------------------------------------------------

    def _apply_gamma(self, gamma: Substitution) -> list[Atom]:
        """Rewrite bookkeeping after an EGD merge; returns rewritten facts."""
        old, new = gamma.old, gamma.new
        rewritten = [f for f in self.instance.with_term(new)]
        # with_term(new) after the merge contains both pre-existing facts on
        # `new` and the rewritten ones; treating all of them as "new facts"
        # for discovery is harmless (deduped via _seen).
        self._pending = [t.rewrite(old, new) for t in self._pending]
        self._seen = set(self._pending)
        if self._fired_keys:
            self._fired_keys = {
                (dep, tuple(new if t is old else t for t in images))
                for dep, images in self._fired_keys
            }
        return rewritten

    # -- main loop -------------------------------------------------------------

    def run(self) -> ChaseResult:
        self._discover_full()
        while True:
            if len(self.steps) >= self.max_steps:
                return ChaseResult(
                    ChaseStatus.EXCEEDED, self.instance, self.steps, self.variant
                )
            trigger = self._next_applicable()
            if trigger is None:
                return ChaseResult(
                    ChaseStatus.SUCCESS, self.instance, self.steps, self.variant
                )
            if self.variant != "standard":
                self._fired_keys.add(trigger.key(self._key_vars[trigger.dependency]))
            outcome = apply_step(self.instance, trigger, self.nulls)
            self.steps.append(outcome)
            if outcome.failed:
                return ChaseResult(ChaseStatus.FAILURE, None, self.steps, self.variant)
            if outcome.gamma is not None:
                rewritten = self._apply_gamma(outcome.gamma)
                self._discover_from_facts(rewritten)
            if outcome.added:
                self._discover_from_facts(outcome.added)

    def _next_applicable(self) -> Trigger | None:
        """Pop pending triggers per strategy until one is applicable.

        Dead triggers are dropped permanently (see module docstring).  When
        the pool drains, one full sweep re-checks exhaustiveness before
        concluding the sequence is finished.
        """
        swept = False
        while True:
            while self._pending:
                i = self.strategy(self._pending)
                trigger = self._pending.pop(i)
                if self._applicable(trigger):
                    return trigger
            if swept:
                return None
            self._seen.clear()
            self._discover_full()
            self._pending = [t for t in self._pending if self._applicable(t)]
            self._seen = set(self._pending)
            swept = True
            if not self._pending:
                return None


def run_chase(
    database: Instance,
    sigma: DependencySet,
    variant: str = "standard",
    strategy: Strategy | str = "fifo",
    max_steps: int = 10_000,
) -> ChaseResult:
    """Run one chase sequence of ``database`` with ``sigma``.

    ``variant`` is one of ``standard``, ``oblivious``, ``semi_oblivious``;
    ``strategy`` resolves the nondeterministic choice among applicable
    steps.  The input database is not modified.
    """
    runner = ChaseRunner(database, sigma, variant, strategy, max_steps)
    return runner.run()
