"""The sequential chase runner: standard, oblivious, and semi-oblivious.

The runner owns a working instance and a pool of *pending* candidate
triggers.  Discovery is **semi-naive**: the instance's delta log feeds each
newly added (or merge-rewritten) fact into the indexed matching engine,
which joins it only against bodies mentioning its predicate.  There is no
"full sweep on drain" any more; DESIGN.md ("Indexed matching and semi-naive
discovery") states and proves the invariant that replaces it:

* every body homomorphism into the current instance was discovered either
  by the initial full discovery or when the *latest-added* fact of its
  image entered the delta log — facts removed by an EGD merge contain the
  merged-away null and can never reappear, so "latest-added" is well
  defined;
* a trigger that fails its applicability check is dead **permanently** for
  every variant (a satisfied TGD trigger stays satisfied under both fact
  additions and EGD merges; an EGD trigger with equal images stays equal;
  a fired oblivious key stays fired), so pruning at pop time is sound;
* EGD merges rewrite the instance, every pending trigger, and every
  recorded (semi-)oblivious trigger key — implementing the paper's
  ``h_i(x) = h_j(x)γ_j···γ_{i-1}`` composed-substitution comparison;
* rewritten facts re-enter the delta log and count as *new* facts for
  discovery (a merge can enable body matches with repeated variables,
  e.g. ``E(x,x)`` after ``E(a,η)`` collapses to ``E(a,a)``).

Each discovery batch is pushed in a canonical order (dependency order in Σ,
then assignment images), so a run's step sequence depends only on the *set*
of homomorphisms each discovery finds — the indexed engine and the naive
reference backend (``engine="naive"``) drive byte-identical chase runs,
which the differential test suite exploits.

Variant-specific applicability (Section 2):

* standard: TGD triggers must have no head extension in the current
  instance; EGD triggers need ``h(x1) ≠ h(x2)``;
* oblivious: each trigger fires at most once, keyed on all body variables;
* semi-oblivious: keyed on the variables shared between body and head
  (the TGD frontier; for an EGD, the two equated variables).
"""

from __future__ import annotations

from typing import Iterable

from ..budget import Budget
from ..homomorphism.finder import find_homomorphism, find_homomorphisms
from ..homomorphism.satisfaction import violations
from ..matching import (
    body_atom_index,
    delta_homomorphisms,
    delta_row_homomorphisms,
    get_backend,
    using_backend,
    warm_plans,
)
from ..model.atoms import Atom
from ..model.columnar import ColumnarInstance
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.instances import Instance
from ..model.terms import GroundTerm, Null, NullFactory, Variable
from .result import ChaseResult, ChaseStatus
from .step import StepOutcome, Substitution, Trigger, apply_step
from .strategies import Strategy, resolve_strategy

VARIANTS = ("standard", "oblivious", "semi_oblivious")


class ChaseBudgetExceeded(Exception):
    """Internal signal: step budget exhausted (mapped to EXCEEDED status)."""


def _key_variables(dep: AnyDependency, variant: str) -> tuple[Variable, ...]:
    """The variables identifying a trigger for the given chase variant."""
    if variant == "oblivious":
        return tuple(sorted(dep.body_variables(), key=lambda v: v.name))
    # semi-oblivious: variables occurring in both body and head.
    if isinstance(dep, TGD):
        shared = dep.frontier()
    else:
        shared = {dep.lhs, dep.rhs}
    return tuple(sorted(shared, key=lambda v: v.name))


class ChaseRunner:
    """Runs one chase sequence over a private copy of the database."""

    def __init__(
        self,
        database: Instance,
        sigma: DependencySet,
        variant: str = "standard",
        strategy: Strategy | str = "fifo",
        max_steps: int = 10_000,
        copy_database: bool = True,
        engine: str | None = None,
        check_exhaustive: bool = False,
        budget: Budget | None = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown chase variant {variant!r}; known: {VARIANTS}")
        self.sigma = sigma
        self.variant = variant
        self.strategy = resolve_strategy(strategy)
        self.max_steps = max_steps
        # The step cap is one dimension of the run budget; an explicit
        # budget adds fact/wall-clock bounds and cancellation on top.
        self.budget = budget if budget is not None else Budget()
        self.engine = engine
        self.check_exhaustive = check_exhaustive
        # Under the columnar backend the working instance is columnar:
        # conversion happens here (once, at chase start) so every step,
        # discovery and satisfaction check downstream runs on int columns.
        eff = engine if engine is not None else get_backend()
        if eff == "columnar" and not isinstance(database, ColumnarInstance):
            self.instance: Instance | ColumnarInstance = ColumnarInstance(database)
        elif copy_database:
            self.instance = database.copy()
        else:
            self.instance = database
        start = max((n.label for n in self.instance.nulls()), default=0) + 1
        self.nulls = NullFactory(start=start)
        self.steps: list[StepOutcome] = []
        self._pending: list[Trigger] = []
        self._seen: set[Trigger] = set()
        self._fired_keys: set[tuple] = set()
        self._key_vars: dict[AnyDependency, tuple[Variable, ...]] = {}
        if variant != "standard":
            self._key_vars = {d: _key_variables(d, variant) for d in sigma}
        self._dep_order = {d: i for i, d in enumerate(sigma)}
        self._body_index = body_atom_index((d, d.body) for d in sigma)
        self._tick = 0

    # -- discovery ---------------------------------------------------------

    def _trigger_sort_key(self, trigger: Trigger) -> tuple:
        return (
            self._dep_order[trigger.dependency],
            tuple(repr(t) for _, t in trigger.assignment),
        )

    def _push_batch(self, triggers: Iterable[Trigger]) -> None:
        """Push one discovery batch in canonical order (see module docstring)."""
        batch = [t for t in triggers if t not in self._seen]
        batch.sort(key=self._trigger_sort_key)
        for t in batch:
            if t not in self._seen:  # batch may repeat a trigger
                self._seen.add(t)
                self._pending.append(t)

    def _discover_initial(self) -> None:
        """Full discovery over the starting instance."""
        batch = []
        if self.variant == "standard":
            for dep in self.sigma:
                for h in violations(self.instance, dep):
                    batch.append(Trigger.make(dep, h))
        else:
            for dep in self.sigma:
                for h in find_homomorphisms(dep.body, self.instance, limit=None):
                    batch.append(Trigger.make(dep, h))
        self._push_batch(batch)

    def _discover_delta(self) -> None:
        """Semi-naive discovery: join the delta-log facts added since the
        last call against the bodies mentioning their predicates."""
        inst = self.instance
        if isinstance(inst, ColumnarInstance):
            # Row-handle path: no Atom is materialised for discovery; dead
            # rows (discarded or merge-rewritten since being logged) are
            # the liveness filter's analogue of the membership check below.
            handles = inst.added_rows_since(self._tick)
            self._tick = inst.tick
            live_rows = [hd for hd in handles if inst.row_live(hd)]
            if not live_rows:
                return
            self._push_batch(
                Trigger.make(dep, h)
                for dep, h in delta_row_homomorphisms(
                    self._body_index, inst, live_rows
                )
            )
            return
        delta = inst.added_since(self._tick)
        self._tick = inst.tick
        if not delta:
            return
        live = [f for f in delta if f in inst]
        if not live:
            return
        batch = [
            Trigger.make(dep, h)
            for dep, h in delta_homomorphisms(self._body_index, inst, live)
        ]
        self._push_batch(batch)

    # -- applicability -------------------------------------------------------

    def _applicable(self, trigger: Trigger) -> bool:
        dep = trigger.dependency
        h = trigger.mapping()
        if isinstance(dep, EGD) and h[dep.lhs] is h[dep.rhs]:
            return False
        if self.variant == "standard":
            if isinstance(dep, TGD):
                seed = {v: h[v] for v in dep.frontier()}
                ext = find_homomorphism(
                    dep.head, self.instance, seed=seed, frozen_nulls=True
                )
                return ext is None
            return True
        key = trigger.key(self._key_vars[dep])
        return key not in self._fired_keys

    # -- merges ---------------------------------------------------------------

    def _apply_gamma(self, gamma: Substitution) -> None:
        """Rewrite trigger bookkeeping after an EGD merge.

        The instance itself was already rewritten by the step; the rewritten
        facts re-entered the delta log and are picked up by the next
        ``_discover_delta`` call.
        """
        old, new = gamma.old, gamma.new
        self._pending = [t.rewrite(old, new) for t in self._pending]
        self._seen = set(self._pending)
        if self._fired_keys:
            self._fired_keys = {
                (dep, tuple(new if t is old else t for t in images))
                for dep, images in self._fired_keys
            }

    # -- main loop -------------------------------------------------------------

    def run(self) -> ChaseResult:
        if self.engine is None:  # inherit the ambient matching backend
            return self._run()
        with using_backend(self.engine):
            return self._run()

    def _run(self) -> ChaseResult:
        # Compile the per-dependency join plans up front (a no-op unless
        # the "planned" backend is active in this context).
        warm_plans((d.body for d in self.sigma), self.instance)
        self._discover_initial()
        self._tick = self.instance.tick
        facts_seen = len(self.instance)
        self.budget.charge_facts(facts_seen)
        while True:
            if len(self.steps) >= self.max_steps:
                return ChaseResult(
                    ChaseStatus.EXCEEDED, self.instance, self.steps, self.variant
                )
            if not self.budget.charge():
                return ChaseResult(
                    ChaseStatus.EXCEEDED, self.instance, self.steps, self.variant,
                    exhausted=self.budget.exhausted,
                )
            trigger = self._next_applicable()
            if trigger is None:
                if self.check_exhaustive:
                    self._assert_exhaustive()
                return ChaseResult(
                    ChaseStatus.SUCCESS, self.instance, self.steps, self.variant
                )
            if self.variant != "standard":
                self._fired_keys.add(trigger.key(self._key_vars[trigger.dependency]))
            outcome = apply_step(self.instance, trigger, self.nulls)
            self.steps.append(outcome)
            if outcome.failed:
                return ChaseResult(ChaseStatus.FAILURE, None, self.steps, self.variant)
            if outcome.gamma is not None:
                self._apply_gamma(outcome.gamma)
            self._discover_delta()
            if len(self.instance) > facts_seen:
                self.budget.charge_facts(len(self.instance) - facts_seen)
                facts_seen = len(self.instance)

    def _next_applicable(self) -> Trigger | None:
        """Pop pending triggers per strategy until one is applicable.

        Dead triggers are dropped permanently and the pool is never
        re-swept: semi-naive discovery keeps it complete at all times (the
        invariant in the module docstring / DESIGN.md).
        """
        # repro-lint: disable=budget-loop -- pool strictly shrinks: every iteration pops one trigger; the caller's step loop charges the budget
        while self._pending:
            i = self.strategy(self._pending)
            trigger = self._pending.pop(i)
            if self._applicable(trigger):
                return trigger
        return None

    def _assert_exhaustive(self) -> None:
        """Debug oracle: re-run full discovery and verify nothing fires.

        This is the seed's drain-time sweep, demoted to an assertion.  The
        differential tests enable it to certify the semi-naive invariant on
        every terminating run they produce.
        """
        for dep in self.sigma:
            for h in find_homomorphisms(dep.body, self.instance, limit=None):
                if self._applicable(Trigger.make(dep, h)):
                    raise AssertionError(
                        f"semi-naive discovery missed an applicable trigger "
                        f"for {dep} under {h}"
                    )


def run_chase(
    database: Instance,
    sigma: DependencySet,
    variant: str = "standard",
    strategy: Strategy | str = "fifo",
    max_steps: int = 10_000,
    engine: str | None = None,
    budget: Budget | None = None,
) -> ChaseResult:
    """Run one chase sequence of ``database`` with ``sigma``.

    ``variant`` is one of ``standard``, ``oblivious``, ``semi_oblivious``;
    ``strategy`` resolves the nondeterministic choice among applicable
    steps; ``engine`` selects the matching backend (``planned``,
    ``columnar``, ``indexed`` or the ``naive`` reference), or inherits the
    ambient backend when None — ``using_backend(...)`` around this call is
    honoured, and the ``columnar`` backend additionally switches the
    working instance to the columnar fact store.  ``budget``
    adds fact/wall-clock bounds and cancellation on top of ``max_steps``;
    exhaustion yields ``EXCEEDED`` with ``result.exhausted`` set.  The
    input database is not modified.
    """
    runner = ChaseRunner(
        database, sigma, variant, strategy, max_steps, engine=engine, budget=budget
    )
    return runner.run()
