"""Chase run results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..budget import BudgetExhausted
from ..model.instances import Instance
from .step import StepOutcome


class ChaseStatus(enum.Enum):
    """Outcome of a chase run.

    * ``SUCCESS``  — terminating and successful: no further step applies,
      the result is an instance (for the standard chase, a canonical
      universal model of (D, Σ)).
    * ``FAILURE``  — terminating but failing: an EGD step equated two
      distinct constants (``J = ⊥``).  A failing sequence is *finite*,
      hence still "terminating" in the paper's sense.
    * ``EXCEEDED`` — the step/time budget ran out before the sequence
      finished; nothing can be concluded about termination.
    """

    SUCCESS = "success"
    FAILURE = "failure"
    EXCEEDED = "exceeded"


@dataclass
class ChaseResult:
    """The outcome of running one chase sequence."""

    status: ChaseStatus
    instance: Instance | None
    steps: list[StepOutcome] = field(default_factory=list)
    variant: str = "standard"
    #: Which budget dimension stopped an EXCEEDED run (None for the plain
    #: step cap, and always None for terminating runs).
    exhausted: BudgetExhausted | None = None

    @property
    def terminated(self) -> bool:
        """Finite sequence (successful or failing)."""
        return self.status in (ChaseStatus.SUCCESS, ChaseStatus.FAILURE)

    @property
    def successful(self) -> bool:
        return self.status is ChaseStatus.SUCCESS

    @property
    def failed(self) -> bool:
        return self.status is ChaseStatus.FAILURE

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        size = len(self.instance) if self.instance is not None else 0
        return (
            f"ChaseResult({self.variant}, {self.status.value}, "
            f"{self.step_count} steps, {size} facts)"
        )
