"""Bounded exhaustive exploration of the chase's nondeterminism.

``CTc∀`` and ``CTc∃`` membership is undecidable, but for the small witness
programs used in the Table 1 bench we can *empirically* classify a concrete
``(D, Σ)`` pair by exploring every chase sequence up to a depth bound:

* every explored path reaches a leaf (no applicable step, or ⊥) and no path
  was cut off → all sequences terminate (within the bound: conclusive,
  because chase states grow monotonically along a path only through the
  explored frontier);
* some leaf reached → a terminating sequence exists;
* otherwise nothing terminated within the bounds.

States reached by the standard chase are memoized up to null renaming
(exact isomorphism for up to ``PERMUTATION_CAP`` nulls, a deterministic
first-occurrence relabeling beyond — the latter may fail to merge some
isomorphic states, which costs time but never soundness).

The oblivious and semi-oblivious chase carry trigger-key state, so their
exploration is a plain bounded DFS.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..budget import Budget
from ..homomorphism.finder import find_homomorphism, find_homomorphisms
from ..homomorphism.satisfaction import violations
from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, DependencySet
from ..model.instances import Instance
from ..model.terms import Null, NullFactory, Term, Variable
from .runner import _key_variables
from .step import Trigger, apply_step

PERMUTATION_CAP = 6


class ExplorationVerdict(enum.Enum):
    """Summary of a bounded exhaustive chase exploration."""

    ALL_TERMINATING = "all sequences terminate"
    SOME_TERMINATING = "a terminating sequence exists; some paths were cut off"
    NONE_FOUND = "no terminating sequence found within bounds"
    EXHAUSTED = "state budget exhausted before any conclusion"


@dataclass
class ExplorationResult:
    """Verdict plus path/state counters of one exploration."""

    verdict: ExplorationVerdict
    terminating_paths: int
    failing_paths: int
    capped_paths: int
    explored_states: int

    @property
    def some_terminating(self) -> bool:
        return self.terminating_paths + self.failing_paths > 0

    @property
    def all_terminating(self) -> bool:
        return self.verdict is ExplorationVerdict.ALL_TERMINATING


def canonical_key(instance: Instance) -> tuple:
    """A hashable key identifying the instance up to null renaming.

    Exact (minimum over permutations) for small null counts; deterministic
    first-occurrence relabeling beyond that.
    """
    nulls = sorted(instance.nulls(), key=lambda n: n.label)
    if not nulls:
        return tuple(sorted(_fact_key(f, {}) for f in instance))
    if len(nulls) <= PERMUTATION_CAP:
        best = None
        for perm in itertools.permutations(range(len(nulls))):
            relabel = {n: i for n, i in zip(nulls, perm)}
            key = tuple(sorted(_fact_key(f, relabel) for f in instance))
            if best is None or key < best:
                best = key
        return best  # type: ignore[return-value]
    # Greedy: order facts by null-blind shape, relabel nulls by first use.
    shaped = sorted(instance, key=lambda f: _fact_key(f, None))
    relabel: dict[Null, int] = {}
    for f in shaped:
        for t in f.args:
            if isinstance(t, Null) and t not in relabel:
                relabel[t] = len(relabel)
    return tuple(sorted(_fact_key(f, relabel) for f in instance))


def _fact_key(fact: Atom, relabel: dict | None) -> tuple:
    parts: list = [fact.predicate]
    for t in fact.args:
        if isinstance(t, Null):
            if relabel is None:
                parts.append(("η",))
            else:
                parts.append(("η", relabel[t]))
        else:
            parts.append(("c", str(t)))
    return tuple(parts)


def _applicable_triggers(
    instance: Instance,
    sigma: DependencySet,
    variant: str,
    fired_keys: frozenset,
    key_vars: dict,
) -> list[Trigger]:
    out = []
    if variant == "standard":
        for dep in sigma:
            for h in violations(instance, dep):
                out.append(Trigger.make(dep, h))
    else:
        for dep in sigma:
            for h in find_homomorphisms(dep.body, instance, limit=None):
                t = Trigger.make(dep, h)
                if isinstance(dep, EGD) and h[dep.lhs] is h[dep.rhs]:
                    continue
                if t.key(key_vars[dep]) in fired_keys:
                    continue
                out.append(t)
    out.sort(key=str)
    return out


def explore_chase(
    database: Instance,
    sigma: DependencySet,
    variant: str = "standard",
    max_depth: int = 20,
    max_states: int = 20_000,
    budget: Budget | None = None,
) -> ExplorationResult:
    """Explore every ``variant``-chase sequence of (database, sigma).

    ``budget`` (one step charged per visited state) adds wall-clock bounds
    and cancellation on top of the ``max_states`` cap; exhausting either
    counts as hitting the state budget for the verdict.
    """
    budget = budget if budget is not None else Budget()
    key_vars = {d: _key_variables(d, variant) for d in sigma} if variant != "standard" else {}
    memo: set[tuple] = set()
    stats = {"terminating": 0, "failing": 0, "capped": 0, "states": 0}
    budget_hit = [False]

    def visit(instance: Instance, fired: frozenset, depth: int) -> None:
        if stats["states"] >= max_states or not budget.charge():
            budget_hit[0] = True
            return
        stats["states"] += 1
        if variant == "standard":
            key = canonical_key(instance)
            if key in memo:
                return
            memo.add(key)
        triggers = _applicable_triggers(instance, sigma, variant, fired, key_vars)
        if not triggers:
            stats["terminating"] += 1
            return
        if depth >= max_depth:
            stats["capped"] += 1
            return
        for trigger in triggers:
            if budget_hit[0]:
                return
            child = instance.copy()
            start = max((n.label for n in child.nulls()), default=0) + 1
            nulls = NullFactory(start=start)
            outcome = apply_step(child, trigger, nulls)
            if outcome.failed:
                stats["failing"] += 1
                continue
            child_fired = fired
            if variant != "standard":
                new_key = trigger.key(key_vars[trigger.dependency])
                if outcome.gamma is not None:
                    old, new = outcome.gamma.old, outcome.gamma.new
                    child_fired = frozenset(
                        (dep, tuple(new if t is old else t for t in images))
                        for dep, images in fired
                    )
                child_fired = child_fired | {new_key}
            visit(child, child_fired, depth + 1)

    visit(database, frozenset(), 0)

    capped = stats["capped"]
    terminated = stats["terminating"] + stats["failing"]
    if budget_hit[0] and terminated == 0:
        verdict = ExplorationVerdict.EXHAUSTED
    elif capped == 0 and not budget_hit[0]:
        verdict = ExplorationVerdict.ALL_TERMINATING
    elif terminated > 0:
        verdict = ExplorationVerdict.SOME_TERMINATING
    else:
        verdict = ExplorationVerdict.NONE_FOUND
    return ExplorationResult(
        verdict=verdict,
        terminating_paths=stats["terminating"],
        failing_paths=stats["failing"],
        capped_paths=capped,
        explored_states=stats["states"],
    )
