"""Bounded exhaustive exploration of the chase's nondeterminism.

``CTc∀`` and ``CTc∃`` membership is undecidable, but for the small witness
programs used in the Table 1 bench we can *empirically* classify a concrete
``(D, Σ)`` pair by exploring every chase sequence up to a depth bound:

* every explored path reaches a leaf (no applicable step, or ⊥) and no path
  was cut off → all sequences terminate (within the bound: conclusive,
  because chase states grow monotonically along a path only through the
  explored frontier);
* some leaf reached → a terminating sequence exists;
* otherwise nothing terminated within the bounds.

States reached by the standard chase are memoized up to null renaming.
The canonical key colour-refines the labelled nulls (1-WL over the
instance's occurs-in structure, the same refinement loop the batch
engine's content fingerprint runs over predicates — see
``repro.batch.fingerprint.colour_refine``), then canonises exactly by
minimising over the colour-preserving relabelings when their number is at
most ``CLASS_PERMUTATION_CAP``; beyond that a deterministic
colour-then-first-occurrence relabeling is used, which may fail to merge
some highly symmetric isomorphic states — that costs time but never
soundness (any *bijective* relabeling scheme only ever identifies
genuinely isomorphic states).

The DFS visits branches transactionally: a branch takes an
``Instance.savepoint``, applies its step in place, recurses, and rolls
back — O(|Δ|) per branch instead of the O(|I|) ``copy()`` per branch the
``snapshots="copy"`` reference backend pays (kept switchable so the
differential suite and the explore bench can hold the two against each
other).  The oblivious and semi-oblivious chase carry trigger-key state,
so their exploration is a plain bounded DFS over the same machinery.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from math import factorial

from ..budget import Budget
from ..homomorphism.finder import find_homomorphisms
from ..homomorphism.satisfaction import satisfies_tgd
from ..matching import body_atom_index, delta_homomorphisms, get_backend, warm_plans
from ..matching.engine import match_atom
from ..model.atoms import Atom
from ..model.columnar import ColumnarInstance
from ..model.dependencies import EGD, TGD, DependencySet
from ..model.instances import Instance
from ..model.terms import Null, NullFactory
from .runner import _key_variables
from .step import Trigger, apply_step

#: Exact canonization minimises over the colour-preserving null
#: relabelings as long as their count (the product of the colour-class
#: factorials) stays within this cap — 8!, so a fully symmetric 8-null
#: state is still canonised exactly, while refinement usually splits the
#: classes down to a single relabeling long before the cap matters.
CLASS_PERMUTATION_CAP = 40_320

SNAPSHOT_BACKENDS = ("savepoint", "copy")
DISCOVERY_MODES = ("delta", "full")


class ExplorationVerdict(enum.Enum):
    """Summary of a bounded exhaustive chase exploration."""

    ALL_TERMINATING = "all sequences terminate"
    SOME_TERMINATING = "a terminating sequence exists; some paths were cut off"
    NONE_FOUND = "no terminating sequence found within bounds"
    EXHAUSTED = "state budget exhausted before any conclusion"


@dataclass
class ExplorationResult:
    """Verdict plus path/state counters of one exploration."""

    verdict: ExplorationVerdict
    terminating_paths: int
    failing_paths: int
    capped_paths: int
    explored_states: int

    @property
    def some_terminating(self) -> bool:
        return self.terminating_paths + self.failing_paths > 0

    @property
    def all_terminating(self) -> bool:
        return self.verdict is ExplorationVerdict.ALL_TERMINATING


def _null_colours(instance: Instance) -> dict[Null, str]:
    """1-WL colours of the instance's labelled nulls.

    Seed colours come from each null's occurrence profile (which
    predicates/positions it fills); each refinement round re-colours a
    null with the multiset of its facts, encoded with the current
    colouring and the null's own positions marked.  The colours are
    isomorphism-invariant by construction, so any isomorphism between two
    states maps colour classes onto colour classes.
    """
    # Lazy import: repro.batch pulls in the analysis layer, which imports
    # this module — a module-level import would cycle at load time.
    from ..batch.fingerprint import colour_refine, stable_hash

    nulls = instance.nulls()
    initial: dict[Null, str] = {}
    for n in nulls:
        profile = sorted(
            [f.predicate, len(f.args), [i for i, t in enumerate(f.args) if t is n]]
            for f in instance.with_term(n)
        )
        initial[n] = stable_hash(["init", profile])

    def contexts(colours: dict[Null, str]) -> dict[Null, list]:
        out: dict[Null, list] = {}
        for n in colours:
            ctx = []
            for f in instance.with_term(n):
                enc: list = [f.predicate]
                for t in f.args:
                    if t is n:
                        enc.append(["s"])
                    elif isinstance(t, Null):
                        enc.append(["n", colours[t]])
                    else:
                        enc.append(["c", str(t)])
                ctx.append(enc)
            ctx.sort()
            out[n] = ctx
        return out

    return colour_refine(initial, contexts)


def canonical_key(instance: Instance) -> tuple:
    """A hashable key identifying the instance up to null renaming.

    The key pairs the *ground* facts verbatim (isomorphisms fix
    constants, so two isomorphic states have literally equal ground
    parts — a frozenset of interned atoms, no per-fact encoding cost)
    with a canonical form of the null-mentioning facts.  Nulls are
    colour-refined first; the null part is exact (minimum over the
    colour-preserving relabelings) while their count stays within
    ``CLASS_PERMUTATION_CAP``, and a deterministic colour-ordered
    first-occurrence relabeling beyond.  Either way the relabeling is a
    bijection, so equal keys always mean isomorphic states; the key
    depends only on the fact *set*, never on iteration order, so the
    savepoint and copy snapshot backends memoize identically.
    """
    null_facts = []
    ground = []
    for f in instance:
        if any(isinstance(t, Null) for t in f.args):
            null_facts.append(f)
        else:
            ground.append(f)
    return (frozenset(ground), _null_part(instance, null_facts))


def _memo_key(instance: Instance) -> tuple:
    """:func:`canonical_key`, minus ground-atom materialisation when the
    instance can supply cheaper parts.

    A :class:`ColumnarInstance` hands over its ground facts as cached
    frozensets of local-id row keys (``memo_parts``) — no ``Atom`` is
    built for the (dominant) ground part of a visited state, and sibling
    states share the per-store split through the store version cache.
    Row-key ground parts only compare within one fork family, which is
    exactly the memo's scope: every state of one exploration forks from
    the single converted root.  Other instance types fall back to the
    public :func:`canonical_key`.
    """
    if isinstance(instance, ColumnarInstance):
        ground_key, null_facts = instance.memo_parts()
        return (ground_key, _null_part(instance, null_facts))
    return canonical_key(instance)


def _null_part(instance: Instance, null_facts: list[Atom]) -> tuple:
    """Canonical form of a state's null-mentioning facts (the second
    component of :func:`canonical_key`); ``()`` when there are none."""
    if not null_facts:
        return ()
    nulls = sorted(instance.nulls(), key=lambda n: n.label)
    colours = _null_colours(instance)
    by_colour: dict[str, list[Null]] = {}
    for n in nulls:
        by_colour.setdefault(colours[n], []).append(n)
    ordered_classes = [by_colour[c] for c in sorted(by_colour)]

    total = 1
    for cls in ordered_classes:
        total *= factorial(len(cls))
        if total > CLASS_PERMUTATION_CAP:
            break
    if total <= CLASS_PERMUTATION_CAP:
        offsets = []
        base = 0
        for cls in ordered_classes:
            offsets.append(base)
            base += len(cls)
        best = None
        for perms in itertools.product(
            *(itertools.permutations(range(len(cls))) for cls in ordered_classes)
        ):
            relabel: dict[Null, int] = {}
            for cls, off, perm in zip(ordered_classes, offsets, perms):
                for n, j in zip(cls, perm):
                    relabel[n] = off + j
            key = tuple(sorted(_fact_key(f, relabel) for f in null_facts))
            if best is None or key < best:
                best = key
        assert best is not None
        return best

    # Fallback: order facts by colour-aware shape (ties broken by the
    # concrete fact key, keeping the sort content-determined), then label
    # nulls by colour rank and first occurrence within their class.
    offsets_by_colour: dict[str, int] = {}
    base = 0
    for c in sorted(by_colour):
        offsets_by_colour[c] = base
        base += len(by_colour[c])
    concrete = {n: n.label for n in nulls}
    shaped = sorted(
        null_facts,
        key=lambda f: (_fact_shape(f, colours), _fact_key(f, concrete)),
    )
    next_in_class: dict[str, int] = {}
    relabel = {}
    for f in shaped:
        for t in f.args:
            if isinstance(t, Null) and t not in relabel:
                c = colours[t]
                sub = next_in_class.get(c, 0)
                next_in_class[c] = sub + 1
                relabel[t] = offsets_by_colour[c] + sub
    return tuple(sorted(_fact_key(f, relabel) for f in null_facts))


def _fact_shape(fact: Atom, colours: dict[Null, str]) -> tuple:
    """A null-label-blind sort key: nulls appear as their colours."""
    parts: list = [fact.predicate]
    for t in fact.args:
        if isinstance(t, Null):
            parts.append(("η", colours[t]))
        else:
            parts.append(("c", str(t)))
    return tuple(parts)


def _fact_key(fact: Atom, relabel: dict) -> tuple:
    parts: list = [fact.predicate]
    for t in fact.args:
        if isinstance(t, Null):
            parts.append(("η", relabel[t]))
        else:
            parts.append(("c", str(t)))
    return tuple(parts)


def explore_chase(
    database: Instance,
    sigma: DependencySet,
    variant: str = "standard",
    max_depth: int = 20,
    max_states: int = 20_000,
    budget: Budget | None = None,
    snapshots: str = "savepoint",
    discovery: str = "delta",
) -> ExplorationResult:
    """Explore every ``variant``-chase sequence of (database, sigma).

    ``budget`` (one step charged per visited state) adds wall-clock bounds
    and cancellation on top of the ``max_states`` cap; exhausting either
    counts as hitting the state budget for the verdict.

    ``snapshots`` selects how branches are visited: ``"savepoint"``
    (default) applies each step in place under an undo-log savepoint and
    rolls back after the recursion — O(step) per branch — while
    ``"copy"`` is the reference backend forking a full instance copy per
    branch.

    ``discovery`` selects how each state's applicable triggers are found:
    ``"delta"`` (default) carries the parent's candidate triggers down the
    DFS and joins only the step's delta-log facts against the dependency
    bodies (the semi-naive protocol of DESIGN.md §1, sound along a DFS
    path because chase states evolve monotonically and dead triggers stay
    dead), re-checking only variant applicability per state; ``"full"``
    re-enumerates every body homomorphism from scratch at every state —
    the seed behaviour, kept as the reference.

    All four backend combinations produce identical results; the
    differential suite asserts it.  The input database is never modified.
    """
    if snapshots not in SNAPSHOT_BACKENDS:
        raise ValueError(
            f"unknown snapshot backend {snapshots!r}; known: {SNAPSHOT_BACKENDS}"
        )
    if discovery not in DISCOVERY_MODES:
        raise ValueError(
            f"unknown discovery mode {discovery!r}; known: {DISCOVERY_MODES}"
        )
    budget = budget if budget is not None else Budget()
    key_vars = {d: _key_variables(d, variant) for d in sigma} if variant != "standard" else {}
    memo: set[tuple] = set()
    stats = {"terminating": 0, "failing": 0, "capped": 0, "states": 0}
    budget_hit = [False]
    transactional = snapshots == "savepoint"
    semi_naive = discovery == "delta"
    body_index = body_atom_index((d, d.body) for d in sigma) if semi_naive else None
    # Compile the per-dependency join plans once for the whole exploration
    # (a no-op unless the "planned" backend is active in this context).
    warm_plans((d.body for d in sigma), database)
    head_preds = {
        d: frozenset(a.predicate for a in d.head)
        for d in sigma
        if isinstance(d, TGD)
    }

    # Triggers recur across sibling states, so their canonical sort string
    # and (semi-)oblivious key — both pure functions of the trigger value —
    # are cached for the whole exploration.
    sort_strings: dict[Trigger, str] = {}
    trigger_keys: dict[Trigger, tuple] = {}

    def sort_string(trigger: Trigger) -> str:
        s = sort_strings.get(trigger)
        if s is None:
            s = sort_strings[trigger] = str(trigger)
        return s

    def trigger_key(trigger: Trigger) -> tuple:
        k = trigger_keys.get(trigger)
        if k is None:
            k = trigger_keys[trigger] = trigger.key(key_vars[trigger.dependency])
        return k

    def applicable(instance: Instance, trigger: Trigger, fired: frozenset) -> bool:
        """The variant-specific applicability of one candidate trigger."""
        dep = trigger.dependency
        h = trigger.mapping()
        if isinstance(dep, EGD) and h[dep.lhs] is h[dep.rhs]:
            return False
        if variant == "standard":
            if isinstance(dep, TGD):
                return not satisfies_tgd(instance, dep, h)
            return True
        return trigger_key(trigger) not in fired

    def initial_candidates(instance: Instance) -> list[tuple[Trigger, bool]]:
        """Full discovery over the root state: every body homomorphism.
        The flag marks a candidate as *clean* (see applicable_triggers);
        root candidates never are."""
        return [
            (Trigger.make(dep, h), False)
            for dep in sigma
            for h in find_homomorphisms(dep.body, instance, limit=None)
        ]

    def applicable_triggers(
        instance: Instance,
        fired: frozenset,
        candidates: list[tuple[Trigger, bool]],
        delta: list[Atom],
    ) -> list[Trigger]:
        """Dedupe candidates, filter by applicability, canonical order.

        A *clean* candidate was applicable at the parent state and was not
        rewritten by the step's γ, so under the standard chase its
        applicability can only have flipped if the step's delta provides a
        new head extension: an EGD's distinct images stay distinct, and a
        TGD stays violated unless some delta fact unifies with one of its
        head atoms under the trigger's seed (any new extension must send a
        head atom onto a delta fact).  Those re-checks — the bulk of
        per-state work on branchy programs — are skipped exactly.
        """
        delta_preds = frozenset(f.predicate for f in delta)
        seen: set[Trigger] = set()
        out = []
        for t, clean in candidates:
            if t in seen:
                continue
            seen.add(t)
            if clean and variant == "standard":
                dep = t.dependency
                if isinstance(dep, EGD) or not (head_preds[dep] & delta_preds):
                    out.append(t)
                    continue
                h = t.mapping()
                if not any(
                    a.predicate == f.predicate
                    and match_atom(a, f, h, frozen_nulls=True) is not None
                    for f in delta
                    for a in dep.head
                ):
                    out.append(t)
                    continue
                if not satisfies_tgd(instance, dep, h):
                    out.append(t)
                continue
            if applicable(instance, t, fired):
                out.append(t)
        out.sort(key=sort_string)
        return out

    def visit(
        instance: Instance,
        fired: frozenset,
        depth: int,
        candidates: list[tuple[Trigger, bool]],
        delta: list[Atom],
    ) -> None:
        if stats["states"] >= max_states or not budget.charge():
            budget_hit[0] = True
            return
        stats["states"] += 1
        if variant == "standard":
            key = _memo_key(instance)
            if key in memo:
                return
            memo.add(key)
        triggers = applicable_triggers(instance, fired, candidates, delta)
        if not triggers:
            stats["terminating"] += 1
            return
        if depth >= max_depth:
            stats["capped"] += 1
            return
        # Fresh-null numbering is a function of the *parent* state: every
        # sibling branch starts from the same nulls (the savepoint backend
        # rolls a branch's nulls back before the next one begins), so the
        # domain scan is hoisted out of the branch loop.
        start = max((n.label for n in instance.nulls()), default=0) + 1
        for trigger in triggers:
            if budget_hit[0]:
                return
            if transactional:
                sp = instance.savepoint()
                child = instance
            else:
                sp = None
                child = instance.copy()
            nulls = NullFactory(start=start)
            tick = child.tick
            outcome = apply_step(child, trigger, nulls)
            if outcome.failed:
                stats["failing"] += 1
                if sp is not None:
                    instance.rollback(sp)
                continue
            child_fired = fired
            if variant != "standard":
                new_key = trigger_key(trigger)
                if outcome.gamma is not None:
                    old, new = outcome.gamma.old, outcome.gamma.new
                    child_fired = frozenset(
                        (dep, tuple(new if t is old else t for t in images))
                        for dep, images in fired
                    )
                child_fired = child_fired | {new_key}
            if semi_naive:
                # Carry the parent's (still-live, γ-rewritten) applicable
                # triggers and join only the delta facts against the
                # bodies; inapplicable triggers are dead along the whole
                # path (DESIGN.md §1) and rewritten facts re-enter the
                # delta log, so this reconstructs exactly the full
                # enumeration's candidate set.
                carried: list[tuple[Trigger, bool]]
                if outcome.gamma is not None:
                    old, new = outcome.gamma.old, outcome.gamma.new
                    carried = [
                        (t.rewrite(old, new), False)
                        if any(img is old for _, img in t.assignment)
                        else (t, True)
                        for t in triggers
                    ]
                else:
                    carried = [(t, True) for t in triggers]
                live = [f for f in child.added_since(tick) if f in child]
                carried.extend(
                    (Trigger.make(dep, h), False)
                    for dep, h in delta_homomorphisms(body_index, child, live)
                )
                child_candidates, child_delta = carried, live
            else:
                child_candidates, child_delta = initial_candidates(child), []
            visit(child, child_fired, depth + 1, child_candidates, child_delta)
            if sp is not None:
                instance.rollback(sp)

    # The savepoint backend mutates its working instance in place, so it
    # forks the caller's database exactly once; the copy backend forks
    # per branch and never touches the root.  Under the columnar backend
    # the conversion is itself a fork, and branch savepoints/copies then
    # stay columnar all the way down.
    if get_backend() == "columnar" and not isinstance(database, ColumnarInstance):
        root: Instance | ColumnarInstance = ColumnarInstance(database)
    elif transactional:
        root = database.copy()
    else:
        root = database
    visit(root, frozenset(), 0, initial_candidates(root), [])

    capped = stats["capped"]
    terminated = stats["terminating"] + stats["failing"]
    if budget_hit[0] and terminated == 0:
        verdict = ExplorationVerdict.EXHAUSTED
    elif capped == 0 and not budget_hit[0]:
        verdict = ExplorationVerdict.ALL_TERMINATING
    elif terminated > 0:
        verdict = ExplorationVerdict.SOME_TERMINATING
    else:
        verdict = ExplorationVerdict.NONE_FOUND
    return ExplorationResult(
        verdict=verdict,
        terminating_paths=stats["terminating"],
        failing_paths=stats["failing"],
        capped_paths=capped,
        explored_states=stats["states"],
    )
