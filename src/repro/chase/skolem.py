"""Skolemised chase for TGDs.

In the presence of TGDs only, the oblivious (resp. semi-oblivious) chase is
equivalent to the fixpoint computation of a Skolemised version of Σ, where
Skolem terms stand for labelled nulls (Section 2): dependency
``E(x,y) → ∃z E(x,z)`` becomes ``E(x,y) → E(x, f^r_z(x,y))`` for the
oblivious chase and ``E(x,y) → E(x, f^r_z(x))`` (frontier arguments only)
for the semi-oblivious chase.

This module provides the Skolem term machinery and the saturation loop used
by the MFA / MSA criteria, including cyclic-term detection ("a term f(t)
where f occurs in t").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..budget import Budget, BudgetExhausted
from ..homomorphism.finder import find_homomorphisms
from ..matching import (
    body_atom_index,
    delta_homomorphisms,
    delta_row_homomorphisms,
    get_backend,
    warm_plans,
)
from ..model.atoms import Atom
from ..model.columnar import ColumnarInstance
from ..model.dependencies import TGD, DependencySet
from ..model.instances import Instance
from ..model.terms import Term, Variable, next_term_id


class SkolemTerm(Term):
    """A functional term ``f^r_z(t1, ..., tk)``.

    ``functor`` identifies the (rule, existential variable) pair; arguments
    are ground terms or nested Skolem terms.
    """

    __slots__ = ("functor", "args", "tid", "_hash")

    _intern: dict[tuple, "SkolemTerm"] = {}

    def __new__(cls, functor: str, args: tuple[Term, ...]) -> "SkolemTerm":
        key = (functor, args)
        cached = cls._intern.get(key)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "functor", functor)
            object.__setattr__(cached, "args", args)
            object.__setattr__(cached, "tid", next_term_id())
            object.__setattr__(cached, "_hash", hash(("skolem", key)))
            cls._intern[key] = cached
        return cached

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SkolemTerm is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, SkolemTerm)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __repr__(self) -> str:
        return f"SkolemTerm({self.functor}, {self.args!r})"

    def __str__(self) -> str:
        return f"{self.functor}({', '.join(str(a) for a in self.args)})"

    def depth(self) -> int:
        return 1 + max((a.depth() for a in self.args if isinstance(a, SkolemTerm)), default=0)

    def contains_functor(self, functor: str) -> bool:
        """Does ``functor`` occur anywhere in this term's argument tree?"""
        for a in self.args:
            if isinstance(a, SkolemTerm):
                if a.functor == functor or a.contains_functor(functor):
                    return True
        return False

    @property
    def is_cyclic(self) -> bool:
        """``f(t)`` with ``f`` occurring in ``t``."""
        return self.contains_functor(self.functor)


def functor_name(tgd: TGD, z: Variable, index: int) -> str:
    """A stable functor name ``f^{r}_{z}`` for rule ``tgd`` / variable ``z``."""
    label = tgd.label or f"rule{index}"
    return f"f_{label}_{z.name}"


@dataclass(frozen=True)
class SkolemisedTGD:
    """A TGD with its existential variables pre-bound to Skolem templates."""

    source: TGD
    variant: str  # "oblivious" | "semi_oblivious"
    functors: tuple[tuple[Variable, str, tuple[Variable, ...]], ...]
    # each entry: (existential var, functor, argument variables)

    def head_facts(self, h: dict) -> list[Atom]:
        mapping: dict[Term, Term] = {v: h[v] for v in self.source.body_variables()}
        for z, functor, arg_vars in self.functors:
            mapping[z] = SkolemTerm(functor, tuple(h[v] for v in arg_vars))
        return [a.apply(mapping) for a in self.source.head]


def skolemise(
    sigma: DependencySet, variant: str = "semi_oblivious"
) -> list[SkolemisedTGD]:
    """Skolemise the TGDs of Σ (EGDs are rejected: simulate them first)."""
    if sigma.egds:
        raise ValueError(
            "skolemisation is defined for TGDs only; apply an EGD simulation first"
        )
    out = []
    for i, dep in enumerate(sigma.tgds):
        if variant == "oblivious":
            arg_vars = tuple(sorted(dep.body_variables(), key=lambda v: v.name))
        elif variant == "semi_oblivious":
            arg_vars = tuple(sorted(dep.frontier(), key=lambda v: v.name))
        else:
            raise ValueError(f"unknown skolem variant {variant!r}")
        functors = tuple(
            (z, functor_name(dep, z, i), arg_vars) for z in dep.existential
        )
        out.append(SkolemisedTGD(dep, variant, functors))
    return out


@dataclass
class SaturationResult:
    """Outcome of the Skolem-chase saturation."""

    instance: Instance | ColumnarInstance
    saturated: bool
    cyclic_term: SkolemTerm | None
    rounds: int
    #: The budget dimension that stopped a non-saturating run, if any.
    exhausted: BudgetExhausted | None = None

    @property
    def alarmed(self) -> bool:
        return self.cyclic_term is not None


def saturate(
    database: Instance,
    rules: Iterable[SkolemisedTGD],
    stop_on_cyclic: bool = True,
    max_facts: int = 200_000,
    max_rounds: int = 10_000,
    budget: Budget | None = None,
) -> SaturationResult:
    """Run the Skolem-chase fixpoint, semi-naively.

    Round 1 enumerates every body homomorphism; round ``k > 1`` only joins
    the facts added in round ``k-1`` (the instance's delta log) against the
    rule bodies mentioning their predicates.  Because the Skolem chase only
    ever adds facts, a homomorphism whose image lies entirely in older
    rounds already contributed its head facts earlier, so each round derives
    exactly the facts the naive fixpoint would — same rounds, same result.

    Stops early when a cyclic term is produced (MFA's alarm) if
    ``stop_on_cyclic``; gives up (``saturated=False``) past the
    ``max_facts``/``max_rounds`` caps or when the ``budget`` — which adds
    wall-clock bounds and cancellation, and is charged one step per derived
    fact — exhausts mid-round.
    """
    budget = budget if budget is not None else Budget()
    if get_backend() == "columnar" and not isinstance(database, ColumnarInstance):
        instance: Instance | ColumnarInstance = ColumnarInstance(database)
    else:
        instance = database.copy()
    rules = list(rules)
    body_index = body_atom_index((rule, rule.source.body) for rule in rules)
    # Compile the per-rule join plans once for the whole saturation (a
    # no-op unless the "planned" backend is active in this context).
    warm_plans((rule.source.body for rule in rules), instance)
    rounds = 0
    tick = instance.tick
    budget.charge_facts(len(instance))
    while rounds < max_rounds:
        rounds += 1
        if rounds == 1:
            homs: Iterable[tuple[SkolemisedTGD, dict]] = (
                (rule, h)
                for rule in rules
                for h in find_homomorphisms(rule.source.body, instance, limit=None)
            )
        elif isinstance(instance, ColumnarInstance):
            # Saturation only ever adds facts, so every logged row is
            # live — the handles seed discovery with no Atom built.
            homs = delta_row_homomorphisms(
                body_index, instance, instance.added_rows_since(tick)
            )
        else:
            homs = delta_homomorphisms(
                body_index, instance, instance.added_since(tick)
            )
        new_facts: list[Atom] = []
        pending: set[Atom] = set()
        for rule, h in homs:
            if not budget.charge():
                return SaturationResult(
                    instance, False, None, rounds, budget.exhausted
                )
            for fact in rule.head_facts(h):
                if fact in instance or fact in pending:
                    continue
                for t in fact.args:
                    if (
                        stop_on_cyclic
                        and isinstance(t, SkolemTerm)
                        and t.is_cyclic
                    ):
                        return SaturationResult(instance, False, t, rounds)
                pending.add(fact)
                new_facts.append(fact)
        tick = instance.tick
        added = instance.add_all(new_facts)
        if added == 0:
            return SaturationResult(instance, True, None, rounds)
        if not budget.charge_facts(added):
            return SaturationResult(instance, False, None, rounds, budget.exhausted)
        if len(instance) > max_facts:
            return SaturationResult(instance, False, None, rounds)
    return SaturationResult(instance, False, None, rounds)


def critical_instance(sigma: DependencySet, star_value: str = "*") -> Instance:
    """The critical instance: every predicate filled with the ``*`` constant
    (plus one fact per constant appearing in Σ, conservatively star-padded).

    Chasing the critical instance covers every database: any database maps
    homomorphically into it.
    """
    from ..model.terms import Constant

    inst = Instance()
    consts = sorted(sigma.constants(), key=str) or []
    values = [Constant(star_value)] + list(consts)
    for pred, arity in sorted(sigma.predicates().items()):
        if arity == 0:
            inst.add(Atom(pred, ()))
            continue
        # The full product over values × arity explodes; the star-only fact
        # suffices when Σ is constant-free (the common case), and we add the
        # per-constant diagonal facts otherwise.
        inst.add(Atom(pred, (Constant(star_value),) * arity))
        for c in consts:
            for i in range(arity):
                args = [Constant(star_value)] * arity
                args[i] = c
                inst.add(Atom(pred, args))
    return inst
