"""The core chase (Deutsch–Nash–Remmel, "The chase revisited").

A core chase step on an instance ``K``:

1. apply **all** standard chase steps ``K --(r,h,γ)--> K'`` in parallel and
   take ``J = ∪ K'`` (each TGD step uses its own fresh nulls; each EGD step
   contributes ``Kγ``; a failing EGD step fails the whole sequence);
2. the step's result is ``J' = core(J)``.

The parallel application removes the standard chase's nondeterminism, and
the core chase is *complete* for universal models: whenever ``(D, Σ)`` has a
universal model, the core chase terminates and produces one (Section 2).
"""

from __future__ import annotations

from ..homomorphism.cores import CoreBudgetExceeded, core
from ..homomorphism.satisfaction import violations
from ..model.dependencies import EGD, TGD, DependencySet
from ..model.instances import Instance
from ..model.terms import NullFactory, Term
from .result import ChaseResult, ChaseStatus
from .step import Trigger, egd_substitution


def core_chase_step(
    instance: Instance, sigma: DependencySet, nulls: NullFactory
) -> Instance | None:
    """One core chase step; returns the resulting instance, or None on ⊥.

    The union ``J = ∪ K'`` is built by savepoint-scoped adds on the input
    itself and the core retraction then consumes it in place
    (``core(fresh=False)``), so a round costs O(changes) in state
    management instead of the seed's two full rebuilds (the union copy
    plus ``core``'s internal copy).  On ⊥ — and on a blown core budget —
    the savepoint rolls back and the caller's instance is untouched;
    otherwise the returned instance *is* the input, advanced by one round.
    """
    # Materialise the round's triggers first: the union mutates the
    # instance the violation generators would otherwise be reading.
    pending = [(dep, h) for dep in sigma for h in violations(instance, dep)]
    if not pending:
        return instance
    base = list(instance)  # each EGD contributes Kγ for the pre-union K
    sp = instance.savepoint()
    try:
        for dep, h in pending:
            if isinstance(dep, TGD):
                mapping: dict[Term, Term] = {v: h[v] for v in dep.body_variables()}
                for z in dep.existential:
                    mapping[z] = nulls.fresh()
                for atom in dep.head:
                    instance.add(atom.apply(mapping))
            else:
                gamma = egd_substitution(dep, h)
                if gamma is None:
                    instance.rollback(sp)
                    return None  # two distinct constants: J = ⊥
                instance.add_all(
                    f.apply({gamma.old: gamma.new}) for f in base
                )
        result = core(instance, fresh=False)
    except CoreBudgetExceeded:
        instance.rollback(sp)
        raise
    instance.release(sp)
    return result


def core_chase(
    database: Instance,
    sigma: DependencySet,
    max_rounds: int = 1_000,
) -> ChaseResult:
    """Run the core chase of ``database`` with ``sigma``.

    Returns SUCCESS with the (unique up to isomorphism) universal model,
    FAILURE on ⊥, or EXCEEDED after ``max_rounds`` core chase steps.
    """
    current = database.copy()
    nulls = NullFactory(
        start=max((n.label for n in current.nulls()), default=0) + 1
    )
    for _ in range(max_rounds):
        if not any(True for d in sigma for _ in violations(current, d, limit=1)):
            return ChaseResult(ChaseStatus.SUCCESS, current, [], "core")
        nxt = core_chase_step(current, sigma, nulls)
        if nxt is None:
            return ChaseResult(ChaseStatus.FAILURE, None, [], "core")
        current = nxt
        # The same instance is threaded through every round; nothing reads
        # its ticks across rounds, so drop the log instead of letting it
        # pin every union fact and retraction image ever added.
        current.compact_log()
    return ChaseResult(ChaseStatus.EXCEEDED, current, [], "core")
