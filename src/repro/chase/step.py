"""Chase steps (Definition 1).

A chase step ``K --(r, h, γ)--> J`` enforces one dependency:

1. TGD ``ϕ(x,y) → ∃z ψ(x,z)``: extend ``h`` with fresh labelled nulls for
   the existential variables and add ``h'(ψ)`` to ``K``; γ is empty.
2. EGD ``ϕ(x,y) → x1 = x2`` with ``h(x1) ≠ h(x2)``:

   a. both images constants → ``J = ⊥`` (the step *fails*);
   b. otherwise γ replaces a null by the other term and ``J = Kγ``.

Steps mutate the given instance in place (the chase owns its instance); the
returned :class:`StepOutcome` records everything needed to replay or audit
the sequence, including γ so that (semi-)oblivious trigger bookkeeping can
compose substitutions per Section 2's sequence definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency
from ..model.instances import Instance
from ..model.terms import Constant, GroundTerm, Null, NullFactory, Term, Variable


@dataclass(frozen=True)
class Trigger:
    """A dependency together with a homomorphism from its body.

    ``assignment`` maps each body variable to a ground term; it is stored as
    a sorted tuple so triggers are hashable and comparable.
    """

    dependency: AnyDependency
    assignment: tuple[tuple[Variable, GroundTerm], ...]

    @classmethod
    def make(cls, dep: AnyDependency, h: Mapping[Term, Term]) -> "Trigger":
        pairs = tuple(
            sorted(
                ((v, h[v]) for v in dep.body_variables()),
                key=lambda p: p[0].name,
            )
        )
        return cls(dep, pairs)  # type: ignore[arg-type]

    def mapping(self) -> dict[Term, Term]:
        return {v: t for v, t in self.assignment}

    def image_of(self, var: Variable) -> GroundTerm:
        for v, t in self.assignment:
            if v is var:
                return t
        raise KeyError(var)

    def rewrite(self, old: Null, new: GroundTerm) -> "Trigger":
        """Apply a substitution γ = {old/new} to the assignment images."""
        pairs = tuple((v, new if t is old else t) for v, t in self.assignment)
        return Trigger(self.dependency, pairs)

    def key(self, variables: tuple[Variable, ...]) -> tuple:
        """The trigger's identity restricted to the given variables.

        The oblivious chase keys triggers on all body variables; the
        semi-oblivious chase keys them on the frontier.
        """
        m = self.mapping()
        return (self.dependency, tuple(m[v] for v in variables))

    def __str__(self) -> str:
        binding = ", ".join(f"{v.name}↦{t}" for v, t in self.assignment)
        label = self.dependency.label or str(self.dependency)
        return f"⟨{label} | {binding}⟩"


@dataclass(frozen=True)
class Substitution:
    """The γ of an EGD step: a single null replaced by a ground term."""

    old: Null
    new: GroundTerm

    def __str__(self) -> str:
        return f"{{{self.old}/{self.new}}}"


@dataclass
class StepOutcome:
    """The result of applying one chase step."""

    trigger: Trigger
    added: list[Atom] = field(default_factory=list)
    gamma: Substitution | None = None
    failed: bool = False
    created_nulls: list[Null] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.failed or bool(self.added) or self.gamma is not None


def egd_substitution(dep: EGD, h: Mapping[Term, Term]) -> Substitution | None:
    """Compute γ per Definition 1(2), or None for the failing (⊥) case.

    Requires ``h(x1) ≠ h(x2)``.  If ``h(x1)`` is a null it is replaced by
    ``h(x2)``; otherwise ``h(x2)`` (which must then be a null) is replaced
    by ``h(x1)``.
    """
    t1, t2 = h[dep.lhs], h[dep.rhs]
    if t1 is t2:
        raise ValueError("EGD step requires h(x1) != h(x2)")
    if isinstance(t1, Constant) and isinstance(t2, Constant):
        return None
    if isinstance(t1, Null):
        return Substitution(t1, t2)  # type: ignore[arg-type]
    return Substitution(t2, t1)  # type: ignore[arg-type]


def apply_step(
    instance: Instance,
    trigger: Trigger,
    nulls: NullFactory,
) -> StepOutcome:
    """Apply the chase step for ``trigger`` to ``instance`` **in place**.

    The caller is responsible for having checked the variant-specific
    applicability condition; this function implements only Definition 1.
    """
    dep = trigger.dependency
    h = trigger.mapping()
    if isinstance(dep, TGD):
        created: list[Null] = []
        mapping: dict[Term, Term] = {v: h[v] for v in dep.body_variables()}
        for z in dep.existential:
            nz = nulls.fresh()
            created.append(nz)
            mapping[z] = nz
        added = []
        for atom in dep.head:
            fact = atom.apply(mapping)
            if instance.add(fact):
                added.append(fact)
        return StepOutcome(trigger, added=added, created_nulls=created)

    gamma = egd_substitution(dep, h)
    if gamma is None:
        return StepOutcome(trigger, failed=True)
    instance.merge_terms(gamma.old, gamma.new)
    return StepOutcome(trigger, gamma=gamma)
