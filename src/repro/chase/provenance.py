"""Chase provenance: explain how a fact was derived.

A :class:`ChaseResult` records every step (trigger, added facts, EGD
substitutions).  :func:`explain` reconstructs, for a fact of the final
instance, its derivation tree: which dependency produced it, under which
homomorphism, from which (recursively explained) body facts — with EGD
merges resolved, so a fact rewritten by substitutions still traces back
to the step that created its pre-merge form.

Useful for debugging dependency sets and for demonstrating universal-model
construction in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.atoms import Atom
from ..model.instances import Instance
from .result import ChaseResult
from .step import StepOutcome


@dataclass
class Derivation:
    """One node of a derivation tree."""

    fact: Atom
    source: str                      # "database" | dependency label/str
    via: StepOutcome | None = None
    premises: list["Derivation"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.fact}   [{self.source}]"]
        for p in self.premises:
            lines.append(p.render(indent + 1))
        return "\n".join(lines)

    def depth(self) -> int:
        return 1 + max((p.depth() for p in self.premises), default=0)


class ProvenanceIndex:
    """Forward replay of a chase run, tracking fact origins through merges."""

    def __init__(self, database: Instance, result: ChaseResult) -> None:
        self.result = result
        # Map each (current) fact to (source, step, premise facts at the
        # time of creation), updated as substitutions rewrite facts.
        self.origin: dict[Atom, tuple[str, StepOutcome | None, list[Atom]]] = {}
        for fact in database:
            self.origin[fact] = ("database", None, [])
        for step in result.steps:
            dep = step.trigger.dependency
            label = dep.label or str(dep)
            if step.gamma is not None:
                mapping = {step.gamma.old: step.gamma.new}
                rewritten: dict[Atom, tuple] = {}
                for fact, (src, via, premises) in self.origin.items():
                    new_fact = fact.apply(mapping)
                    new_premises = [p.apply(mapping) for p in premises]
                    # On collisions keep the earliest origin (first wins).
                    rewritten.setdefault(new_fact, (src, via, new_premises))
                self.origin = rewritten
                continue
            h = step.trigger.mapping()
            premises = [a.apply(h) for a in dep.body]
            for fact in step.added:
                self.origin.setdefault(fact, (label, step, premises))

    def explain(self, fact: Atom, max_depth: int = 25) -> Derivation:
        """The derivation tree of a fact of the final instance."""
        if fact not in self.origin:
            raise KeyError(f"{fact} is not a fact of the chase result")
        return self._explain(fact, max_depth, seen=frozenset())

    # repro-lint: disable=budget-loop -- depth counter strictly decreases and the seen set breaks cycles; read-only post-chase walk
    def _explain(self, fact: Atom, budget: int, seen: frozenset) -> Derivation:
        src, via, premises = self.origin[fact]
        node = Derivation(fact, src, via)
        if budget <= 0 or fact in seen:
            return node
        for p in premises:
            if p in self.origin:
                node.premises.append(
                    self._explain(p, budget - 1, seen | {fact})
                )
            else:
                node.premises.append(Derivation(p, "merged-away"))
        return node


def explain(
    database: Instance, result: ChaseResult, fact: Atom
) -> Derivation:
    """One-shot: build the index and explain a single fact."""
    return ProvenanceIndex(database, result).explain(fact)
