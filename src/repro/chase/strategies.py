"""Chase strategies: how the next applicable trigger is picked.

The standard chase picks nondeterministically among applicable steps;
different choices yield different sequences (Example 1).  A strategy is a
callable receiving the list of currently applicable triggers and returning
the index of the one to fire.

``full_first`` is the strategy behind the paper's existential-termination
results: full dependencies (full TGDs and EGDs) never create new nulls, so
saturating them before firing existential TGDs gives EGDs the chance to
merge nulls away — exactly how Σ1 of Example 1 and Σ11 of Example 11 obtain
terminating sequences.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .step import Trigger

Strategy = Callable[[Sequence[Trigger]], int]


def fifo(triggers: Sequence[Trigger]) -> int:
    """Fire the oldest discovered applicable trigger."""
    return 0


def lifo(triggers: Sequence[Trigger]) -> int:
    """Fire the most recently discovered applicable trigger."""
    return len(triggers) - 1


def full_first(triggers: Sequence[Trigger]) -> int:
    """Prefer full dependencies (EGDs and full TGDs) over existential TGDs.

    Among full dependencies, EGDs win (merging early keeps instances small).
    """
    best = 0
    best_rank = _rank(triggers[0])
    for i, t in enumerate(triggers):
        r = _rank(t)
        if r < best_rank:
            best, best_rank = i, r
    return best


def egd_first(triggers: Sequence[Trigger]) -> int:
    """Prefer EGDs, then anything."""
    for i, t in enumerate(triggers):
        if t.dependency.is_egd:
            return i
    return 0


def existential_first(triggers: Sequence[Trigger]) -> int:
    """Adversarial strategy: prefer null-creating steps (used in tests to
    find non-terminating sequences)."""
    for i, t in enumerate(triggers):
        if t.dependency.is_existential:
            return i
    return 0


def _rank(trigger: Trigger) -> int:
    dep = trigger.dependency
    if dep.is_egd:
        return 0
    if dep.is_full:
        return 1
    return 2


def random_strategy(seed: int) -> Strategy:
    """A reproducible random strategy."""
    rng = random.Random(seed)

    def pick(triggers: Sequence[Trigger]) -> int:
        return rng.randrange(len(triggers))

    return pick


NAMED_STRATEGIES: dict[str, Strategy] = {
    "fifo": fifo,
    "lifo": lifo,
    "full_first": full_first,
    "egd_first": egd_first,
    "existential_first": existential_first,
}


def resolve_strategy(strategy: "Strategy | str") -> Strategy:
    """Accept a strategy callable or one of the registered names."""
    if callable(strategy):
        return strategy
    try:
        return NAMED_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; known: {sorted(NAMED_STRATEGIES)}"
        ) from None
