"""Resource budgets and cooperative cancellation.

Every potentially non-terminating analysis in the system — the Adn∃
adornment saturation, chase runs, Skolem saturation (MFA/MSA), witness
enumeration, chase-sequence exploration — consumes one shared notion of
resource budget.  A :class:`Budget` bounds up to three dimensions:

* **steps** — abstract units of work (loop iterations, unification
  attempts, homomorphism checks; each call site decides what one step
  means, the point is only that the count is finite and monotone);
* **facts** — size of a materialised result (instance facts, adorned
  records), for loops whose iterations are cheap but whose state grows;
* **wall clock** — milliseconds since the budget was started, the
  catch-all for divergence shapes the other two dimensions miss.

Exhaustion is a *verdict*, not an exception escape: ``charge`` returns
``False`` once the budget is blown and the caller unwinds normally,
returning its best partial answer flagged ``exact=False`` together with
the :class:`BudgetExhausted` record saying which dimension blew.  No
analysis raises to report exhaustion — see DESIGN.md §2 for why.

A :class:`Cancellation` token provides cooperative early termination:
sharing one token across several budgets (e.g. the per-criterion budgets
of a classification portfolio) lets a controller revoke all of them at
once; the workers observe it at their next ``charge``.

Budgets nest: a child budget created with :meth:`Budget.child` has its
own limits but also charges its parent, so a per-call allowance (say, one
witness-engine pair) still counts against the enclosing per-criterion
budget and observes its deadline and cancellation.

An *ambient* budget can be installed for a dynamic scope with
:func:`budget_scope`; deep call chains (criterion → oracle → witness
engine) pick it up via :func:`current_budget` without threading a
parameter through every layer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

#: How many step-charges may pass between wall-clock / cancellation
#: checks.  Clock reads are ~100ns but charge sits in the hottest loops
#: of the witness engine, so we only look up every N charges.
_CLOCK_STRIDE = 128


class Cancellation:
    """A cooperative cancellation token shared between budgets."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"Cancellation({state})"


@dataclass(frozen=True)
class BudgetExhausted:
    """The verdict recorded when a budget dimension blows.

    ``dimension`` is one of ``"steps"``, ``"facts"``, ``"wall_ms"`` or
    ``"cancelled"``; ``spent`` is the consumption observed at exhaustion
    time and ``limit`` the configured bound (None for cancellation).
    """

    dimension: str
    spent: float
    limit: float | None

    def __str__(self) -> str:
        if self.dimension == "cancelled":
            return "cancelled"
        return f"{self.dimension} exhausted ({self.spent:g} of {self.limit:g})"


class Budget:
    """A multi-dimensional, non-raising resource budget.

    All dimensions are optional; a budget with no limits (and no
    cancellation) never exhausts.  ``charge``/``charge_facts`` return
    ``True`` while work may continue and ``False`` — permanently — once
    any dimension blows.
    """

    __slots__ = (
        "max_steps",
        "max_facts",
        "max_ms",
        "cancellation",
        "parent",
        "steps",
        "facts",
        "_start",
        "_exhausted",
        "_until_clock_check",
    )

    def __init__(
        self,
        max_steps: int | None = None,
        max_facts: int | None = None,
        max_ms: float | None = None,
        cancellation: Cancellation | None = None,
        parent: "Budget | None" = None,
    ) -> None:
        self.max_steps = max_steps
        self.max_facts = max_facts
        self.max_ms = max_ms
        self.cancellation = cancellation
        self.parent = parent
        self.steps = 0
        self.facts = 0
        self._start = time.monotonic()
        self._exhausted: BudgetExhausted | None = None
        self._until_clock_check = 0

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    def child(
        self,
        max_steps: int | None = None,
        max_facts: int | None = None,
        max_ms: float | None = None,
    ) -> "Budget":
        """A sub-budget with its own limits that also charges ``self``."""
        return Budget(
            max_steps=max_steps,
            max_facts=max_facts,
            max_ms=max_ms,
            cancellation=self.cancellation,
            parent=self,
        )

    # -- charging ----------------------------------------------------------

    def charge(self, n: int = 1) -> bool:
        """Consume ``n`` steps; False once the budget is exhausted."""
        if self._exhausted is not None:
            return False
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            self._exhausted = BudgetExhausted("steps", self.steps, self.max_steps)
            return False
        # The clock-check countdown consumes n, not 1: a bulk charge
        # covers n units of work, so bulk-charging loops must hit the
        # stride-gated wall-clock/cancellation checks as often per unit
        # of work as unit-charging ones.
        self._until_clock_check -= n
        if self._until_clock_check <= 0:
            self._until_clock_check = _CLOCK_STRIDE
            if not self._check_slow():
                return False
        if self.parent is not None and not self.parent.charge(n):
            self._exhausted = self.parent._exhausted
            return False
        return True

    def charge_facts(self, n: int = 1) -> bool:
        """Consume ``n`` facts; False once the budget is exhausted."""
        if self._exhausted is not None:
            return False
        self.facts += n
        if self.max_facts is not None and self.facts > self.max_facts:
            self._exhausted = BudgetExhausted("facts", self.facts, self.max_facts)
            return False
        # See charge(): the countdown consumes n, not 1.
        self._until_clock_check -= n
        if self._until_clock_check <= 0:
            self._until_clock_check = _CLOCK_STRIDE
            if not self._check_slow():
                return False
        if self.parent is not None and not self.parent.charge_facts(n):
            self._exhausted = self.parent._exhausted
            return False
        return True

    def _check_slow(self) -> bool:
        """The stride-gated checks: cancellation and wall clock."""
        if self.cancellation is not None and self.cancellation.cancelled:
            self._exhausted = BudgetExhausted("cancelled", 0, None)
            return False
        if self.max_ms is not None:
            elapsed = (time.monotonic() - self._start) * 1000.0
            if elapsed > self.max_ms:
                self._exhausted = BudgetExhausted("wall_ms", elapsed, self.max_ms)
                return False
        return True

    # -- inspection --------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while work may continue (forces the slow checks)."""
        if self._exhausted is not None:
            return False
        if not self._check_slow():
            return False
        if self.parent is not None and not self.parent.ok:
            self._exhausted = self.parent._exhausted
            return False
        return True

    @property
    def exhausted(self) -> BudgetExhausted | None:
        return self._exhausted

    @property
    def exact(self) -> bool:
        """True iff the budget never blew: results are not truncated."""
        return self._exhausted is None

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self._start) * 1000.0

    def __repr__(self) -> str:
        state = str(self._exhausted) if self._exhausted else "ok"
        return (
            f"Budget(steps={self.steps}/{self.max_steps}, "
            f"facts={self.facts}/{self.max_facts}, "
            f"ms={self.elapsed_ms():.0f}/{self.max_ms}, {state})"
        )


# -- ambient budget ---------------------------------------------------------

_AMBIENT: ContextVar[Budget | None] = ContextVar("repro_ambient_budget", default=None)


def current_budget() -> Budget | None:
    """The budget installed for the current dynamic scope, if any."""
    return _AMBIENT.get()


@contextmanager
def budget_scope(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for the ``with`` body.

    Deeply nested consumers (the witness engine behind a criterion's
    firing oracle, the saturation loop behind MFA) call
    :func:`current_budget` and link their local budgets to it, so one
    scope bounds an entire analysis without parameter threading.
    """
    token = _AMBIENT.set(budget)
    try:
        yield budget
    finally:
        _AMBIENT.reset(token)


def coerce_budget(
    budget: "Budget | int | None",
    default_steps: int | None = None,
    link_ambient: bool = True,
) -> Budget:
    """Normalise the common ``budget`` parameter shapes.

    ``None`` becomes a fresh budget limited to ``default_steps``;
    an ``int`` is a step limit (the historical calling convention of the
    witness engine); a :class:`Budget` passes through untouched.  Fresh
    budgets are parented to the ambient budget when one is installed.
    """
    if isinstance(budget, Budget):
        return budget
    steps = budget if budget is not None else default_steps
    parent = current_budget() if link_ambient else None
    if parent is not None:
        return parent.child(max_steps=steps)
    return Budget(max_steps=steps)
