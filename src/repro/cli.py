"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``classify FILE``
    Run the termination-criterion portfolio on a dependency file.

``chase FILE --data FACTS``
    Run a chase (variant/strategy selectable) and print the result.

``adorn FILE``
    Run Adn∃ and print the adorned dependencies, definitions and Acyc.

``graph FILE``
    Print the chase graph and firing graph (optionally as DOT).

``explore FILE --data FACTS``
    Exhaustively explore the chase's nondeterminism within bounds.

``batch FILE... | batch --corpus``
    Batch-evaluate many programs through the sharded, content-addressed
    result cache (``repro.batch``): ``--jobs`` fans out over processes,
    ``--cache-dir`` makes re-runs incremental and interrupted runs
    resumable, ``--shard I/N`` splits the key space across machines,
    ``--store sqlite|jsonl`` selects the cache's backend (DESIGN.md §7).

``batch query --cache-dir DIR``
    Filter/sort/paginate the verdicts stored in a cache directory
    (keyset cursors — the surface a result-serving API sits on).

``batch export-jsonl | batch import-jsonl``
    Move a cache directory to/from the portable JSONL snapshot format.

(``batch FILE...`` is shorthand for ``batch run FILE...`` — the bare
form stays the way it always was.)

``lint [PATH...]``
    Run the project's AST invariant checker (:mod:`repro.devtools.lint`)
    over ``src``/``tests``/``benchmarks`` (or the given paths).  Each
    rule enforces a DESIGN.md section (see §8); exit 0 means no
    unsuppressed, unbaselined finding.  ``--format json`` for CI,
    ``--write-baseline`` to grandfather the current findings.

Dependency files use the syntax of :mod:`repro.model.parser`; facts files
contain atoms such as ``N("a") E("a","b")``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .analysis import classify
from .chase import explore_chase, run_chase
from .core import adn_exists
from .firing import chase_graph, firing_graph, render_graph
from .firing.graphs import to_dot
from .model import DependencySet, Instance, parse_dependencies, parse_facts


def _load_sigma(path: str) -> DependencySet:
    return parse_dependencies(pathlib.Path(path).read_text())


def _load_facts(spec: str) -> Instance:
    p = pathlib.Path(spec)
    text = p.read_text() if p.exists() else spec
    return parse_facts(text)


def cmd_classify(args: argparse.Namespace) -> int:
    """Run the criterion portfolio.

    Exit codes mirror ``repro chase``: 0 — some criterion accepts;
    1 — every criterion rejects with its analysis complete; 2 — no
    acceptance and some criterion exhausted its budget, so the rejection
    cannot be trusted.
    """
    sigma = _load_sigma(args.file)
    criteria = args.criteria.split(",") if args.criteria else None
    report = classify(
        sigma,
        criteria=criteria,
        jobs=args.jobs,
        budget_steps=args.budget_steps,
        budget_ms=args.budget_ms,
        short_circuit=args.short_circuit,
        backend=args.backend,
        hierarchy=args.hierarchy,
    )
    print(report)
    if args.stats:
        print()
        print(report.render_stats())
    if report.guarantees_exists:
        return 0
    return 2 if report.any_exhausted else 1


def cmd_chase(args: argparse.Namespace) -> int:
    """Run one chase sequence; exit 0 on termination, 2 on budget."""
    sigma = _load_sigma(args.file)
    db = _load_facts(args.data)
    result = run_chase(
        db,
        sigma,
        variant=args.variant,
        strategy=args.strategy,
        max_steps=args.max_steps,
    )
    print(f"status: {result.status.value} after {result.step_count} steps")
    if result.instance is not None:
        for fact in sorted(result.instance, key=str):
            print(f"  {fact}")
    return 0 if result.terminated else 2


def cmd_adorn(args: argparse.Namespace) -> int:
    """Run Adn∃; exit 0 iff Acyc is true."""
    sigma = _load_sigma(args.file)
    result = adn_exists(sigma)
    approx = ""
    if not result.exact:
        approx = f"   ~approximate ({result.stats['stopped']})"
    print(f"Acyc = {result.acyclic}   |Σ| = {len(sigma)}   "
          f"|Σµ| = {result.stats['size_adorned']}   "
          f"({result.stats['elapsed_ms']:.1f} ms){approx}")
    print("\nadorned dependencies:")
    for rec in result.records:
        marker = "·" if rec.is_bridge else "+"
        print(f"  {marker} {rec.dep}")
    if result.definitions:
        print("\nadornment definitions:")
        for d in result.definitions:
            print(f"  {d}")
    return 0 if result.acyclic else 1


def cmd_graph(args: argparse.Namespace) -> int:
    """Print the chase and firing graphs (text or DOT)."""
    sigma = _load_sigma(args.file)
    g = chase_graph(sigma)
    gf = firing_graph(sigma)
    if args.dot:
        print(to_dot(g, "chase_graph"))
        print(to_dot(gf, "firing_graph"))
    else:
        print(render_graph(g, "Chase graph G(Σ)"))
        print()
        print(render_graph(gf, "Firing graph Gf(Σ)"))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Explore every chase sequence; exit 0 iff one terminates."""
    sigma = _load_sigma(args.file)
    db = _load_facts(args.data)
    result = explore_chase(
        db, sigma, variant=args.variant,
        max_depth=args.max_depth, max_states=args.max_states,
    )
    print(f"verdict: {result.verdict.value}")
    print(f"  terminating leaves: {result.terminating_paths}")
    print(f"  failing leaves:     {result.failing_paths}")
    print(f"  cut-off paths:      {result.capped_paths}")
    print(f"  states explored:    {result.explored_states}")
    return 0 if result.some_terminating else 1


def _parse_shard(spec: str | None) -> tuple[int, int] | None:
    if spec is None:
        return None
    try:
        index, count = (int(part) for part in spec.split("/", 1))
    except ValueError:
        raise SystemExit(f"bad --shard {spec!r}: expected I/N, e.g. 0/4")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"bad --shard {spec!r}: need 0 <= I < N")
    return (index, count)


def cmd_batch(args: argparse.Namespace) -> int:
    """Batch-evaluate dependency files or the synthetic corpus.

    Exit codes extend the ``classify`` contract to a whole corpus:
    0 — every selected program evaluated, no budget trouble; 1 — the run
    is incomplete (interrupted; re-run with the same ``--cache-dir`` to
    resume); 2 — complete, but some program exhausted its budget, so its
    recorded rejection cannot be trusted.
    """
    from .batch import BatchConfig, evaluate_corpus
    from .generators.corpus import GeneratedOntology, generate_corpus

    if bool(args.files) == bool(args.corpus):
        raise SystemExit("batch needs dependency files or --corpus (not both)")
    if args.corpus:
        classes = args.corpus_classes.split(",") if args.corpus_classes else None
        programs = generate_corpus(
            scale=args.corpus_scale,
            tests_scale=args.corpus_tests_scale,
            classes=classes,
        )
    else:
        programs = [
            GeneratedOntology(
                name=pathlib.Path(f).stem,
                class_name="file",
                sigma=_load_sigma(f),
                seed=0,
                character="file",
            )
            for f in args.files
        ]
    config = BatchConfig(
        mode=args.mode,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        store=args.store,
        shard=_parse_shard(args.shard),
        resume=args.resume,
        budget_steps=args.budget_steps,
        budget_ms=args.budget_ms,
        chase_steps=args.chase_steps,
        criteria=args.criteria.split(",") if args.criteria else None,
    )
    report = evaluate_corpus(programs, config)
    if args.format == "jsonl":
        if report.results:
            print(report.to_jsonl())
        print(report.summary_line(), file=sys.stderr)
    else:
        print(report.render_table())
    if not report.complete:
        return 1
    return 2 if report.any_exhausted else 0


def _open_store(args) -> tuple:
    """The (ResultCache, ArtifactStore) pair of a cache directory."""
    from .batch import ArtifactStore, ResultCache

    cache = ResultCache(args.cache_dir, backend=args.store)
    store = ArtifactStore(args.cache_dir, backend=args.store)
    return cache, store


def cmd_batch_export(args: argparse.Namespace) -> int:
    """Snapshot a cache directory as portable JSONL files."""
    from .store import export_jsonl

    cache, store = _open_store(args)
    try:
        results_text, artifacts_text, report = export_jsonl(cache, store)
    finally:
        cache.close()
        store.close()
    if args.output is None:
        sys.stdout.write(results_text)
        print(f"exported {report.summary()}", file=sys.stderr)
        return 0
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    (out / "results.jsonl").write_text(results_text)
    (out / "artifacts.jsonl").write_text(artifacts_text)
    print(f"exported {report.summary()} to {out}")
    return 0


def cmd_batch_import(args: argparse.Namespace) -> int:
    """Replay JSONL snapshots into a cache directory's store."""
    from .store import import_jsonl

    source = pathlib.Path(args.input if args.input else args.cache_dir)
    results_path = source / "results.jsonl"
    artifacts_path = source / "artifacts.jsonl"
    if not results_path.exists() and not artifacts_path.exists():
        raise SystemExit(f"nothing to import: no JSONL snapshot in {source}")
    cache, store = _open_store(args)
    try:
        report = import_jsonl(
            cache,
            results_path.read_text() if results_path.exists() else "",
            store,
            artifacts_path.read_text() if artifacts_path.exists() else "",
        )
    finally:
        cache.close()
        store.close()
    print(f"imported {report.summary()} into {args.cache_dir}")
    return 0


def cmd_batch_query(args: argparse.Namespace) -> int:
    """Query the stored verdicts of a cache directory.

    Exit 0 with rows on stdout; the keyset cursor for the next page (if
    any) goes to stderr so piped output stays clean.
    """
    import json

    from .batch import ResultCache
    from .io import jsonl_dumps
    from .store import QueryError, ResultQuery

    cache = ResultCache(args.cache_dir, backend=args.store)
    if getattr(args, "stats", False):
        try:
            print(json.dumps(cache.stats_snapshot(), indent=2, sort_keys=True))
        finally:
            cache.close()
        return 0
    try:
        page = cache.query(
            ResultQuery(
                verdict=args.verdict,
                criterion=args.criterion,
                exhausted=args.exhausted,
                key_prefix=args.key_prefix,
                sort=args.sort,
                limit=args.limit,
                cursor=args.cursor,
            )
        )
    except QueryError as exc:
        raise SystemExit(f"bad query: {exc}")
    finally:
        cache.close()
    if args.format == "jsonl":
        for row in page.rows:
            print(jsonl_dumps(row))
    else:
        head = (
            f"{'key':<16} {'program':<24} {'verdict':<44} "
            f"{'budget':>6} {'ms':>8}"
        )
        print(head)
        print("-" * len(head))
        for row in page.rows:
            # elapsed_ms is nullable: a record that never measured
            # wall-clock renders blank, not a fake 0.0.
            ms = row["elapsed_ms"]
            print(
                f"{row['key'][:16]:<16} {row['name']:<24} "
                f"{row['verdict']:<44} "
                f"{row['exhausted'] or '':>6} "
                f"{'' if ms is None else f'{ms:.1f}':>8}"
            )
        print("-" * len(head))
        print(f"{len(page.rows)} rows")
    if page.next_cursor is not None:
        print(f"next cursor: {page.next_cursor}", file=sys.stderr)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the DESIGN.md invariant checker (DESIGN.md §8).

    Exit 0 — clean (baselined/suppressed findings allowed); 1 — at least
    one unsuppressed, unbaselined finding; 2 — usage trouble (bad path,
    malformed baseline).
    """
    from collections import Counter

    from .devtools.lint import (
        BASELINE_NAME,
        DEFAULT_PATHS,
        all_rules,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        save_baseline,
    )

    root = pathlib.Path(args.root).resolve()
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:<28} {rule.section:<7} {rule.summary}")
        return 0
    baseline_path = pathlib.Path(
        args.baseline if args.baseline else root / BASELINE_NAME
    )
    try:
        baseline = Counter() if args.no_baseline else load_baseline(baseline_path)
    except ValueError as exc:
        print(f"bad baseline: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_lint(
            root, args.paths or DEFAULT_PATHS, baseline=baseline
        )
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(baseline_path, report)
        print(f"baseline written: {baseline_path} "
              f"({len(report.baseline_material)} entries)")
        return 0
    output = render_json(report) if args.format == "json" else render_text(report)
    sys.stdout.write(output)
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chase termination analysis "
        "(Calautti et al., PVLDB 9(5), 2016 — reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="run the termination criteria portfolio")
    p.add_argument("file")
    p.add_argument("--criteria", help="comma-separated subset, e.g. WA,SAC")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run criteria concurrently on N threads (default 1)")
    p.add_argument("--budget-steps", type=int, default=None, metavar="N",
                   help="per-criterion work budget in abstract steps; "
                        "exhaustion is reported, never an error")
    p.add_argument("--budget-ms", type=float, default=None, metavar="MS",
                   help="per-criterion wall-clock budget in milliseconds")
    p.add_argument("--short-circuit", action="store_true",
                   help="cancel criteria that can no longer change the "
                        "overall verdict (cheap static criteria usually "
                        "decide it first)")
    p.add_argument("--backend", default="shared",
                   choices=["shared", "standalone", "isolated"],
                   help="artifact sharing across criteria: one shared "
                        "analysis context (default), the per-criterion "
                        "standalone reference path, or fully isolated "
                        "recomputation")
    p.add_argument("--hierarchy", action="store_true",
                   help="fill in verdicts already implied or refuted by "
                        "the paper's criterion containments (e.g. WA ⇒ "
                        "SC ⇒ SR ⇒ IR) instead of running those criteria")
    p.add_argument("--stats", action="store_true",
                   help="print artifact / firing-decision cache "
                        "statistics after the report")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser(
        "batch",
        help="batch-evaluate many programs (sharded, content-addressed cache)",
    )
    bsub = p.add_subparsers(dest="batch_command", required=True)

    p = bsub.add_parser(
        "run",
        help="evaluate programs (the default: 'batch FILE...' means "
             "'batch run FILE...')",
    )
    p.add_argument("files", nargs="*",
                   help="dependency files; omit when using --corpus")
    p.add_argument("--corpus", action="store_true",
                   help="evaluate the synthetic Table 2 ontology corpus")
    p.add_argument("--corpus-scale", default=None, metavar="S",
                   help="corpus size scale (float or 'paper'; default: "
                        "REPRO_SCALE or the CI-friendly 0.06)")
    p.add_argument("--corpus-tests-scale", type=float, default=None,
                   metavar="T", help="per-class test count multiplier")
    p.add_argument("--corpus-classes", metavar="A,B",
                   help="restrict to these Table 2(a) classes")
    p.add_argument("--mode", default="evaluate",
                   choices=["evaluate", "classify"],
                   help="evaluate: Adn∃ + chase ground truth (Table 2); "
                        "classify: the full criterion portfolio")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="evaluate programs on N worker processes")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed result cache; re-runs only "
                        "evaluate new or changed programs")
    p.add_argument("--store", default="sqlite", choices=["sqlite", "jsonl"],
                   help="cache backend: the embedded sqlite store "
                        "(default) or the append-only JSONL reference "
                        "logs")
    p.add_argument("--shard", metavar="I/N",
                   help="evaluate only the programs in key-space shard I "
                        "of N (deterministic; for multi-machine runs)")
    p.add_argument("--resume", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="reuse cached results (--no-resume recomputes "
                        "everything but still refreshes the cache)")
    p.add_argument("--format", default="table", choices=["jsonl", "table"],
                   help="stdout format (jsonl prints one record per line)")
    p.add_argument("--budget-steps", type=int, default=None, metavar="N",
                   help="per-program work budget in abstract steps")
    p.add_argument("--budget-ms", type=float, default=None, metavar="MS",
                   help="per-program wall-clock budget in milliseconds")
    p.add_argument("--chase-steps", type=int, default=1_200, metavar="N",
                   help="chase ground-truth step bound (evaluate mode)")
    p.add_argument("--criteria", metavar="A,B",
                   help="criterion subset (classify mode)")
    p.set_defaults(func=cmd_batch)

    p = bsub.add_parser(
        "export-jsonl",
        help="snapshot a cache directory as portable JSONL files",
    )
    p.add_argument("--cache-dir", required=True, metavar="DIR")
    p.add_argument("--store", default="sqlite", choices=["sqlite", "jsonl"],
                   help="backend to export from (default sqlite)")
    p.add_argument("--output", metavar="DIR",
                   help="write results.jsonl/artifacts.jsonl here "
                        "(default: results to stdout)")
    p.set_defaults(func=cmd_batch_export)

    p = bsub.add_parser(
        "import-jsonl",
        help="replay a JSONL snapshot into a cache directory's store",
    )
    p.add_argument("--cache-dir", required=True, metavar="DIR")
    p.add_argument("--store", default="sqlite", choices=["sqlite", "jsonl"],
                   help="backend to import into (default sqlite)")
    p.add_argument("--input", metavar="DIR",
                   help="directory holding results.jsonl/artifacts.jsonl "
                        "(default: the cache dir itself)")
    p.set_defaults(func=cmd_batch_import)

    p = bsub.add_parser(
        "query",
        help="filter/sort/paginate the verdicts stored in a cache",
    )
    p.add_argument("--cache-dir", required=True, metavar="DIR")
    p.add_argument("--store", default="sqlite", choices=["sqlite", "jsonl"])
    p.add_argument("--verdict", metavar="V",
                   help="exact headline verdict, e.g. 'WA' or 'rejected'")
    p.add_argument("--criterion", metavar="C",
                   help="only programs accepted by this criterion")
    p.add_argument("--exhausted", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="only budget-exhausted records "
                        "(--no-exhausted: only trusted ones)")
    p.add_argument("--key-prefix", metavar="HEX",
                   help="fingerprint prefix filter")
    p.add_argument("--sort", default="seq", metavar="FIELD",
                   help="seq|name|verdict|elapsed_ms|key, "
                        "'-' prefix for descending (default: seq)")
    p.add_argument("--limit", type=int, default=50, metavar="N")
    p.add_argument("--cursor", metavar="CUR",
                   help="keyset cursor from a previous page's stderr")
    p.add_argument("--format", default="table", choices=["table", "jsonl"])
    p.add_argument("--stats", action="store_true",
                   help="print store statistics (row counts, file/WAL "
                        "sizes, cache hit counters) as JSON and exit")
    p.set_defaults(func=cmd_batch_query)

    p = sub.add_parser(
        "lint",
        help="check the codebase against the DESIGN.md invariants (§8)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to check "
                        "(default: src tests benchmarks)")
    p.add_argument("--root", default=".",
                   help="repository root the paths and the report are "
                        "relative to (default: the working directory)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="report format (json carries machine-readable "
                        "counts for CI)")
    p.add_argument("--baseline", metavar="FILE",
                   help="baseline of grandfathered findings "
                        "(default: <root>/lint-baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline: report every finding")
    p.add_argument("--write-baseline", action="store_true",
                   help="grandfather the current findings into the "
                        "baseline file and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and the DESIGN.md "
                        "sections they enforce")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("chase", help="run one chase sequence")
    p.add_argument("file")
    p.add_argument("--data", required=True, help="facts file or inline facts")
    p.add_argument("--variant", default="standard",
                   choices=["standard", "oblivious", "semi_oblivious"])
    p.add_argument("--strategy", default="full_first")
    p.add_argument("--max-steps", type=int, default=10_000)
    p.set_defaults(func=cmd_chase)

    p = sub.add_parser("adorn", help="run the Adn∃ adornment algorithm")
    p.add_argument("file")
    p.set_defaults(func=cmd_adorn)

    p = sub.add_parser("graph", help="print the chase / firing graphs")
    p.add_argument("file")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("explore", help="explore every chase sequence (bounded)")
    p.add_argument("file")
    p.add_argument("--data", required=True)
    p.add_argument("--variant", default="standard",
                   choices=["standard", "oblivious", "semi_oblivious"])
    p.add_argument("--max-depth", type=int, default=12)
    p.add_argument("--max-states", type=int, default=20_000)
    p.set_defaults(func=cmd_explore)

    return parser


#: ``batch`` subcommands; any other first token after ``batch`` is
#: treated as a program file for the implicit ``run`` subcommand.
_BATCH_SUBCOMMANDS = ("run", "export-jsonl", "import-jsonl", "query")


def _normalise_argv(argv: list[str]) -> list[str]:
    """Insert the implicit ``run`` so ``batch FILE...`` keeps working."""
    if (
        argv
        and argv[0] == "batch"
        and (len(argv) == 1
             or argv[1] not in _BATCH_SUBCOMMANDS + ("-h", "--help"))
    ):
        return [argv[0], "run", *argv[1:]]
    return argv


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(_normalise_argv(argv))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
