"""Conjunctive queries and certain answers (paper Section 2).

The chase's purpose in most applications is query answering: the certain
answers to a union of conjunctive queries over (D, Σ) are computed by
evaluating the query on an arbitrary universal model and keeping the
null-free answers — ``certain(Q, D, Σ) = Q(I)↓`` for I ∈ UMod(D, Σ).

This module provides the query side:

* :class:`ConjunctiveQuery` — ``Q(x̄) :- body`` with evaluation over any
  instance;
* :class:`UnionQuery` — unions of CQs;
* :func:`certain_answers` — chases (D, Σ) to a universal model (the
  strategy defaults to ``full_first``, the ∃-termination-friendly order)
  and evaluates; refuses to answer when the chase did not terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .chase.result import ChaseStatus
from .chase.runner import run_chase
from .homomorphism.finder import find_homomorphisms
from .model.atoms import Atom, atoms_variables
from .model.dependencies import DependencySet
from .model.instances import Instance
from .model.terms import GroundTerm, Term, Variable


class ChaseDidNotTerminate(RuntimeError):
    """Raised when certain answers are requested but no terminating chase
    sequence was found within the step budget."""


class InconsistentTheory(RuntimeError):
    """Raised when the chase fails (⊥): (D, Σ) has no model, so certain
    answers are trivially *all* tuples; callers must decide what that
    means for them."""


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``Q(answer_vars) :- atoms`` (all other variables existential)."""

    atoms: tuple[Atom, ...]
    answer_vars: tuple[Variable, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        body_vars = atoms_variables(self.atoms)
        for v in self.answer_vars:
            if v not in body_vars:
                raise ValueError(
                    f"answer variable {v} does not occur in the query body"
                )

    @classmethod
    def make(
        cls,
        atoms: Sequence[Atom],
        answer_vars: Sequence[Variable],
        name: str = "Q",
    ) -> "ConjunctiveQuery":
        return cls(tuple(atoms), tuple(answer_vars), name)

    @property
    def is_boolean(self) -> bool:
        return not self.answer_vars

    def evaluate(self, instance: Instance) -> set[tuple[GroundTerm, ...]]:
        """``Q(J)``: all answer tuples, nulls included."""
        out: set[tuple[GroundTerm, ...]] = set()
        for h in find_homomorphisms(list(self.atoms), instance, limit=None):
            out.add(tuple(h[v] for v in self.answer_vars))
        return out

    def evaluate_null_free(self, instance: Instance) -> set[tuple]:
        """``Q(J)↓``: answers containing no labelled nulls."""
        return {
            row for row in self.evaluate(instance)
            if all(not t.is_null for t in row)
        }

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.answer_vars)
        body = " ∧ ".join(str(a) for a in self.atoms)
        return f"{self.name}({head}) :- {body}"


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with a common answer arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        arities = {len(q.answer_vars) for q in self.disjuncts}
        if len(arities) > 1:
            raise ValueError("all disjuncts must share the answer arity")

    def evaluate(self, instance: Instance) -> set[tuple]:
        out: set[tuple] = set()
        for q in self.disjuncts:
            out |= q.evaluate(instance)
        return out

    def evaluate_null_free(self, instance: Instance) -> set[tuple]:
        out: set[tuple] = set()
        for q in self.disjuncts:
            out |= q.evaluate_null_free(instance)
        return out


def universal_model(
    database: Instance,
    sigma: DependencySet,
    strategy: str = "full_first",
    max_steps: int = 20_000,
) -> Instance:
    """A canonical universal model of (D, Σ) via the standard chase.

    Raises :class:`ChaseDidNotTerminate` on budget exhaustion and
    :class:`InconsistentTheory` on a failing sequence.
    """
    result = run_chase(database, sigma, strategy=strategy, max_steps=max_steps)
    if result.status is ChaseStatus.FAILURE:
        raise InconsistentTheory(
            "the chase failed (two constants equated): (D, Σ) has no model"
        )
    if result.status is not ChaseStatus.SUCCESS:
        raise ChaseDidNotTerminate(
            f"no terminating chase sequence within {max_steps} steps; "
            "try another strategy or check a termination criterion first"
        )
    assert result.instance is not None
    return result.instance


def certain_answers(
    query: ConjunctiveQuery | UnionQuery,
    database: Instance,
    sigma: DependencySet,
    strategy: str = "full_first",
    max_steps: int = 20_000,
) -> set[tuple]:
    """``certain(Q, D, Σ) = Q(I)↓`` for a chased universal model I."""
    model = universal_model(database, sigma, strategy, max_steps)
    return query.evaluate_null_free(model)


def query(text_atoms: Iterable[Atom], answers: Iterable[Variable]) -> ConjunctiveQuery:
    """Terse constructor: ``query([Atom(...), ...], [x, y])``."""
    return ConjunctiveQuery(tuple(text_atoms), tuple(answers))
