"""Shared concurrency primitives.

:class:`SingleFlightCache` is the memoization core behind both levels of
the shared analysis substrate (DESIGN.md §6): the
:class:`~repro.analysis.context.AnalysisContext` artifact store and the
firing-edge :class:`~repro.firing.relations.DecisionCache`.  Concurrent
requests for the same key elect one *leader* that runs the build; the
rest block on an event and re-check when it fires.  A build may decline
caching (a budget-truncated, non-reproducible value): the leader still
returns its value to its own caller, but the key stays undecided and the
waiters re-elect — possibly themselves — under their own budgets.
"""

from __future__ import annotations

import threading
from typing import Any, Callable


class SingleFlightCache:
    """Thread-safe, single-flight, decline-aware memoization.

    Subclasses layer their domain API over :meth:`_get_or_build` and may
    override the ``_on_*`` hooks (called holding the lock) to keep
    statistics.  ``_values`` is the memo table; subclasses touching it
    directly must hold ``_lock``.
    """

    def __init__(self) -> None:
        self._values: dict = {}
        self._lock = threading.Lock()
        self._in_flight: dict[Any, threading.Event] = {}

    # -- stats hooks (all called under the lock) ---------------------------

    def _on_hit(self) -> None: ...

    def _on_miss(self) -> None: ...

    def _on_wait(self) -> None: ...

    def _on_uncached(self) -> None: ...

    # -- the core ----------------------------------------------------------

    def _get_or_build(
        self, key: Any, build: Callable[[], tuple[Any, bool]]
    ) -> Any:
        """Return the memoized value for ``key`` or build it.

        ``build`` returns ``(value, cacheable)``; only cacheable values
        enter the memo table.  Exactly one caller per key builds at a
        time; the others wait and then re-check.
        """
        while True:
            with self._lock:
                if key in self._values:
                    self._on_hit()
                    return self._values[key]
                event = self._in_flight.get(key)
                if event is None:
                    event = threading.Event()
                    self._in_flight[key] = event
                    self._on_miss()
                    break  # we are the leader
                self._on_wait()
            # A leader is building this key; wait for it, then re-check.
            # Builds are budget-bounded, so the wait is finite; if the
            # leader's value was not cacheable the loop elects a new
            # leader — possibly us — under our own budget.
            event.wait()
        try:
            value, cacheable = build()
            if cacheable:
                with self._lock:
                    self._values[key] = value
            else:
                with self._lock:
                    self._on_uncached()
            return value
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
            event.set()
