"""Developer tooling that ships with the library (DESIGN.md §8).

Nothing in here is imported by the analysis code paths; the package
exists so the invariants DESIGN.md states in prose are machine-checked
(:mod:`repro.devtools.lint`, surfaced as ``repro lint``).
"""
