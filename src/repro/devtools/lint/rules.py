"""The shipped rules: DESIGN.md §1–§7 as AST checks.

Each rule names the design section it guards; DESIGN.md §8 carries the
inverse map.  Rules are deliberately *syntactic* — they ask "does this
loop contain a budget poll", not "is this loop bounded" — so a bounded
loop in a patrolled module carries a one-line suppression stating *why*
it is bounded, which is exactly the reviewable artefact the prose
invariant never produced.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from .framework import Finding, ModuleSource, Rule, register

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk_same_scope(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statement subtrees without descending into nested functions.

    A closure *defined* inside a loop is not *executed* by the loop, so a
    budget poll (or a raise) inside one proves nothing about the
    enclosing scope.
    """
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NESTED_SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _handler_names(type_node: ast.expr | None) -> set[str]:
    """The exception class names an ``except`` clause catches."""
    if type_node is None:
        return set()
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names: set[str] = set()
    for n in nodes:
        if isinstance(n, ast.Name):
            names.add(n.id)
        elif isinstance(n, ast.Attribute):
            names.add(n.attr)
    return names


def _is_call_to(node: ast.AST, owner: str, attr: str) -> bool:
    """Is ``node`` a call spelled ``owner.attr(...)``?"""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == owner
    )


# ---------------------------------------------------------------------------
# budget-loop (§2)
# ---------------------------------------------------------------------------

#: Attribute reads/calls that count as observing the budget machinery:
#: ``budget.charge()`` / ``charge_facts()``, the ``ok`` property, a
#: cancellation token's ``cancelled`` — plus any ``charge*``-named
#: helper (e.g. the adornment driver's stride-batched ``_charge_batched``).
#: Hot loops that hoist the bound method out of the loop body for speed
#: (``charge = budget.charge`` before a plan-replay loop) poll through a
#: *bare name* instead of an attribute; those count too.
_BUDGET_POLLS = {"ok", "cancelled"}


def _poll_name(name: str) -> bool:
    return name in _BUDGET_POLLS or name.lstrip("_").startswith("charge")


def _polls_budget(body: list[ast.stmt]) -> bool:
    for n in _walk_same_scope(body):
        if isinstance(n, ast.Attribute) and _poll_name(n.attr):
            return True
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and _poll_name(n.func.id)
        ):
            return True
    return False


def _calls_itself(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for n in _walk_same_scope(func.body):
        if isinstance(n, ast.Call):
            callee = n.func
            if isinstance(callee, ast.Name) and callee.id == func.name:
                return True
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr == func.name
                and isinstance(callee.value, ast.Name)
                and callee.value.id in ("self", "cls")
            ):
                return True
    return False


@register
class BudgetLoopRule(Rule):
    """Every loop in a divergence-prone module must observe the budget.

    The §2 contract: each potentially unbounded analysis loop charges a
    :class:`repro.budget.Budget` (or polls a ``Cancellation`` token) per
    iteration, so a step/wall-clock limit always terminates it.  Bounded
    loops in these modules carry a suppression whose justification states
    the bound — making boundedness a reviewed claim instead of a hope.
    """

    name = "budget-loop"
    section = "§2"
    summary = (
        "while loops and recursive functions in chase/adornment/witness/"
        "explorer modules must charge a Budget or poll a Cancellation token"
    )
    include = (
        "*src/repro/chase/*.py",
        "*src/repro/core/adornment.py",
        "*src/repro/firing/witness.py",
    )

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.While) and not _polls_budget(node.body):
                yield mod.finding(
                    node,
                    self.name,
                    "while loop neither charges a Budget nor polls a "
                    "Cancellation token (DESIGN.md §2); charge per iteration "
                    "or suppress with the boundedness argument",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _calls_itself(node) and not _polls_budget(node.body):
                    yield mod.finding(
                        node,
                        self.name,
                        f"recursive function '{node.name}' never charges a "
                        "Budget or polls a Cancellation token (DESIGN.md §2)",
                    )


# ---------------------------------------------------------------------------
# swallowed-control-exception (§2)
# ---------------------------------------------------------------------------

#: Exception classes that carry control flow the §2 contract depends on.
#: ``BudgetExhausted``/``Cancellation`` are verdict types today, but any
#: handler naming them is either dead or a soundness bug in the making;
#: ``CoreBudgetExceeded``/``KeyboardInterrupt`` are the live control
#: exceptions (core search cutoff, the batch engine's SIGINT drain).
_CONTROL_EXCEPTIONS = {
    "BudgetExhausted",
    "Cancellation",
    "CoreBudgetExceeded",
    "KeyboardInterrupt",
}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_trivial_body(body: list[ast.stmt]) -> bool:
    """Only ``pass``/``continue``/docstring — pure suppression."""
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue))
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


@register
class SwallowedControlExceptionRule(Rule):
    """No handler may silently eat budget/cancellation control flow.

    The PR 2 unsoundness class: exhaustion suppressed on the way up gets
    misreported as a completed (and therefore trusted) analysis.  A
    handler naming a control exception must re-raise or convert it into a
    recorded verdict (any non-trivial body); a broad ``except
    Exception``/``BaseException`` must re-raise, because it would eat
    whatever control flow unwinds through it.
    """

    name = "swallowed-control-exception"
    section = "§2"
    summary = (
        "except clauses must not suppress BudgetExhausted/Cancellation-"
        "style control flow without re-raising or recording a verdict"
    )

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue  # bare except is its own rule
            names = _handler_names(node.type)
            reraises = any(
                isinstance(n, ast.Raise) for n in _walk_same_scope(node.body)
            )
            control = names & _CONTROL_EXCEPTIONS
            if control and not reraises and _is_trivial_body(node.body):
                yield mod.finding(
                    node,
                    self.name,
                    f"handler swallows {', '.join(sorted(control))} without "
                    "re-raising or recording a verdict (DESIGN.md §2)",
                )
            elif names & _BROAD_EXCEPTIONS and not reraises:
                yield mod.finding(
                    node,
                    self.name,
                    f"broad 'except {', '.join(sorted(names & _BROAD_EXCEPTIONS))}' "
                    "without a re-raise can eat budget-exhaustion and "
                    "cancellation control flow (DESIGN.md §2); narrow it or "
                    "re-raise",
                )


# ---------------------------------------------------------------------------
# instance-encapsulation (§1/§5)
# ---------------------------------------------------------------------------

#: ``Instance``'s private fact set, indexes, delta log, undo machinery,
#: and the borrowing accessors only the matching engine may call — plus
#: the columnar store's column/term-table privates (DESIGN.md §10).
_INSTANCE_PRIVATES = {
    "_facts", "_by_predicate", "_by_term", "_by_pos", "_log",
    "_undo", "_sp_stack", "_undo_len", "_log_len",
    "_pred_bucket", "_pos_bucket", "_pos_slots",
    "_index_insert", "_index_remove",
    "_stores", "_terms", "_owned", "_cow",
}


@register
class InstanceEncapsulationRule(Rule):
    """Only instances.py and the matching engine touch Instance innards.

    The §1 index/delta-log lockstep and the §5 undo-log discipline hold
    because every mutation goes through ``add``/``discard``/
    ``merge_terms``; out-of-band access to the fact set or a bucket could
    desynchronise them silently.  Access through ``self`` is exempt — a
    foreign class's own ``_log`` attribute is its own business.
    """

    name = "instance-encapsulation"
    section = "§1/§5"
    summary = (
        "Instance private fact/index/undo attributes are off limits "
        "outside repro/model/instances.py and the matching engine"
    )
    include = ("*src/repro/*.py",)
    exclude = (
        "*repro/model/instances.py",
        "*repro/model/columnar.py",
        "*repro/matching/engine.py",
        "*repro/matching/naive.py",
        "*repro/matching/plans.py",
    )

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _INSTANCE_PRIVATES
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                )
            ):
                yield mod.finding(
                    node,
                    self.name,
                    f"access to Instance private '{node.attr}' outside "
                    "repro/model/instances.py and the matching engine "
                    "(DESIGN.md §1/§5); use the public accessors",
                )


# ---------------------------------------------------------------------------
# fork-safety (§7)
# ---------------------------------------------------------------------------


@register
class ForkSafetyRule(Rule):
    """SQLite connections live behind the pid-guarded ``_Handle`` only.

    The §7 contract: the batch engine forks worker processes while the
    parent holds the store open, so a connection created anywhere but
    lazily inside ``repro/store/sqlite.py``'s handle — in particular a
    module-level connection, which every forked child would inherit and
    share — corrupts the parent's WAL.  Tests that open a read-only
    inspection connection suppress with that justification.
    """

    name = "fork-safety"
    section = "§7"
    summary = (
        "sqlite3.connect only inside repro/store/sqlite.py; never a "
        "module-level or fork-shared connection"
    )

    _ALLOWED = ("*src/repro/store/sqlite.py",)

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        allowed = any(fnmatch.fnmatch(mod.path, p) for p in self._ALLOWED)
        # Module-level connections are unsafe even inside the store
        # module: every forked worker would inherit the handle.
        # ``_walk_same_scope`` over the module body visits exactly the
        # code executed at import time (including class bodies) while
        # skipping function bodies, which run later.
        module_level: set[tuple[int, int]] = set()
        for sub in _walk_same_scope(mod.tree.body):
            if _is_call_to(sub, "sqlite3", "connect") or (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "connect"
            ):
                module_level.add((sub.lineno, sub.col_offset))
                yield mod.finding(
                    sub,
                    self.name,
                    "module-level SQLite connection is shared across "
                    "fork (DESIGN.md §7); open connections lazily "
                    "behind the pid-guarded handle",
                )
        if allowed:
            return
        for node in ast.walk(mod.tree):
            if _is_call_to(node, "sqlite3", "connect") and \
                    (node.lineno, node.col_offset) not in module_level:
                yield mod.finding(
                    node,
                    self.name,
                    "sqlite3.connect outside repro/store/sqlite.py "
                    "(DESIGN.md §7); go through the store's pid-guarded "
                    "handle",
                )


# ---------------------------------------------------------------------------
# determinism (§4/§6)
# ---------------------------------------------------------------------------

#: Call targets whose output lands on disk or in a cache key.
_SINK_NAMES = {"stable_hash", "record_identity", "jsonl_dumps"}
_SINK_ATTRS = {"dumps", "sha256", "sha1", "md5", "blake2b", "blake2s"}

#: ``Instance`` accessors (and builtins) that produce genuinely
#: unordered sets.  Dict views are excluded: dict iteration is
#: insertion-ordered, which deterministic construction preserves.
_SET_RETURNING_ATTRS = {"nulls", "predicates", "constants", "domain"}


def _is_sink_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in _SINK_NAMES
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _SINK_ATTRS
    return False


def _is_setlike(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SET_RETURNING_ATTRS:
            return True
    return False


def _unsorted_setlike(node: ast.AST, protected: bool, out: list[ast.AST]) -> None:
    """Collect set-like expressions not shielded by a ``sorted(...)``."""
    if not protected and _is_setlike(node):
        out.append(node)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "min", "max", "len", "sum")
    ):
        protected = True
    for child in ast.iter_child_nodes(node):
        _unsorted_setlike(child, protected, out)


@register
class DeterminismRule(Rule):
    """Fingerprint/canonical-key/identity code must be order- and
    environment-independent.

    Cache keys and stored identities (§4, §6) are on-disk artefacts: the
    same program must produce byte-identical keys across processes, hash
    seeds and machines.  Set iteration order, ``time``, unseeded
    ``random``, ``id()`` and the salted builtin ``hash()`` all break
    that, silently — a wrong key is just a cache miss until it is a
    wrong verdict served to the wrong program.
    """

    name = "determinism"
    section = "§4/§6"
    summary = (
        "no unsorted set iteration feeding hashes/serialisation, no "
        "time/unseeded random/id()/builtin hash() in identity code"
    )
    include = (
        "*src/repro/batch/fingerprint.py",
        "*src/repro/homomorphism/cores.py",
        "*src/repro/store/query.py",
    )

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            yield from self._forbidden_call(mod, node)
            if _is_sink_call(node):
                bad: list[ast.AST] = []
                assert isinstance(node, ast.Call)
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    _unsorted_setlike(arg, False, bad)
                for expr in bad:
                    yield mod.finding(
                        expr,
                        self.name,
                        "unsorted set iteration feeds a hash/serialisation "
                        "sink (DESIGN.md §4); wrap it in sorted(...)",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    _is_setlike(node.iter):
                if any(_is_sink_call(n) for n in _walk_same_scope(node.body)):
                    yield mod.finding(
                        node,
                        self.name,
                        "loop over an unordered set drives a hash/"
                        "serialisation sink (DESIGN.md §4); iterate "
                        "sorted(...)",
                    )

    def _forbidden_call(self, mod: ModuleSource, node: ast.AST) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        if isinstance(node.func, ast.Name) and node.func.id in ("id", "hash"):
            yield mod.finding(
                node,
                self.name,
                f"builtin {node.func.id}() is process-dependent and must "
                "not reach identity code (DESIGN.md §4)",
            )
        elif isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name):
            owner, attr = node.func.value.id, node.func.attr
            if owner == "time":
                yield mod.finding(
                    node,
                    self.name,
                    f"time.{attr}() in identity code makes keys "
                    "time-dependent (DESIGN.md §4)",
                )
            elif owner == "random":
                yield mod.finding(
                    node,
                    self.name,
                    f"unseeded random.{attr}() in identity code "
                    "(DESIGN.md §4); use a seeded Random instance — "
                    "elsewhere",
                )


# ---------------------------------------------------------------------------
# bare-except (repo-wide)
# ---------------------------------------------------------------------------


@register
class BareExceptRule(Rule):
    """``except:`` catches SystemExit/KeyboardInterrupt and every control
    exception at once; name what you mean (repo-wide hygiene, and the §2
    backstop: a bare except is the broadest possible swallow)."""

    name = "bare-except"
    section = "§2"
    summary = "no bare 'except:' anywhere in the repository"

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield mod.finding(
                    node,
                    self.name,
                    "bare 'except:' swallows every exception including "
                    "control flow; name the exception classes",
                )


# ---------------------------------------------------------------------------
# columnar-boundary (§10)
# ---------------------------------------------------------------------------


@register
class ColumnarBoundaryRule(Rule):
    """No ``Atom`` construction inside the plan executor.

    The columnar backend's whole point is that plan execution moves only
    interned term ids (§10's boundary-materialisation rule): facts become
    ``Atom`` objects at representation boundaries (parsing, rendering,
    fingerprints, witness extraction), never on the matching hot path.
    An ``Atom(...)`` call appearing in ``matching/plans.py`` is a sign a
    boundary leaked into the executor; if one is genuinely needed (a new
    boundary helper living in this module), suppress with a justification.
    """

    name = "columnar-boundary"
    section = "§10"
    summary = (
        "matching/plans.py builds no Atom objects — plan execution stays "
        "on interned term ids; materialise at boundaries only"
    )
    include = ("*src/repro/matching/plans.py",)

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Atom"
            ):
                yield mod.finding(
                    node,
                    self.name,
                    "Atom(...) constructed inside the plan executor; "
                    "matching/plans.py must stay on interned term ids "
                    "(DESIGN.md §10 boundary-materialisation rule)",
                )
