"""``repro.devtools.lint`` — the DESIGN.md invariant checker.

Programmatic surface::

    from repro.devtools.lint import run_lint, all_rules, load_baseline
    report = run_lint(root, paths=["src", "tests", "benchmarks"],
                      baseline=load_baseline(root / "lint-baseline.json"))
    report.clean, report.findings, report.baselined

CLI surface: ``repro lint`` (see ``repro lint --help``); DESIGN.md §8
maps every rule to the design section it enforces.
"""

from .framework import (
    BASELINE_NAME,
    DEFAULT_PATHS,
    Finding,
    LintReport,
    ModuleSource,
    Rule,
    all_rules,
    load_baseline,
    register,
    render_json,
    render_text,
    run_lint,
    save_baseline,
)

__all__ = [
    "BASELINE_NAME",
    "DEFAULT_PATHS",
    "Finding",
    "LintReport",
    "ModuleSource",
    "Rule",
    "all_rules",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "save_baseline",
]
