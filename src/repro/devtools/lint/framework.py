"""The linting framework: findings, rules, suppressions, baseline, runner.

The checker is a set of AST visitors (one :class:`Rule` per invariant,
see :mod:`repro.devtools.lint.rules`) driven over the repository's Python
files.  Three escape hatches keep it honest rather than annoying:

* **per-line suppression** — ``# repro-lint: disable=<rule>[,<rule>...]
  -- <justification>``.  A trailing comment suppresses its own line; a
  comment standing alone on a line suppresses the next line.  The
  justification after ``--`` is *mandatory*: a suppression without one is
  itself reported (``invalid-suppression``) and does not suppress.
* **baseline** — a committed JSON file of grandfathered findings
  (``lint-baseline.json``).  Baselined findings are reported separately
  and do not fail the run; they are matched by ``(rule, path, source
  line text)`` so pure line-number drift does not invalidate the
  baseline, while touching the offending line does.
* **rule scoping** — each rule declares the path patterns it applies to
  (the budget rule only patrols the chase/adornment/witness modules, the
  encapsulation rule exempts the matching engine's documented borrowing
  contract, and so on).

Exit-code contract of :func:`run_lint` consumers (the ``repro lint``
CLI): 0 — no unsuppressed, unbaselined finding; 1 — findings; 2 — usage
or internal trouble.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import pathlib
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Iterator

#: Default baseline file name, resolved against the lint root.
BASELINE_NAME = "lint-baseline.json"

#: Baseline schema version (bump on incompatible format changes).
BASELINE_VERSION = 1

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist", ".eggs"}

#: Framework-owned finding kinds (not in the rule registry, not
#: suppressible by themselves).
PARSE_ERROR = "parse-error"
INVALID_SUPPRESSION = "invalid-suppression"

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str       # posix path relative to the lint root
    line: int       # 1-based
    col: int        # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class ModuleSource:
    """One parsed file handed to every applicable rule."""

    def __init__(self, root: pathlib.Path, abspath: pathlib.Path) -> None:
        self.root = root
        self.abspath = abspath
        self.path = abspath.relative_to(root).as_posix()
        self.text = abspath.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_failure: Finding | None = None
        try:
            self.tree = ast.parse(self.text)
        except SyntaxError as exc:
            self.parse_failure = Finding(
                path=self.path,
                line=exc.lineno or 1,
                col=exc.offset or 1,
                rule=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        # line → set of rule names suppressed there
        self.suppressions: dict[int, set[str]] = {}
        #: suppressions actually consulted (for future use; not reported)
        self.invalid_suppressions: list[Finding] = []
        if self.parse_failure is None:
            self._parse_suppressions()

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _parse_suppressions(self) -> None:
        """Collect ``# repro-lint: disable=...`` comments via tokenize.

        Tokenize (not a regex over raw lines) so suppression markers
        *inside string literals* — this framework's own test fixtures —
        are never mistaken for live suppressions.
        """
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:  # unterminated strings etc.
            return
        code_lines = {
            line
            for tok in tokens
            if tok.type
            not in (
                tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER,
            )
            for line in range(tok.start[0], tok.end[0] + 1)
        }
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            why = (match.group("why") or "").strip()
            if not why:
                self.invalid_suppressions.append(
                    Finding(
                        path=self.path,
                        line=line,
                        col=tok.start[1] + 1,
                        rule=INVALID_SUPPRESSION,
                        message=(
                            "suppression without a justification — write "
                            "'# repro-lint: disable=<rule> -- <why>'"
                        ),
                    )
                )
                continue
            # A trailing comment covers its own line; a comment standing
            # alone covers the next line.
            target = line if line in code_lines else line + 1
            self.suppressions.setdefault(target, set()).update(rules)


class Rule:
    """Base class: one machine-checked invariant.

    Subclasses set the class attributes and implement :meth:`check`.
    ``include``/``exclude`` are fnmatch patterns over the posix path
    relative to the lint root (empty ``include`` means every file).
    """

    name: ClassVar[str] = ""
    section: ClassVar[str] = ""         # the DESIGN.md section it guards
    summary: ClassVar[str] = ""
    include: ClassVar[tuple[str, ...]] = ()
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, path: str) -> bool:
        if self.include and not any(fnmatch.fnmatch(path, p) for p in self.include):
            return False
        return not any(fnmatch.fnmatch(path, p) for p in self.exclude)

    def check(self, mod: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, import side effects done."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return [cls() for _, cls in sorted(_REGISTRY.items())]


# -- baseline ------------------------------------------------------------------


def _baseline_key(finding: Finding, line_text: str) -> tuple[str, str, str]:
    return (finding.rule, finding.path, line_text)


def load_baseline(path: pathlib.Path) -> Counter:
    """The committed grandfather list as a multiset of match keys.

    A missing file is an empty baseline; a malformed one is an error the
    CLI surfaces as exit 2 (a silently ignored baseline would un-baseline
    everything and fail the build confusingly).
    """
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path} is not a version-{BASELINE_VERSION} lint baseline")
    counter: Counter = Counter()
    for entry in data.get("entries", []):
        counter[(entry["rule"], entry["path"], entry["text"])] += 1
    return counter


def save_baseline(path: pathlib.Path, report: "LintReport") -> None:
    """Grandfather every current finding (new *and* previously baselined)."""
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "text": text,
        }
        for f, text in sorted(
            report.baseline_material, key=lambda pair: (pair[0], pair[1])
        )
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- the runner ----------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one lint run over a file set."""

    findings: list[Finding] = field(default_factory=list)   # fail the run
    baselined: list[Finding] = field(default_factory=list)  # grandfathered
    suppressed: int = 0
    files: int = 0
    #: every (finding, source line text) pair eligible for a baseline
    baseline_material: list[tuple[Finding, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def summary_line(self) -> str:
        noun = "finding" if len(self.findings) == 1 else "findings"
        return (
            f"{len(self.findings)} {noun} "
            f"({len(self.baselined)} baselined, {self.suppressed} suppressed) "
            f"in {self.files} files"
        )


def iter_python_files(
    root: pathlib.Path, paths: Iterable[str]
) -> Iterator[pathlib.Path]:
    """Every ``*.py`` under the given paths (files accepted verbatim)."""
    for raw in paths:
        p = (root / raw).resolve() if not pathlib.Path(raw).is_absolute() \
            else pathlib.Path(raw)
        if p.is_file():
            yield p
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for sub in sorted(p.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in sub.parts):
                continue
            yield sub


#: What ``repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def run_lint(
    root: pathlib.Path,
    paths: Iterable[str] = DEFAULT_PATHS,
    rules: Iterable[Rule] | None = None,
    baseline: Counter | None = None,
) -> LintReport:
    """Run every applicable rule over every file; classify the findings.

    ``baseline`` is the loaded grandfather multiset (see
    :func:`load_baseline`); pass ``Counter()`` — or nothing — for none.
    """
    active = list(rules) if rules is not None else all_rules()
    remaining = Counter(baseline or ())
    report = LintReport()
    for abspath in iter_python_files(root, paths):
        mod = ModuleSource(root, abspath)
        report.files += 1
        raw: list[Finding] = []
        if mod.parse_failure is not None:
            raw.append(mod.parse_failure)
        else:
            for rule in active:
                if rule.applies_to(mod.path):
                    raw.extend(rule.check(mod))
            raw.extend(mod.invalid_suppressions)
        for f in sorted(raw):
            if f.rule not in (PARSE_ERROR, INVALID_SUPPRESSION) and \
                    f.rule in mod.suppressions.get(f.line, ()):
                report.suppressed += 1
                continue
            text = mod.line_text(f.line)
            report.baseline_material.append((f, text))
            if remaining[_baseline_key(f, text)] > 0:
                remaining[_baseline_key(f, text)] -= 1
                report.baselined.append(f)
            else:
                report.findings.append(f)
    report.findings.sort()
    report.baselined.sort()
    return report


# -- rendering -----------------------------------------------------------------


def render_text(report: LintReport) -> str:
    """The human format the CLI golden test pins."""
    out = [f.render() for f in report.findings]
    for f in report.baselined:
        out.append(f"{f.render()} [baselined]")
    out.append(report.summary_line())
    return "\n".join(out) + "\n"


def render_json(report: LintReport) -> str:
    """One JSON document (the CI job parses the counts)."""
    payload = {
        "version": BASELINE_VERSION,
        "files": report.files,
        "counts": {
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
        },
        "findings": [f.to_json() for f in report.findings],
        "baselined": [f.to_json() for f in report.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
