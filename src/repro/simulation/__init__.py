"""EGD→TGD simulations: natural and substitution-free."""

from .natural import congruence_rules, natural_simulation
from .substitution_free import (
    EQ,
    enumerate_choices,
    equality_axioms,
    split_repeated_variables,
    substitution_free_simulation,
)

__all__ = [
    "congruence_rules",
    "natural_simulation",
    "EQ",
    "enumerate_choices",
    "equality_axioms",
    "split_repeated_variables",
    "substitution_free_simulation",
]
