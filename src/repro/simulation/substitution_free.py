"""The substitution-free simulation of EGDs by TGDs (Marnette, recalled in
the paper's Section 4 and Example 8).

Given Σ with TGDs and EGDs, produce a TGD-only Σ′:

1. add the equality axioms — symmetry and transitivity of a fresh ``Eq``
   predicate, plus one reflexivity generator per predicate
   (``R(x1..xn) → Eq(x1,x1) ∧ … ∧ Eq(xn,xn)``);
2. replace every EGD head ``x1 = x2`` by ``Eq(x1, x2)``;
3. for every dependency whose body mentions a variable more than once
   (outside ``Eq`` atoms), split occurrences: one occurrence of ``x`` is
   replaced by a fresh ``x_k`` and ``Eq(x, x_k)`` is added to the body,
   until every variable occurs at most once among the ordinary body atoms.
   The split occurrence is chosen non-deterministically in the paper; we
   take the first occurrence in atom order (``enumerate_choices`` yields
   every choice for the analyses that want the disjunction over choices).

The simulation is **sound** (Theorem 2.1: termination of Σ′ implies
termination of Σ for every chase variant and both quantifiers) but **not
complete** (Theorem 2.2) — Σ8 of Example 8 terminates while no simulation
of it does; the simulation bench demonstrates exactly that.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, AnyDependency, DependencySet
from ..model.terms import Variable

EQ = "Eq"


def equality_axioms(sigma: DependencySet, eq: str = EQ) -> list[TGD]:
    """Symmetry, transitivity, and per-predicate reflexivity generators."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    axioms = [
        TGD([Atom(eq, (x, y))], [Atom(eq, (y, x))], label="eq_sym"),
        TGD(
            [Atom(eq, (x, y)), Atom(eq, (y, z))],
            [Atom(eq, (x, z))],
            label="eq_trans",
        ),
    ]
    for pred, arity in sorted(sigma.predicates().items()):
        if pred == eq or arity == 0:
            continue
        args = [Variable(f"x{i + 1}") for i in range(arity)]
        axioms.append(
            TGD(
                [Atom(pred, args)],
                [Atom(eq, (v, v)) for v in args],
                label=f"eq_refl_{pred}",
            )
        )
    return axioms


def _occurrences(body: list[Atom], eq: str) -> dict[Variable, list[tuple[int, int]]]:
    """Variable → list of (atom index, arg position) over non-Eq atoms."""
    occ: dict[Variable, list[tuple[int, int]]] = {}
    for ai, atom in enumerate(body):
        if atom.predicate == eq:
            continue
        for pi, t in enumerate(atom.args):
            if isinstance(t, Variable):
                occ.setdefault(t, []).append((ai, pi))
    return occ


def _split_once(
    body: list[Atom],
    var: Variable,
    occurrence: tuple[int, int],
    fresh_index: int,
    eq: str,
) -> tuple[list[Atom], Variable]:
    """Replace one occurrence of ``var`` with a fresh variable + Eq atom."""
    ai, pi = occurrence
    fresh = Variable(f"{var.name}_{fresh_index}")
    atom = body[ai]
    args = list(atom.args)
    args[pi] = fresh
    new_body = list(body)
    new_body[ai] = Atom(atom.predicate, args)
    new_body.append(Atom(eq, (var, fresh)))
    return new_body, fresh


def split_repeated_variables(
    dep: AnyDependency, eq: str = EQ, choose_first: bool = True
) -> AnyDependency:
    """Apply step 3 to one dependency (deterministic first-occurrence)."""
    body = list(dep.body)
    counter = itertools.count(2)
    while True:
        occ = _occurrences(body, eq)
        repeated = [
            (v, places) for v, places in sorted(occ.items(), key=lambda p: p[0].name)
            if len(places) > 1
        ]
        if not repeated:
            break
        var, places = repeated[0]
        place = places[0] if choose_first else places[-1]
        body, _ = _split_once(body, var, place, next(counter), eq)
    if isinstance(dep, TGD):
        return TGD(body, dep.head, label=dep.label)
    return EGD(body, dep.lhs, dep.rhs, label=dep.label)


def substitution_free_simulation(
    sigma: DependencySet, eq: str = EQ
) -> DependencySet:
    """The full simulation Σ → Σ′ (deterministic occurrence choices)."""
    out = DependencySet(equality_axioms(sigma, eq))
    for dep in sigma:
        if isinstance(dep, EGD):
            rewritten: AnyDependency = TGD(
                dep.body,
                [Atom(eq, (dep.lhs, dep.rhs))],
                label=f"{dep.label}_eq" if dep.label else "",
            )
        else:
            rewritten = dep
        out.add(split_repeated_variables(rewritten, eq))
    return out


def enumerate_choices(
    dep: AnyDependency, eq: str = EQ, limit: int = 64
) -> Iterator[AnyDependency]:
    """All substitution-free variants of one dependency (the paper's
    non-deterministic replacement), capped at ``limit``."""
    seen: set[AnyDependency] = set()

    def rec(body: list[Atom], fresh_index: int) -> Iterator[list[Atom]]:
        occ = _occurrences(body, eq)
        repeated = [
            (v, places) for v, places in sorted(occ.items(), key=lambda p: p[0].name)
            if len(places) > 1
        ]
        if not repeated:
            yield body
            return
        var, places = repeated[0]
        for place in places:
            new_body, _ = _split_once(body, var, place, fresh_index, eq)
            yield from rec(new_body, fresh_index + 1)

    count = 0
    if isinstance(dep, EGD):
        base: AnyDependency = TGD(dep.body, [Atom(eq, (dep.lhs, dep.rhs))], label=dep.label)
    else:
        base = dep
    for body in rec(list(base.body), 2):
        variant = TGD(body, base.head, label=base.label)  # type: ignore[union-attr]
        if variant not in seen:
            seen.add(variant)
            count += 1
            yield variant
            if count >= limit:
                return
