"""The natural simulation of EGDs by TGDs (Gottlob–Nash, "Efficient core
computation in data exchange"; recalled in the paper's Section 4).

The natural simulation keeps dependency bodies intact and instead makes
``Eq`` a congruence: besides reflexivity/symmetry/transitivity, one
*substitution rule* per predicate position propagates equality into every
atom::

    R(x1, …, xi, …, xn) ∧ Eq(xi, y) → R(x1, …, y, …, xn)

EGD heads become ``Eq`` atoms as in the substitution-free simulation.  The
substitution-free simulation refines this construction (fewer rules fire),
which is why the paper's Section 4 analyses only the latter; we provide
both for completeness and for the simulation bench.
"""

from __future__ import annotations

from ..model.atoms import Atom
from ..model.dependencies import EGD, TGD, DependencySet
from ..model.terms import Variable
from .substitution_free import EQ, equality_axioms


def congruence_rules(sigma: DependencySet, eq: str = EQ) -> list[TGD]:
    """The per-position substitution rules making Eq a congruence."""
    rules = []
    y = Variable("y_subst")
    for pred, arity in sorted(sigma.predicates().items()):
        if pred == eq:
            continue
        for i in range(arity):
            args = [Variable(f"x{k + 1}") for k in range(arity)]
            new_args = list(args)
            new_args[i] = y
            rules.append(
                TGD(
                    [Atom(pred, args), Atom(eq, (args[i], y))],
                    [Atom(pred, new_args)],
                    label=f"eq_subst_{pred}_{i + 1}",
                )
            )
    return rules


def natural_simulation(sigma: DependencySet, eq: str = EQ) -> DependencySet:
    """The natural simulation Σ → Σ′ (TGDs only)."""
    out = DependencySet(equality_axioms(sigma, eq))
    for rule in congruence_rules(sigma, eq):
        out.add(rule)
    for dep in sigma:
        if isinstance(dep, EGD):
            out.add(
                TGD(
                    dep.body,
                    [Atom(eq, (dep.lhs, dep.rhs))],
                    label=f"{dep.label}_eq" if dep.label else "",
                )
            )
        else:
            out.add(dep)
    return out
