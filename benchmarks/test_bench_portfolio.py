"""Sequential-vs-portfolio classification micro-benchmark.

The workload is the random-program corpus the property tests draw from
(``random_dependency_set``, 3 dependencies, 30% EGDs) — the same family
whose seed 36 historically hung `adn_exists` and which PR 2 made
boundable.  Two arms classify every program:

* **sequential** — the seed's path: ``classify(sigma)``, every criterion
  to completion in cost order;
* **portfolio**  — ``classify(sigma, jobs=4, short_circuit=True,
  budget_ms=250, budget_steps=2_000_000)``: criteria run concurrently
  under per-criterion budgets, and criteria that can no longer change
  the headline verdict are cancelled.  On most programs the cheap static
  criteria (WA/SC, microseconds) decide "all sequences terminate" before
  the witness-engine-heavy ones (LS/S-Str/SAC, up to ~1s) even warm up;
  on the heavy tail the budgets bound the stragglers.

The bench asserts the portfolio's headline verdict matches the full
sequential one on every program **except** where the portfolio visibly
exhausted a budget (the designed trade: boundedness for flagged
exactness — never a silent downgrade), and that the portfolio beats the
sequential arm by ≥ ``SPEEDUP_FLOOR`` overall.

A second comparison measures the shared analysis substrate (DESIGN.md
§6): ``backend="shared"`` (one memoized ``AnalysisContext`` + one
firing-decision cache per program) against ``backend="isolated"``
(every criterion recomputes every artifact and probe — the pre-sharing
baseline).  The workload is the criterion family whose machinery the
substrate deduplicates — WA/SC plus the restriction chain CStr/SR/IR,
which used to build four separate ``FiringOracle``s over the same
oblivious pair matrix and recompute the affected positions three times
(criteria like LS or SAC spend their time in once-per-program artifacts
no sharing can remove, so they would only dilute the measurement
without exercising the substrate).  Verdict-identical per the
differential suite, ≥ ``SHARED_SPEEDUP_FLOOR`` faster, artifact and
decision hit rates reported.  Timings go to
``benchmarks/results/portfolio.txt`` / ``portfolio_shared.txt``.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.analysis import classify
from repro.generators import random_dependency_set

N_PROGRAMS = int(os.environ.get("REPRO_PORTFOLIO_PROGRAMS", "60"))
#: Conservative CI floor; standalone runs measure ~3x (see results/).
SPEEDUP_FLOOR = 1.5
#: Floor for one shared context vs full isolated recomputation.
SHARED_SPEEDUP_FLOOR = 2.0
#: The substrate workload: the static criteria plus the restriction
#: chain that shares the oblivious pair matrix and affected positions.
SHARED_CRITERIA = ["WA", "SC", "CStr", "SR", "IR"]
JOBS = 4
BUDGET_MS = 250.0
BUDGET_STEPS = 2_000_000


def test_portfolio_beats_sequential_classify():
    sigmas = [
        random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        for seed in range(N_PROGRAMS)
    ]

    t0 = time.perf_counter()
    sequential = [classify(sigma) for sigma in sigmas]
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    portfolio = [
        classify(
            sigma,
            jobs=JOBS,
            short_circuit=True,
            budget_ms=BUDGET_MS,
            budget_steps=BUDGET_STEPS,
        )
        for sigma in sigmas
    ]
    par_s = time.perf_counter() - t0

    mismatches = []
    exhausted_downgrades = 0
    for seed, (seq, par) in enumerate(zip(sequential, portfolio)):
        if seq.verdict == par.verdict:
            continue
        if par.any_exhausted:
            exhausted_downgrades += 1  # flagged, hence trustworthy
            continue
        mismatches.append(seed)
    assert not mismatches, (
        f"portfolio changed headline verdicts without flagging a blown "
        f"budget on seeds {mismatches}"
    )

    speedup = seq_s / par_s
    ran = sum(
        1 for r in portfolio for res in r.results.values() if not res.skipped
    )
    total = sum(len(r.results) for r in portfolio)
    lines = [
        "Portfolio classification bench — "
        f"{N_PROGRAMS} random programs (n_deps=3, egd_fraction=0.3), "
        "headline-verdict-preserving modulo flagged budget exhaustion",
        "",
        f"sequential classify (full, in cost order):  {seq_s * 1000:8.1f} ms",
        f"portfolio (jobs={JOBS}, short-circuit, "
        f"{BUDGET_MS:.0f} ms/{BUDGET_STEPS} steps per criterion): "
        f"{par_s * 1000:8.1f} ms",
        "",
        f"speedup: {speedup:.1f}x   "
        f"criteria actually run: {ran}/{total}   "
        f"flagged budget downgrades: {exhausted_downgrades}/{N_PROGRAMS}",
        "",
        f"floor: portfolio ≥ {SPEEDUP_FLOOR}x sequential "
        f"(measured {speedup:.1f}x)",
    ]
    write_result("portfolio", "\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"portfolio speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def test_shared_context_beats_isolated_recompute():
    sigmas = [
        random_dependency_set(seed, n_deps=4, egd_fraction=0.3)
        for seed in range(N_PROGRAMS)
    ]

    t0 = time.perf_counter()
    isolated = [
        classify(sigma, criteria=SHARED_CRITERIA, backend="isolated")
        for sigma in sigmas
    ]
    iso_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    shared = [
        classify(sigma, criteria=SHARED_CRITERIA, backend="shared")
        for sigma in sigmas
    ]
    shr_s = time.perf_counter() - t0

    mismatches = [
        seed
        for seed, (iso, shr) in enumerate(zip(isolated, shared))
        if [(n, r.accepted, r.exact) for n, r in iso.results.items()]
        != [(n, r.accepted, r.exact) for n, r in shr.results.items()]
    ]
    assert not mismatches, (
        f"shared context changed verdicts on seeds {mismatches}"
    )

    speedup = iso_s / shr_s
    artifact_hits = artifact_total = decision_hits = decision_total = 0
    for report in shared:
        ctx = report.details["context"]
        artifact_hits += ctx["artifacts"]["hits"]
        artifact_total += ctx["artifacts"]["hits"] + ctx["artifacts"]["misses"]
        decision_hits += ctx["decisions"]["hits"]
        decision_total += ctx["decisions"]["hits"] + ctx["decisions"]["misses"]
    artifact_rate = artifact_hits / artifact_total if artifact_total else 0.0
    decision_rate = decision_hits / decision_total if decision_total else 0.0

    lines = [
        "Shared analysis substrate bench — one memoized AnalysisContext "
        "per program vs isolated per-criterion recomputation "
        f"({N_PROGRAMS} random programs, criteria "
        f"{'/'.join(SHARED_CRITERIA)}, verdict-identical)",
        "",
        f"isolated recompute (no sharing):            {iso_s * 1000:8.1f} ms",
        f"shared context (artifacts + decisions):     {shr_s * 1000:8.1f} ms",
        "",
        f"speedup: {speedup:.1f}x   "
        f"artifact cache hit rate: {artifact_rate:.0%}   "
        f"firing-decision cache hit rate: {decision_rate:.0%}",
        "",
        f"floor: shared ≥ {SHARED_SPEEDUP_FLOOR}x isolated "
        f"(measured {speedup:.1f}x)",
    ]
    write_result("portfolio_shared", "\n".join(lines))
    assert speedup >= SHARED_SPEEDUP_FLOOR, (
        f"shared-context speedup {speedup:.2f}x below the "
        f"{SHARED_SPEEDUP_FLOOR}x floor"
    )
