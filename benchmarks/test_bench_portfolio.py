"""Sequential-vs-portfolio classification micro-benchmark.

The workload is the random-program corpus the property tests draw from
(``random_dependency_set``, 3 dependencies, 30% EGDs) — the same family
whose seed 36 historically hung `adn_exists` and which PR 2 made
boundable.  Two arms classify every program:

* **sequential** — the seed's path: ``classify(sigma)``, every criterion
  to completion in cost order;
* **portfolio**  — ``classify(sigma, jobs=4, short_circuit=True,
  budget_ms=250, budget_steps=2_000_000)``: criteria run concurrently
  under per-criterion budgets, and criteria that can no longer change
  the headline verdict are cancelled.  On most programs the cheap static
  criteria (WA/SC, microseconds) decide "all sequences terminate" before
  the witness-engine-heavy ones (LS/S-Str/SAC, up to ~1s) even warm up;
  on the heavy tail the budgets bound the stragglers.

The bench asserts the portfolio's headline verdict matches the full
sequential one on every program **except** where the portfolio visibly
exhausted a budget (the designed trade: boundedness for flagged
exactness — never a silent downgrade), and that the portfolio beats the
sequential arm by ≥ ``SPEEDUP_FLOOR`` overall.  Timings go to
``benchmarks/results/portfolio.txt``.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.analysis import classify
from repro.generators import random_dependency_set

N_PROGRAMS = int(os.environ.get("REPRO_PORTFOLIO_PROGRAMS", "60"))
#: Conservative CI floor; standalone runs measure ~3x (see results/).
SPEEDUP_FLOOR = 1.5
JOBS = 4
BUDGET_MS = 250.0
BUDGET_STEPS = 2_000_000


def test_portfolio_beats_sequential_classify():
    sigmas = [
        random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        for seed in range(N_PROGRAMS)
    ]

    t0 = time.perf_counter()
    sequential = [classify(sigma) for sigma in sigmas]
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    portfolio = [
        classify(
            sigma,
            jobs=JOBS,
            short_circuit=True,
            budget_ms=BUDGET_MS,
            budget_steps=BUDGET_STEPS,
        )
        for sigma in sigmas
    ]
    par_s = time.perf_counter() - t0

    mismatches = []
    exhausted_downgrades = 0
    for seed, (seq, par) in enumerate(zip(sequential, portfolio)):
        if seq.verdict == par.verdict:
            continue
        if par.any_exhausted:
            exhausted_downgrades += 1  # flagged, hence trustworthy
            continue
        mismatches.append(seed)
    assert not mismatches, (
        f"portfolio changed headline verdicts without flagging a blown "
        f"budget on seeds {mismatches}"
    )

    speedup = seq_s / par_s
    ran = sum(
        1 for r in portfolio for res in r.results.values() if not res.skipped
    )
    total = sum(len(r.results) for r in portfolio)
    lines = [
        "Portfolio classification bench — "
        f"{N_PROGRAMS} random programs (n_deps=3, egd_fraction=0.3), "
        "headline-verdict-preserving modulo flagged budget exhaustion",
        "",
        f"sequential classify (full, in cost order):  {seq_s * 1000:8.1f} ms",
        f"portfolio (jobs={JOBS}, short-circuit, "
        f"{BUDGET_MS:.0f} ms/{BUDGET_STEPS} steps per criterion): "
        f"{par_s * 1000:8.1f} ms",
        "",
        f"speedup: {speedup:.1f}x   "
        f"criteria actually run: {ran}/{total}   "
        f"flagged budget downgrades: {exhausted_downgrades}/{N_PROGRAMS}",
        "",
        f"floor: portfolio ≥ {SPEEDUP_FLOOR}x sequential "
        f"(measured {speedup:.1f}x)",
    ]
    write_result("portfolio", "\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"portfolio speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
