"""Shared fixtures for the benchmark harness.

The corpus and its evaluation are session-scoped: Tables 2(a), 2(b) and
2(c) are different projections of one experimental run, exactly as in the
paper.  Scale is controlled by the ``REPRO_SCALE`` environment variable
(default: CI-friendly; ``REPRO_SCALE=paper`` for full-size ontologies —
expect hours, as the paper's own Java prototype needed seconds per
ontology on much smaller Python-constant workloads).

Every bench writes its rendered table to ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated.
"""

from __future__ import annotations

import os
import pathlib
import signal

import pytest

from repro.analysis.evaluation import summarise
from repro.batch import BatchConfig, evaluate_corpus
from repro.generators import generate_corpus

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-bench timeout guard, mirroring tests/conftest.py (benches are
#: slower, so the default allowance is larger).  0 disables.
BENCH_TIMEOUT_S = float(os.environ.get("REPRO_BENCH_TIMEOUT", "900"))


@pytest.fixture(autouse=True)
def _per_bench_timeout():
    if BENCH_TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(
            f"bench exceeded the {BENCH_TIMEOUT_S:.0f}s timeout guard",
            pytrace=True,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, BENCH_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def corpus():
    """The 178-ontology synthetic corpus (Table 2(a) structure)."""
    tests_scale = float(os.environ.get("REPRO_TESTS_SCALE", "1.0"))
    return generate_corpus(tests_scale=tests_scale)


@pytest.fixture(scope="session")
def corpus_evaluations(corpus):
    """Adn∃ + chase ground truth for every ontology (Tables 2(b)/(c)).

    Runs through the batch engine: ``REPRO_JOBS=N`` fans the corpus out
    over N worker processes, ``REPRO_CACHE_DIR=...`` makes repeated bench
    runs incremental (only new or changed ontologies are re-evaluated).
    """
    config = BatchConfig(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        chase_steps=int(os.environ.get("REPRO_CHASE_STEPS", "1200")),
    )
    return evaluate_corpus(corpus, config).evaluations()


@pytest.fixture(scope="session")
def corpus_summaries(corpus_evaluations):
    return summarise(corpus_evaluations)
