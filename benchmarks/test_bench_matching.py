"""Planned-vs-indexed-vs-naive matcher micro-benchmark.

One ontology per Table 2(a) class is grown into a few-thousand-fact
instance by a (semi-oblivious, full-first) chase prefix; all three
matching backends then enumerate *every* body homomorphism of the
ontology into that instance — the exact workload behind trigger
discovery, saturation and satisfaction checks.  The gaps measured are:

* **indexed / naive** — the PR 1 win: dynamic most-constrained-first
  ordering plus ``(predicate, position, term)`` bucket intersection
  versus static ordering over full predicate extents;
* **planned / indexed** — the compiled-plan win (DESIGN.md §9): the
  per-trigger python interpretation of the generic recursive ``match()``
  (per-atom candidate-pool scoring, mapping-dict copies) replaced by a
  join plan compiled once per body and replayed over interned-term
  buckets and a flat register array.

The bench re-checks the differential invariant (identical homomorphism
counts) on every workload and pins per-class floors: the planned engine
must beat the generic indexed engine ≥ ``PLANNED_FLOOR``x on the flat
classes where candidate sets are small and matcher-call overhead
dominates, must not regress below ``PLANNED_MIN``x on *any* class, and
the indexed engine must stay ≥ ``INDEXED_FLOOR``x over naive on the
largest class.  Timings go to ``benchmarks/results/matching.txt``.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.chase.runner import run_chase
from repro.generators.corpus import TABLE2A_CLASSES, generate_corpus
from repro.generators.databases import seed_database
from repro.matching import engine as indexed_engine
from repro.matching import naive as naive_engine
from repro.matching import plans as planned_engine

LARGEST_CLASS = TABLE2A_CLASSES[-1]["name"]  # E1001-5000/G11-100
#: Classes where PR 1's indexed engine was nearly flat over naive
#: (~1.1x): tiny candidate pools, overhead-bound — the compiled plans'
#: target territory.
FLAT_CLASSES = ("E1-10/G1-10", "E1001-5000/G1-10")

INDEXED_FLOOR = 3.0   # indexed / naive on LARGEST_CLASS
PLANNED_FLOOR = 1.5   # planned / indexed on every FLAT_CLASSES member
PLANNED_MIN = 1.0     # planned / indexed on every class

#: Chase prefix length used to grow each workload instance.
GROW_STEPS = int(os.environ.get("REPRO_MATCH_STEPS", "3000"))
REPEATS = 3


def _best_of(repeats, fn):
    """Best-of-n wall time and the (stable) return value of ``fn``."""
    best, value = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


def _workloads():
    """(class name, Σ, grown instance) — one ontology per corpus class."""
    corpus = generate_corpus(tests_scale=0.02)
    seen: dict[str, object] = {}
    for ont in corpus:
        seen.setdefault(ont.class_name, ont)
    for cls in TABLE2A_CLASSES:
        ont = seen[cls["name"]]
        db = seed_database(ont.sigma)
        result = run_chase(
            db, ont.sigma, variant="semi_oblivious", strategy="full_first",
            max_steps=GROW_STEPS, engine="indexed",
        )
        instance = result.instance if result.instance is not None else db
        yield cls["name"], ont.sigma, instance


def _enumerate_all(matcher, sigma, instance) -> int:
    return sum(
        1 for dep in sigma for _ in matcher.match(dep.body, instance, limit=None)
    )


def test_bench_matching():
    rows = []
    plan_speedups = {}
    idx_speedups = {}
    for name, sigma, instance in _workloads():
        t_pln, n_pln = _best_of(
            REPEATS, lambda: _enumerate_all(planned_engine, sigma, instance)
        )
        t_idx, n_idx = _best_of(
            REPEATS, lambda: _enumerate_all(indexed_engine, sigma, instance)
        )
        t_nai, n_nai = _best_of(
            REPEATS, lambda: _enumerate_all(naive_engine, sigma, instance)
        )
        assert n_pln == n_idx == n_nai, f"differential violation on {name}"
        plan_speedups[name] = t_idx / max(t_pln, 1e-9)
        idx_speedups[name] = t_nai / max(t_idx, 1e-9)
        rows.append(
            f"{name:<20} {len(list(sigma)):>4} {len(instance):>6} {n_pln:>6} "
            f"{t_pln * 1e3:>10.2f} {t_idx * 1e3:>10.2f} {t_nai * 1e3:>9.2f} "
            f"{plan_speedups[name]:>8.1f}x {idx_speedups[name]:>8.1f}x"
        )
    header = (
        f"{'class':<20} {'|Σ|':>4} {'|I|':>6} {'homs':>6} "
        f"{'planned ms':>10} {'indexed ms':>10} {'naive ms':>9} "
        f"{'pln/idx':>9} {'idx/nai':>9}"
    )
    text = "\n".join(
        [
            "Matching micro-bench — full body-homomorphism enumeration into a "
            f"chase-grown instance ({GROW_STEPS} steps), best of {REPEATS}",
            "",
            header,
            "-" * len(header),
            *rows,
            "",
            f"floors: planned ≥ {PLANNED_FLOOR}x indexed on "
            + ", ".join(
                f"{c} (measured {plan_speedups[c]:.1f}x)" for c in FLAT_CLASSES
            ),
            f"        planned ≥ {PLANNED_MIN}x indexed on every class "
            f"(worst {min(plan_speedups.values()):.1f}x)",
            f"        indexed ≥ {INDEXED_FLOOR}x naive on {LARGEST_CLASS} "
            f"(measured {idx_speedups[LARGEST_CLASS]:.1f}x)",
        ]
    )
    write_result("matching", text)
    for cls in FLAT_CLASSES:
        assert plan_speedups[cls] >= PLANNED_FLOOR, (
            f"planned engine only {plan_speedups[cls]:.2f}x faster than the "
            f"generic indexed engine on {cls}"
        )
    for name, speedup in plan_speedups.items():
        assert speedup >= PLANNED_MIN, (
            f"planned engine regressed to {speedup:.2f}x of the generic "
            f"indexed engine on {name}"
        )
    assert idx_speedups[LARGEST_CLASS] >= INDEXED_FLOOR, (
        f"indexed engine only {idx_speedups[LARGEST_CLASS]:.2f}x faster than "
        f"the naive reference on {LARGEST_CLASS}"
    )
