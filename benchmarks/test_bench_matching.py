"""Columnar-vs-planned-vs-indexed-vs-naive matcher micro-benchmark.

One ontology per Table 2(a) class is grown into a few-thousand-fact
instance by a (semi-oblivious, full-first) chase prefix; all four
matching backends then enumerate *every* body homomorphism of the
ontology into that instance — the exact workload behind trigger
discovery, saturation and satisfaction checks.  The gaps measured are:

* **indexed / naive** — the PR 1 win: dynamic most-constrained-first
  ordering plus ``(predicate, position, term)`` bucket intersection
  versus static ordering over full predicate extents;
* **planned / indexed** — the compiled-plan win (DESIGN.md §9): the
  per-trigger python interpretation of the generic recursive ``match()``
  (per-atom candidate-pool scoring, mapping-dict copies) replaced by a
  join plan compiled once per body and replayed over interned-term
  buckets and a flat register array;
* **columnar / planned** — the columnar-store win (DESIGN.md §10): the
  same compiled plans replayed as generated nested int loops over flat
  tid columns of a :class:`~repro.model.columnar.ColumnarInstance`, no
  Atom tuples or register boxing on the hot path.

The bench re-checks the differential invariant (identical homomorphism
counts) across all four arms on every workload and pins per-class
floors; a separate untimed pass records each arm's tracemalloc peak so
representation overhead is tracked next to wall-clock.  Results go to
``benchmarks/results/matching.txt``.
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc

from conftest import write_result

from repro.chase.runner import run_chase
from repro.generators.corpus import TABLE2A_CLASSES, generate_corpus
from repro.generators.databases import seed_database
from repro.matching import engine as indexed_engine
from repro.matching import naive as naive_engine
from repro.matching import plans as planned_engine
from repro.model import ColumnarInstance

LARGEST_CLASS = TABLE2A_CLASSES[-1]["name"]  # E1001-5000/G11-100
#: Classes where PR 1's indexed engine was nearly flat over naive
#: (~1.1x): tiny candidate pools, overhead-bound — the compiled plans'
#: target territory.
FLAT_CLASSES = ("E1-10/G1-10", "E1001-5000/G1-10")
#: The big-extent classes where per-row python objects dominate — the
#: columnar store's target territory (ISSUE 9 acceptance floor).
COLUMNAR_CLASSES = ("E1001-5000/G1-10", "E1001-5000/G11-100")

INDEXED_FLOOR = 3.0    # indexed / naive on LARGEST_CLASS
PLANNED_FLOOR = 1.5    # planned / indexed on every FLAT_CLASSES member
PLANNED_MIN = 1.0      # planned / indexed on every class
#: Raised from the PR 9 floor of 1.5: the rowmap-key scan emission and
#: typed-buffer kernels (ISSUE 10) must buy ≥ 1.3x on top of it.
COLUMNAR_FLOOR = 2.0   # columnar / planned on every COLUMNAR_CLASSES member
COLUMNAR_MIN = 1.0     # columnar / planned on every class

#: Chase prefix length used to grow each workload instance.
GROW_STEPS = int(os.environ.get("REPRO_MATCH_STEPS", "3000"))
REPEATS = 11


def _time_arms(repeats, fns):
    """Best-of-n wall time per arm, sampled round-robin.

    Three defences against the noise that made single-shot ratios flake:
    sub-millisecond workloads are repeated inside each timed sample
    until the sample is ≥2ms (the tiny corpus classes finish in tens of
    microseconds, where one call is all timer granularity), the arms
    are interleaved per round so a background-load drift hits every arm
    equally instead of whichever was measured last, and the cyclic GC
    is paused across the timed rounds so collection pauses — which land
    on whichever arm happens to cross the allocation threshold — never
    pollute a sample.  Reported times are always per single call.
    """
    inners, best, values = {}, {}, {}
    for arm, fn in fns.items():
        fn()  # warm-up: plan compilation must not skew calibration
        t0 = time.perf_counter()
        values[arm] = fn()
        once = time.perf_counter() - t0
        inners[arm] = max(1, int(2e-3 / max(once, 1e-9)))
        best[arm] = once
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for arm, fn in fns.items():
                inner = inners[arm]
                t0 = time.perf_counter()
                for _ in range(inner):
                    fn()
                dt = (time.perf_counter() - t0) / inner
                if dt < best[arm]:
                    best[arm] = dt
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, values


def _peak_kib(fn) -> float:
    """tracemalloc peak (KiB) over one run of ``fn`` (untimed pass)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _workloads():
    """(class name, Σ, grown instance) — one ontology per corpus class."""
    corpus = generate_corpus(tests_scale=0.02)
    seen: dict[str, object] = {}
    for ont in corpus:
        seen.setdefault(ont.class_name, ont)
    for cls in TABLE2A_CLASSES:
        ont = seen[cls["name"]]
        db = seed_database(ont.sigma)
        result = run_chase(
            db, ont.sigma, variant="semi_oblivious", strategy="full_first",
            max_steps=GROW_STEPS, engine="indexed",
        )
        instance = result.instance if result.instance is not None else db
        yield cls["name"], ont.sigma, instance


def _enumerate_all(matcher, sigma, instance) -> int:
    return sum(
        1 for dep in sigma for _ in matcher.match(dep.body, instance, limit=None)
    )


def test_bench_matching():
    # Bench hygiene: preceding in-process suites (the batch corpus bench
    # runs first) leave thousands of compiled plans and a fragmented
    # heap behind, which taxes the sub-20µs classes' per-call cache
    # lookups unevenly across arms.  Start from an empty plan cache —
    # the warm-up call inside _time_arms recompiles exactly the plans
    # this bench measures — and a collected heap.
    planned_engine.clear_cache()
    gc.collect()
    rows = []
    mem_rows = []
    col_speedups = {}
    plan_speedups = {}
    idx_speedups = {}
    for name, sigma, instance in _workloads():
        # The columnar conversion happens once, outside timing: chases
        # under the columnar backend build their store incrementally and
        # never pay a bulk conversion on the matching path.
        col = ColumnarInstance(instance)
        arms = [
            ("columnar", planned_engine, col),
            ("planned", planned_engine, instance),
            ("indexed", indexed_engine, instance),
            ("naive", naive_engine, instance),
        ]
        peaks = {}
        fns = {
            arm: lambda m=matcher, t=target: _enumerate_all(m, sigma, t)
            for arm, matcher, target in arms
        }
        times, counts = _time_arms(REPEATS, fns)
        assert len(set(counts.values())) == 1, f"differential violation on {name}"
        # The floor-gated classes get up to two timing retries when the
        # first window lands under a floor: the gates are about the
        # engines, not about whatever else the host ran during the first
        # sampling window.  Retries min-merge into the best-of estimate.
        for _ in range(2):
            col_floor = (
                COLUMNAR_FLOOR if name in COLUMNAR_CLASSES else COLUMNAR_MIN
            )
            pln_floor = PLANNED_FLOOR if name in FLAT_CLASSES else PLANNED_MIN
            col_ok = (
                times["planned"] / max(times["columnar"], 1e-9) >= col_floor
            )
            pln_ok = times["indexed"] / max(times["planned"], 1e-9) >= pln_floor
            idx_ok = (
                name != LARGEST_CLASS
                or times["naive"] / max(times["indexed"], 1e-9) >= INDEXED_FLOOR
            )
            if col_ok and pln_ok and idx_ok:
                break
            arms_to_retime = ["columnar", "planned", "indexed"]
            if not idx_ok:
                arms_to_retime.append("naive")
            retimes, _ = _time_arms(REPEATS, {a: fns[a] for a in arms_to_retime})
            for a, t in retimes.items():
                times[a] = min(times[a], t)
        for arm, matcher, target in arms:
            peaks[arm] = _peak_kib(
                lambda m=matcher, t=target: _enumerate_all(m, sigma, t)
            )
        col_speedups[name] = times["planned"] / max(times["columnar"], 1e-9)
        plan_speedups[name] = times["indexed"] / max(times["planned"], 1e-9)
        idx_speedups[name] = times["naive"] / max(times["indexed"], 1e-9)
        rows.append(
            f"{name:<20} {len(list(sigma)):>4} {len(instance):>6} "
            f"{counts['planned']:>6} "
            f"{times['columnar'] * 1e3:>9.2f} {times['planned'] * 1e3:>10.2f} "
            f"{times['indexed'] * 1e3:>10.2f} {times['naive'] * 1e3:>9.2f} "
            f"{col_speedups[name]:>8.1f}x {plan_speedups[name]:>8.1f}x "
            f"{idx_speedups[name]:>8.1f}x"
        )
        mem_rows.append(
            f"{name:<20} {peaks['columnar']:>12.0f} {peaks['planned']:>11.0f} "
            f"{peaks['indexed']:>11.0f} {peaks['naive']:>10.0f}"
        )
    header = (
        f"{'class':<20} {'|Σ|':>4} {'|I|':>6} {'homs':>6} "
        f"{'colmnr ms':>9} {'planned ms':>10} {'indexed ms':>10} "
        f"{'naive ms':>9} {'col/pln':>9} {'pln/idx':>9} {'idx/nai':>9}"
    )
    mem_header = (
        f"{'class':<20} {'columnar KiB':>12} {'planned KiB':>11} "
        f"{'indexed KiB':>11} {'naive KiB':>10}"
    )
    text = "\n".join(
        [
            "Matching micro-bench — full body-homomorphism enumeration into a "
            f"chase-grown instance ({GROW_STEPS} steps), best of {REPEATS}",
            "",
            header,
            "-" * len(header),
            *rows,
            "",
            "tracemalloc peak per arm (one untimed enumeration pass)",
            "",
            mem_header,
            "-" * len(mem_header),
            *mem_rows,
            "",
            f"floors: columnar ≥ {COLUMNAR_FLOOR}x planned on "
            + ", ".join(
                f"{c} (measured {col_speedups[c]:.1f}x)" for c in COLUMNAR_CLASSES
            ),
            f"        columnar ≥ {COLUMNAR_MIN}x planned on every class "
            f"(worst {min(col_speedups.values()):.1f}x)",
            f"        planned ≥ {PLANNED_FLOOR}x indexed on "
            + ", ".join(
                f"{c} (measured {plan_speedups[c]:.1f}x)" for c in FLAT_CLASSES
            ),
            f"        planned ≥ {PLANNED_MIN}x indexed on every class "
            f"(worst {min(plan_speedups.values()):.1f}x)",
            f"        indexed ≥ {INDEXED_FLOOR}x naive on {LARGEST_CLASS} "
            f"(measured {idx_speedups[LARGEST_CLASS]:.1f}x)",
        ]
    )
    write_result("matching", text)
    for cls in COLUMNAR_CLASSES:
        assert col_speedups[cls] >= COLUMNAR_FLOOR, (
            f"columnar execution only {col_speedups[cls]:.2f}x faster than "
            f"the planned engine on {cls}"
        )
    for name, speedup in col_speedups.items():
        assert speedup >= COLUMNAR_MIN, (
            f"columnar execution regressed to {speedup:.2f}x of the planned "
            f"engine on {name}"
        )
    for cls in FLAT_CLASSES:
        assert plan_speedups[cls] >= PLANNED_FLOOR, (
            f"planned engine only {plan_speedups[cls]:.2f}x faster than the "
            f"generic indexed engine on {cls}"
        )
    for name, speedup in plan_speedups.items():
        assert speedup >= PLANNED_MIN, (
            f"planned engine regressed to {speedup:.2f}x of the generic "
            f"indexed engine on {name}"
        )
    assert idx_speedups[LARGEST_CLASS] >= INDEXED_FLOOR, (
        f"indexed engine only {idx_speedups[LARGEST_CLASS]:.2f}x faster than "
        f"the naive reference on {LARGEST_CLASS}"
    )
