"""Indexed-vs-naive matcher micro-benchmark.

One ontology per Table 2(a) class is grown into a few-thousand-fact
instance by a (semi-oblivious, full-first) chase prefix; both matching
backends then enumerate *every* body homomorphism of the ontology into
that instance — the exact workload behind trigger discovery, saturation
and satisfaction checks.  The two backends share `match_atom`, so the
measured gap is purely the search strategy: dynamic most-constrained-first
ordering plus `(predicate, position, term)` bucket intersection versus
static ordering over full predicate extents (see DESIGN.md, "Indexed
matching and semi-naive discovery").

The bench re-checks the differential invariant (identical homomorphism
counts) on every workload and asserts the indexed engine is ≥ 3× faster
on the largest corpus class, E1001-5000/G11-100.  Timings go to
``benchmarks/results/matching.txt``.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.chase.runner import run_chase
from repro.generators.corpus import TABLE2A_CLASSES, generate_corpus
from repro.generators.databases import seed_database
from repro.matching import engine as indexed_engine
from repro.matching import naive as naive_engine

LARGEST_CLASS = TABLE2A_CLASSES[-1]["name"]  # E1001-5000/G11-100
SPEEDUP_FLOOR = 3.0

#: Chase prefix length used to grow each workload instance.
GROW_STEPS = int(os.environ.get("REPRO_MATCH_STEPS", "3000"))
REPEATS = 3


def _best_of(repeats, fn):
    """Best-of-n wall time and the (stable) return value of ``fn``."""
    best, value = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


def _workloads():
    """(class name, Σ, grown instance) — one ontology per corpus class."""
    corpus = generate_corpus(tests_scale=0.02)
    seen: dict[str, object] = {}
    for ont in corpus:
        seen.setdefault(ont.class_name, ont)
    for cls in TABLE2A_CLASSES:
        ont = seen[cls["name"]]
        db = seed_database(ont.sigma)
        result = run_chase(
            db, ont.sigma, variant="semi_oblivious", strategy="full_first",
            max_steps=GROW_STEPS, engine="indexed",
        )
        instance = result.instance if result.instance is not None else db
        yield cls["name"], ont.sigma, instance


def _enumerate_all(matcher, sigma, instance) -> int:
    return sum(
        1 for dep in sigma for _ in matcher.match(dep.body, instance, limit=None)
    )


def test_bench_matching():
    rows = []
    speedups = {}
    for name, sigma, instance in _workloads():
        t_idx, n_idx = _best_of(
            REPEATS, lambda: _enumerate_all(indexed_engine, sigma, instance)
        )
        t_nai, n_nai = _best_of(
            REPEATS, lambda: _enumerate_all(naive_engine, sigma, instance)
        )
        assert n_idx == n_nai, f"differential violation on {name}"
        speedup = t_nai / max(t_idx, 1e-9)
        speedups[name] = speedup
        rows.append(
            f"{name:<20} {len(list(sigma)):>4} {len(instance):>6} {n_idx:>6} "
            f"{t_idx * 1e3:>10.2f} {t_nai * 1e3:>10.2f} {speedup:>7.1f}x"
        )
    header = (
        f"{'class':<20} {'|Σ|':>4} {'|I|':>6} {'homs':>6} "
        f"{'indexed ms':>10} {'naive ms':>10} {'speedup':>8}"
    )
    text = "\n".join(
        [
            "Matching micro-bench — full body-homomorphism enumeration into a "
            f"chase-grown instance ({GROW_STEPS} steps), best of {REPEATS}",
            "",
            header,
            "-" * len(header),
            *rows,
            "",
            f"floor: indexed ≥ {SPEEDUP_FLOOR}x naive on {LARGEST_CLASS} "
            f"(measured {speedups[LARGEST_CLASS]:.1f}x)",
        ]
    )
    write_result("matching", text)
    assert speedups[LARGEST_CLASS] >= SPEEDUP_FLOOR, (
        f"indexed engine only {speedups[LARGEST_CLASS]:.2f}x faster than the "
        f"naive reference on {LARGEST_CLASS}"
    )
