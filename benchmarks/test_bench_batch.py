"""Batch engine acceptance bench: cold vs warm on the class-1 corpus.

The whole point of the content-addressed cache is that re-running a
corpus costs fingerprinting plus file reads, not classification.  This
bench pins that contract on the paper's first corpus class (E1-10/G1-10,
all 50 ontologies at bench scale):

* the **cold** run, against an empty cache, evaluates everything;
* the **warm** run performs **zero** evaluations (``computed == 0`` — the
  smoke assertion CI relies on) and finishes ≥10x faster.

The measured speedup is typically far above the floor; the floor is set
where a fingerprinting or cache-loading regression would trip it while
machine noise cannot.  Results land in ``benchmarks/results/batch.txt``
(the CI batch-smoke job publishes the hit-rate line in its job summary).
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.batch import BatchConfig, evaluate_corpus
from repro.generators import generate_corpus

#: Warm runs must beat cold runs at least this much (acceptance floor).
MIN_SPEEDUP = 10.0

CLASS_NAME = "E1-10/G1-10"


#: The sqlite backend may not cost more than this over the jsonl
#: warm-rerun floor (the append-only log replayed from the page cache is
#: the cheapest possible warm open; the embedded store buys queryability
#: and concurrency, not speed).
MAX_SQLITE_OVERHEAD = 1.5

#: Absolute slack for the backend comparison: at smoke scale both warm
#: runs finish in fractions of a second, where scheduler noise would
#: dominate a pure ratio.
NOISE_FLOOR_S = 0.25


def test_bench_batch_cold_vs_warm(tmp_path):
    corpus = generate_corpus(classes=[CLASS_NAME])
    chase_steps = int(os.environ.get("REPRO_CHASE_STEPS", "1200"))
    config = BatchConfig(cache_dir=tmp_path / "cache", chase_steps=chase_steps)

    start = time.perf_counter()
    cold = evaluate_corpus(corpus, config)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = evaluate_corpus(corpus, config)
    warm_s = time.perf_counter() - start

    # The same corpus through the jsonl reference backend: its warm
    # rerun is the floor the sqlite default is held to.
    jsonl_config = BatchConfig(
        cache_dir=tmp_path / "cache-jsonl", store="jsonl",
        chase_steps=chase_steps,
    )
    evaluate_corpus(corpus, jsonl_config)
    start = time.perf_counter()
    warm_jsonl = evaluate_corpus(corpus, jsonl_config)
    warm_jsonl_s = time.perf_counter() - start

    speedup = cold_s / max(warm_s, 1e-9)
    lines = [
        f"Batch evaluation — class {CLASS_NAME} synthetic corpus "
        f"({len(corpus)} ontologies)",
        "",
        f"cold run: {cold.computed} evaluated, "
        f"{cold.hits + cold.deduplicated} from cache, {cold_s:8.3f} s",
        f"warm run: {warm.computed} evaluated, "
        f"{warm.hits + warm.deduplicated} from cache, {warm_s:8.3f} s",
        f"speedup:  {speedup:.1f}x (acceptance floor: {MIN_SPEEDUP:.0f}x)",
        f"cache hit rate (warm): {warm.hit_rate:.0%}",
        "",
        f"warm rerun by store backend: sqlite {warm_s:8.3f} s, "
        f"jsonl {warm_jsonl_s:8.3f} s "
        f"(bound: sqlite <= {MAX_SQLITE_OVERHEAD:.1f}x jsonl)",
        "",
        "warm-run verdicts are byte-identical to cold-run verdicts",
        "(differential-tested in tests/test_batch_cache.py and",
        "tests/test_store_differential.py, both backends).",
    ]
    write_result("batch", "\n".join(lines))

    # The smoke contract: a warm rerun classifies nothing…
    assert warm.computed == 0, "warm run must perform zero evaluations"
    assert warm.hits + warm.deduplicated == len(corpus)
    assert warm.complete and cold.complete
    # …and the served records really are the cold run's records.
    assert [e.__dict__ for e in warm.evaluations()] == [
        e.__dict__ for e in cold.evaluations()
    ]
    assert speedup >= MIN_SPEEDUP, (
        f"warm run only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )
    # The jsonl reference backend warms just as completely…
    assert warm_jsonl.computed == 0
    # …and the embedded store stays within its overhead budget of the
    # replay-a-log floor.
    assert warm_s <= max(
        MAX_SQLITE_OVERHEAD * warm_jsonl_s, warm_jsonl_s + NOISE_FLOOR_S
    ), (
        f"sqlite warm rerun {warm_s:.3f}s exceeds "
        f"{MAX_SQLITE_OVERHEAD:.1f}x the jsonl floor {warm_jsonl_s:.3f}s"
    )
