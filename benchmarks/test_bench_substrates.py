"""Micro-benchmarks of the substrates the reproduction stands on.

Not a paper table — these keep the performance characteristics of the
homomorphism finder, the chase runner, core computation, the firing-edge
decision and the Adn∃ algorithm visible, so regressions in the expensive
kernels show up in ``--benchmark-only`` runs.
"""

from repro.chase import run_chase
from repro.core import adn_exists
from repro.data import sigma_1, sigma_11
from repro.firing import decide_fires
from repro.generators import random_dependency_set, seed_database
from repro.homomorphism import core, find_homomorphism
from repro.model import Atom, Constant, Instance, Null, Variable, parse_facts

x, y, z = Variable("x"), Variable("y"), Variable("z")


def _chain_instance(n: int) -> Instance:
    consts = [Constant(f"c{i}") for i in range(n + 1)]
    return Instance(Atom("E", (consts[i], consts[i + 1])) for i in range(n))


def test_bench_homomorphism_join(benchmark):
    target = _chain_instance(60)
    source = [Atom("E", (x, y)), Atom("E", (y, z))]
    h = benchmark(lambda: find_homomorphism(source, target))
    assert h is not None


def test_bench_chase_sigma11(benchmark):
    sigma = sigma_11()
    db = parse_facts(" ".join(f'N("a{i}")' for i in range(6)))
    result = benchmark(
        lambda: run_chase(db, sigma, strategy="full_first", max_steps=2_000)
    )
    assert result.successful


def test_bench_chase_generated_ontology(benchmark):
    sigma = random_dependency_set(17, n_deps=8, egd_fraction=0.25)
    db = seed_database(sigma)
    result = benchmark(
        lambda: run_chase(db, sigma, strategy="full_first", max_steps=600)
    )
    assert result is not None


def test_bench_core_computation(benchmark):
    base = _chain_instance(8)
    redundant = base.copy()
    for i in range(6):
        redundant.add(Atom("E", (Constant("c0"), Null(100 + i))))
    result = benchmark(lambda: core(redundant.copy()))
    assert len(result) <= len(base) + 1


def test_bench_firing_edge_decision(benchmark):
    sigma = sigma_1()
    r2, r1 = sigma[1], sigma[0]
    decision = benchmark(lambda: decide_fires(r2, r1, sigma.full))
    assert not decision.edge  # the defused Σ1 edge — the expensive path


def test_bench_adn_exists_sigma1(benchmark):
    result = benchmark(lambda: adn_exists(sigma_1()))
    assert result.acyclic
