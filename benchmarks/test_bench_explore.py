"""Transactional vs copy-backed chase exploration micro-benchmark.

The branchiest Table 1 witness programs are explored over *grown*
databases (the witness pattern replicated over fresh constants, so every
state carries hundreds of facts while each chase step still only touches
a handful): exactly the regime the undo-log savepoint protocol targets,
where a branch should cost O(|Δ|) instead of the O(|I|) the seed paid
per branch — once for the ``Instance.copy()`` fork and once more for the
from-scratch trigger rediscovery.

Both directions are new in this PR, so the baseline here is the seed
behaviour kept as switchable reference backends:
``snapshots="copy"`` + ``discovery="full"``.  The bench re-checks the
differential invariant (identical :class:`ExplorationResult`) on every
workload and asserts the savepoint-backed explorer is ≥ 3× faster in
aggregate.  Timings go to ``benchmarks/results/explore.txt``.

Both arms are pinned to the ``"indexed"`` matching backend: this bench
measures the snapshot/discovery axis in isolation, and the compiled-plan
backend (measured by ``test_bench_matching.py``) speeds up the
matching-dominated copy+full baseline disproportionately, which would
fold the matching axis into this floor.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.chase.explorer import explore_chase
from repro.data.witnesses import witness_cases
from repro.matching import using_backend
from repro.model import Atom, Instance
from repro.model.terms import Constant

SPEEDUP_FLOOR = 3.0

#: Replication factor for the witness databases (fact count scales with it).
SCALE = int(os.environ.get("REPRO_EXPLORE_SCALE", "200"))
REPEATS = 3

#: The branchy corpus: (witness case, chase variant, depth, state cap).
#: mirror_pair gets a larger share of scale — its database is a single
#: fact, the others' are two to three.
WORKLOADS = [
    ("sigma_1", "standard", SCALE, 4, 200),
    ("sigma_11", "standard", SCALE, 4, 200),
    ("sigma_10", "standard", SCALE, 4, 200),
    ("mirror_pair", "oblivious", SCALE + SCALE // 4, 3, 200),
    ("mirror_pair", "semi_oblivious", SCALE + SCALE // 4, 3, 200),
]


def _grown(db: Instance, copies: int) -> Instance:
    """The database pattern replicated ``copies`` times over fresh
    constants: isomorphic chase structure per copy, |I| scaled up."""
    out = Instance()
    for k in range(copies):
        for f in db:
            out.add(
                Atom(f.predicate, tuple(Constant(f"{t.value}@{k}") for t in f.args))
            )
    return out


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


def test_bench_explore():
    cases = {c.name: c for c in witness_cases()}
    rows = []
    total_sp = total_cp = 0.0
    for name, variant, copies, depth, states in WORKLOADS:
        case = cases[name]
        db = _grown(case.database, copies)
        with using_backend("indexed"):
            t_sp, r_sp = _best_of(
                REPEATS,
                lambda: explore_chase(
                    db, case.sigma, variant=variant,
                    max_depth=depth, max_states=states,
                    snapshots="savepoint", discovery="delta",
                ),
            )
            t_cp, r_cp = _best_of(
                REPEATS,
                lambda: explore_chase(
                    db, case.sigma, variant=variant,
                    max_depth=depth, max_states=states,
                    snapshots="copy", discovery="full",
                ),
            )
        assert r_sp == r_cp, f"differential violation on {name}/{variant}"
        total_sp += t_sp
        total_cp += t_cp
        speedup = t_cp / max(t_sp, 1e-9)
        rows.append(
            f"{name:<13} {variant:<15} {len(db):>6} {r_sp.explored_states:>7} "
            f"{t_sp * 1e3:>12.1f} {t_cp * 1e3:>10.1f} {speedup:>7.1f}x"
        )
    aggregate = total_cp / max(total_sp, 1e-9)
    header = (
        f"{'witness':<13} {'variant':<15} {'|I|':>6} {'states':>7} "
        f"{'savepoint ms':>12} {'copy ms':>10} {'speedup':>8}"
    )
    text = "\n".join(
        [
            "Explore micro-bench — savepoint+delta DFS vs the copy+full seed "
            f"baseline on grown Table 1 witness programs (scale {SCALE}), "
            f"best of {REPEATS}",
            "",
            header,
            "-" * len(header),
            *rows,
            "",
            f"floor: savepoint ≥ {SPEEDUP_FLOOR}x copy-backed baseline in "
            f"aggregate (measured {aggregate:.1f}x)",
        ]
    )
    write_result("explore", text)
    assert aggregate >= SPEEDUP_FLOOR, (
        f"savepoint-backed explorer only {aggregate:.2f}x faster than the "
        f"copy-backed baseline on the branchy witness corpus"
    )
