"""Transactional vs copy-backed chase exploration micro-benchmark.

The branchiest Table 1 witness programs are explored over *grown*
databases (the witness pattern replicated over fresh constants, so every
state carries hundreds of facts while each chase step still only touches
a handful): exactly the regime the undo-log savepoint protocol targets,
where a branch should cost O(|Δ|) instead of the O(|I|) the seed paid
per branch — once for the ``Instance.copy()`` fork and once more for the
from-scratch trigger rediscovery.

Both directions are new in this PR, so the baseline here is the seed
behaviour kept as switchable reference backends:
``snapshots="copy"`` + ``discovery="full"``.  The bench re-checks the
differential invariant (identical :class:`ExplorationResult`) on every
workload and asserts the savepoint-backed explorer is ≥ 3× faster in
aggregate.  Timings go to ``benchmarks/results/explore.txt``.

Both arms are pinned to the ``"indexed"`` matching backend: this bench
measures the snapshot/discovery axis in isolation, and the compiled-plan
backend (measured by ``test_bench_matching.py``) speeds up the
matching-dominated copy+full baseline disproportionately, which would
fold the matching axis into this floor.
"""

from __future__ import annotations

import os
import time

from conftest import write_result

from repro.chase.explorer import explore_chase
from repro.data.witnesses import witness_cases
from repro.matching import using_backend
from repro.model import Atom, Instance
from repro.model.columnar import ColumnarInstance
from repro.model.terms import Constant, Null

SPEEDUP_FLOOR = 3.0

#: Fork microbench: COW forks must beat eager full-column copies by this
#: factor in aggregate over the branch loop (fork + one chase-step-sized
#: write per branch).
FORK_FLOOR = 3.0
FORK_BRANCHES = 200

#: Replication factor for the witness databases (fact count scales with it).
SCALE = int(os.environ.get("REPRO_EXPLORE_SCALE", "200"))
REPEATS = 3

#: The branchy corpus: (witness case, chase variant, depth, state cap).
#: mirror_pair gets a larger share of scale — its database is a single
#: fact, the others' are two to three.
WORKLOADS = [
    ("sigma_1", "standard", SCALE, 4, 200),
    ("sigma_11", "standard", SCALE, 4, 200),
    ("sigma_10", "standard", SCALE, 4, 200),
    ("mirror_pair", "oblivious", SCALE + SCALE // 4, 3, 200),
    ("mirror_pair", "semi_oblivious", SCALE + SCALE // 4, 3, 200),
]


def _grown(db: Instance, copies: int) -> Instance:
    """The database pattern replicated ``copies`` times over fresh
    constants: isomorphic chase structure per copy, |I| scaled up."""
    out = Instance()
    for k in range(copies):
        for f in db:
            out.add(
                Atom(f.predicate, tuple(Constant(f"{t.value}@{k}") for t in f.args))
            )
    return out


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


#: Both explore.txt sections, assembled in definition order so a full
#: module run commits one file with the explore arm and the fork arm.
_SECTIONS: dict[str, str] = {}


def _emit_sections() -> None:
    write_result(
        "explore",
        "\n\n".join(
            _SECTIONS[k] for k in ("explore", "fork") if k in _SECTIONS
        ),
    )


def test_bench_explore():
    cases = {c.name: c for c in witness_cases()}
    rows = []
    total_sp = total_cp = 0.0
    for name, variant, copies, depth, states in WORKLOADS:
        case = cases[name]
        db = _grown(case.database, copies)
        with using_backend("indexed"):
            t_sp, r_sp = _best_of(
                REPEATS,
                lambda: explore_chase(
                    db, case.sigma, variant=variant,
                    max_depth=depth, max_states=states,
                    snapshots="savepoint", discovery="delta",
                ),
            )
            t_cp, r_cp = _best_of(
                REPEATS,
                lambda: explore_chase(
                    db, case.sigma, variant=variant,
                    max_depth=depth, max_states=states,
                    snapshots="copy", discovery="full",
                ),
            )
        assert r_sp == r_cp, f"differential violation on {name}/{variant}"
        total_sp += t_sp
        total_cp += t_cp
        speedup = t_cp / max(t_sp, 1e-9)
        rows.append(
            f"{name:<13} {variant:<15} {len(db):>6} {r_sp.explored_states:>7} "
            f"{t_sp * 1e3:>12.1f} {t_cp * 1e3:>10.1f} {speedup:>7.1f}x"
        )
    aggregate = total_cp / max(total_sp, 1e-9)
    header = (
        f"{'witness':<13} {'variant':<15} {'|I|':>6} {'states':>7} "
        f"{'savepoint ms':>12} {'copy ms':>10} {'speedup':>8}"
    )
    text = "\n".join(
        [
            "Explore micro-bench — savepoint+delta DFS vs the copy+full seed "
            f"baseline on grown Table 1 witness programs (scale {SCALE}), "
            f"best of {REPEATS}",
            "",
            header,
            "-" * len(header),
            *rows,
            "",
            f"floor: savepoint ≥ {SPEEDUP_FLOOR}x copy-backed baseline in "
            f"aggregate (measured {aggregate:.1f}x)",
        ]
    )
    _SECTIONS["explore"] = text
    _emit_sections()
    assert aggregate >= SPEEDUP_FLOOR, (
        f"savepoint-backed explorer only {aggregate:.2f}x faster than the "
        f"copy-backed baseline on the branchy witness corpus"
    )


def _branch_facts(name: str, k: int, null_base: int) -> list[Atom]:
    """The head facts one first-level chase step adds on copy ``k`` of a
    grown witness database (fresh nulls per branch, as the chase would)."""
    a = Constant(f"a@{k}")
    if name == "sigma_10":
        return [Atom("E", (a, Null(null_base), Null(null_base + 1)))]
    return [Atom("E", (a, Null(null_base)))]  # sigma_1 / sigma_11


def test_bench_fork():
    """COW forks vs the eager PR 9 full-column copy, branch by branch.

    Each arm replays the explorer's per-branch pattern over a grown
    Table 1 database: fork the parent, apply one chase step's worth of
    writes, drop the child.  The sigma programs' first-level steps write
    only the (initially empty) ``E`` store, so the COW arm never
    un-shares the |I|-sized ``N`` columns — fork cost is
    O(predicates + changes) — while the eager arm pays the O(|I|)
    column duplication on every branch.  (Single-predicate programs like
    mirror_pair see no win: the branch writes the only store, so the
    un-share equals the eager copy; the fork arm therefore measures the
    multi-predicate Table 1 programs where sharing can exist at all.)
    The fork-only columns time the bare ``copy()`` with no writes.
    """
    cases = {c.name: c for c in witness_cases()}
    rows = []
    total_cow = total_eager = 0.0
    for name, _variant, copies, _depth, _states in WORKLOADS:
        if name == "mirror_pair" or any(name == r[0] for r in rows):
            continue
        db = _grown(cases[name].database, copies)
        root = ColumnarInstance(db)

        def branches(eager: bool) -> int:
            null_base = 1
            total = 0
            for k in range(FORK_BRANCHES):
                child = root.copy(cow=False) if eager else root.copy()
                for f in _branch_facts(name, k % copies, null_base):
                    child.add(f)
                null_base += 2
                total += len(child)
            return total

        # Differential: both fork flavours yield identical children.
        c_cow, c_eager = root.copy(), root.copy(cow=False)
        for f in _branch_facts(name, 0, 999_983):
            c_cow.add(f)
            c_eager.add(f)
        assert c_cow == c_eager and len(root) == len(db)

        t_cow, n_cow = _best_of(REPEATS, lambda: branches(eager=False))
        t_eager, n_eager = _best_of(REPEATS, lambda: branches(eager=True))
        assert n_cow == n_eager
        f_cow, _ = _best_of(REPEATS, lambda: [root.copy() for _ in range(FORK_BRANCHES)])
        f_eager, _ = _best_of(
            REPEATS, lambda: [root.copy(cow=False) for _ in range(FORK_BRANCHES)]
        )
        total_cow += t_cow
        total_eager += t_eager
        rows.append(
            (
                name,
                f"{name:<13} {len(db):>6} {t_cow * 1e3:>8.2f} {t_eager * 1e3:>10.2f} "
                f"{t_eager / max(t_cow, 1e-9):>7.1f}x {f_cow * 1e6 / FORK_BRANCHES:>11.1f} "
                f"{f_eager * 1e6 / FORK_BRANCHES:>13.1f}",
            )
        )
    aggregate = total_eager / max(total_cow, 1e-9)
    header = (
        f"{'witness':<13} {'|I|':>6} {'cow ms':>8} {'eager ms':>10} "
        f"{'speedup':>8} {'fork cow µs':>11} {'fork eager µs':>13}"
    )
    text = "\n".join(
        [
            f"Fork micro-bench — {FORK_BRANCHES} branches of (fork + one "
            "chase-step write) per grown Table 1 program: copy-on-write "
            "forks vs the eager full-column copy (PR 9 behaviour, "
            f"``copy(cow=False)``), best of {REPEATS}; fork-only columns "
            "time the bare fork",
            "",
            header,
            "-" * len(header),
            *(r[1] for r in rows),
            "",
            f"floor: COW fork+step ≥ {FORK_FLOOR}x eager copy in aggregate "
            f"(measured {aggregate:.1f}x)",
        ]
    )
    _SECTIONS["fork"] = text
    _emit_sections()
    assert aggregate >= FORK_FLOOR, (
        f"COW forks only {aggregate:.2f}x faster than eager full-column "
        f"copies on the grown witness corpus"
    )
