"""Theorem 11 ablation: C vs Adn∃-C recognition counts.

For each classical criterion C, count how many dependency sets (paper
examples + structured gain witnesses + a corpus sample) are recognised by
C directly and by Adn∃-C.  Theorem 11 predicts Adn∃-C ⊇ C everywhere, with
strict gains somewhere.
"""

from conftest import write_result

from repro.core import AdnCombined
from repro.criteria import get_criterion
from repro.data import all_paper_sets
from repro.model import parse_dependencies

INNER = ["WA", "SC", "SwA", "MSA"]


def gain_sets():
    return {
        "null-guarded": parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) & B(y) -> A(y)
            """
        ),
        "two-generations": parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: B(x) -> exists y. R(x, y)
            r3: R(x, y) & C(y) -> B(y)
            r4: A(x) & R(x, y) -> C(y)
            """
        ),
    }


def test_bench_adn_combination(benchmark, corpus):
    sample = {o.name: o.sigma for o in corpus[:30]}
    sets = {**all_paper_sets(), **gain_sets(), **sample}

    def run():
        counts = {}
        for name in INNER:
            direct = get_criterion(name)
            combined = AdnCombined(name)
            d = g = 0
            for sigma in sets.values():
                dv = direct.accepts(sigma)
                gv = combined.accepts(sigma)
                assert not dv or gv, f"containment violated for {name}"
                d += dv
                g += gv
            counts[name] = (d, g)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Theorem 11 — C vs Adn∃-C over {len(sets)} dependency sets",
        "",
        f"{'criterion':<10} {'C':>5} {'Adn∃-C':>8} {'gain':>6}",
        "-" * 34,
    ]
    total_gain = 0
    for name, (d, g) in counts.items():
        lines.append(f"{name:<10} {d:>5} {g:>8} {g - d:>6}")
        total_gain += g - d
    assert total_gain >= 1, "expected strict gains somewhere (Theorem 11)"
    write_result("adn_combination", "\n".join(lines))
