"""Expressivity ablation: Theorems 5 and 9 plus the criterion matrix.

Reproduces the paper's expressivity story:

* Str ⊊ S-Str (Theorem 5.1): Σ11;
* S-Str ∦ {SC, AC, MFA} (Theorem 5.2): Σ11 one way, the guarded-cycle set
  the other;
* S-Str ⊊ SAC and AC ⊊ SAC (Theorem 9);
* the headline matrix: which criterion accepts which paper example.
"""

from conftest import write_result

from repro.analysis import classify
from repro.core import is_semi_acyclic, is_semi_stratified
from repro.criteria import get_criterion, is_stratified
from repro.data import all_paper_sets
from repro.model import parse_dependencies

CRITERIA = ["WA", "SC", "SwA", "AC", "LS", "MSA", "MFA", "CStr", "Str", "S-Str", "SAC"]


def guarded_cycle():
    """∈ {SC, MFA} \\ S-Str: terminating for every database (the guard G
    never holds for nulls) but the firing graph's hypothetical instances
    close the cycle."""
    return parse_dependencies(
        """
        r1: C(x) & G(x) -> exists y. R(x, y)
        r2: R(x, y) -> C(y)
        """
    )


def build_matrix():
    sets = all_paper_sets()
    matrix = {}
    for name, sigma in sets.items():
        report = classify(sigma, criteria=CRITERIA)
        matrix[name] = {c: report.results[c].accepted for c in CRITERIA}
    return matrix


def test_bench_expressivity_matrix(benchmark):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    header = f"{'set':<10}" + "".join(f"{c:>7}" for c in CRITERIA)
    lines = [
        "Expressivity matrix over the paper's example sets",
        "",
        header,
        "-" * len(header),
    ]
    for name, row in matrix.items():
        lines.append(
            f"{name:<10}"
            + "".join(f"{'✓' if row[c] else '·':>7}" for c in CRITERIA)
        )
    write_result("expressivity_matrix", "\n".join(lines))

    # Headline claims asserted:
    assert matrix["sigma_1"]["S-Str"] and matrix["sigma_1"]["SAC"]
    assert not any(
        matrix["sigma_1"][c] for c in CRITERIA if c not in ("S-Str", "SAC")
    )
    assert not any(matrix["sigma_10"][c] for c in CRITERIA)


def test_bench_theorem5(benchmark):
    def verify():
        sigma11 = all_paper_sets()["sigma_11"]
        guarded = guarded_cycle()
        return {
            "str_sigma11": is_stratified(sigma11),
            "sstr_sigma11": is_semi_stratified(sigma11),
            "sc_sigma11": get_criterion("SC").accepts(sigma11),
            "ac_sigma11": get_criterion("AC").accepts(sigma11),
            "mfa_sigma11": get_criterion("MFA").accepts(sigma11),
            "sc_guarded": get_criterion("SC").accepts(guarded),
            "mfa_guarded": get_criterion("MFA").accepts(guarded),
            "sstr_guarded": is_semi_stratified(guarded),
        }

    v = benchmark.pedantic(verify, rounds=1, iterations=1)
    # Theorem 5.1: Str ⊊ S-Str.
    assert not v["str_sigma11"] and v["sstr_sigma11"]
    # Theorem 5.2: S-Str ∦ {SC, AC, MFA} — both directions.
    assert v["sstr_sigma11"] and not (v["sc_sigma11"] or v["ac_sigma11"] or v["mfa_sigma11"])
    assert v["sc_guarded"] and v["mfa_guarded"] and not v["sstr_guarded"]
    write_result(
        "theorem5",
        "Theorem 5 verified:\n"
        f"  Σ11: Str={v['str_sigma11']}, S-Str={v['sstr_sigma11']} (Str ⊊ S-Str)\n"
        f"  Σ11: SC={v['sc_sigma11']}, AC={v['ac_sigma11']}, MFA={v['mfa_sigma11']} "
        "(S-Str ⊄ SC/AC/MFA)\n"
        f"  guarded cycle: SC={v['sc_guarded']}, MFA={v['mfa_guarded']}, "
        f"S-Str={v['sstr_guarded']} (SC/MFA ⊄ S-Str)",
    )


def test_bench_theorem9(benchmark, corpus):
    """S-Str ⊆ SAC and AC ⊆ SAC, verified over paper sets + corpus sample;
    strictness witnessed by Σ1 (SAC ∌ AC side uses the EGD analysis)."""
    sample = [o.sigma for o in corpus[:40]]
    sets = list(all_paper_sets().values()) + sample

    def verify():
        rows = []
        for sigma in sets:
            sstr = is_semi_stratified(sigma)
            sac = is_semi_acyclic(sigma)
            ac = get_criterion("AC").accepts(sigma)
            rows.append((sstr, ac, sac))
        return rows

    rows = benchmark.pedantic(verify, rounds=1, iterations=1)
    for sstr, ac, sac in rows:
        assert not sstr or sac, "S-Str ⊆ SAC violated"
        assert not ac or sac, "AC ⊆ SAC violated"
    strict_sstr = sum(1 for sstr, _, sac in rows if sac and not sstr)
    strict_ac = sum(1 for _, ac, sac in rows if sac and not ac)
    assert strict_ac >= 1  # Σ1 at least
    write_result(
        "theorem9",
        f"Theorem 9 over {len(rows)} dependency sets:\n"
        f"  S-Str ⊆ SAC holds on all; SAC \\ S-Str observed on {strict_sstr}\n"
        f"  AC   ⊆ SAC holds on all; SAC \\ AC   observed on {strict_ac}",
    )
