"""Theorem 2 / Example 8 bench: the substitution-free simulation is sound
but not complete.

* Σ8 terminates in every chase sequence, directly — but its simulation has
  no terminating sequence within generous budgets, so every TGD-only
  criterion (applied through the simulation) misses it while the direct
  EGD analysis (Str / S-Str / SAC) accepts.
* Across EGD-heavy corpus ontologies, compare direct-analysis criteria with
  simulation-based ones: the direct analysis recognises a superset.
"""

from conftest import write_result

from repro.chase import ChaseStatus, run_chase
from repro.core import is_semi_acyclic, is_semi_stratified
from repro.criteria import get_criterion, is_stratified
from repro.data import db_8, sigma_8
from repro.simulation import natural_simulation, substitution_free_simulation


def test_bench_example8_incompleteness(benchmark):
    def run():
        sigma = sigma_8()
        db = db_8()
        direct = run_chase(db, sigma, strategy="fifo", max_steps=400)
        sfs = substitution_free_simulation(sigma)
        nat = natural_simulation(sigma)
        sim_runs = {
            strategy: run_chase(db, sfs, strategy=strategy, max_steps=800).status
            for strategy in ("fifo", "full_first", "lifo")
        }
        nat_run = run_chase(db, nat, strategy="fifo", max_steps=800).status
        return direct.status, sim_runs, nat_run, len(sfs), len(nat)

    direct_status, sim_runs, nat_status, sfs_size, nat_size = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert direct_status in (ChaseStatus.SUCCESS, ChaseStatus.FAILURE)
    assert all(s is ChaseStatus.EXCEEDED for s in sim_runs.values())
    lines = [
        "Theorem 2 / Example 8 — EGD simulation soundness vs completeness",
        "",
        f"Σ8 direct standard chase:        {direct_status.value}",
        f"substitution-free simulation ({sfs_size} TGDs):",
    ]
    for strategy, status in sim_runs.items():
        lines.append(f"  strategy {strategy:<12} {status.value}")
    lines.append(f"natural simulation ({nat_size} TGDs): {nat_status.value}")
    lines += [
        "",
        "criteria on Σ8:",
        f"  direct analysis: Str={is_stratified(sigma_8())}, "
        f"S-Str={is_semi_stratified(sigma_8())}, SAC={is_semi_acyclic(sigma_8())}",
        f"  via simulation:  SwA={get_criterion('SwA').accepts(sigma_8())}, "
        f"MFA={get_criterion('MFA').accepts(sigma_8())}, "
        f"AC={get_criterion('AC').accepts(sigma_8())}",
        "",
        "paper: Σ8 ∈ CTc∀ but no substitution-free simulation of it is in",
        "CTc∃ — simulating EGDs by TGDs cannot replace a direct analysis.",
    ]
    assert is_semi_acyclic(sigma_8())
    assert not get_criterion("SwA").accepts(sigma_8())
    write_result("simulation", "\n".join(lines))


def test_bench_simulation_on_corpus(benchmark, corpus):
    egd_rescued = [o for o in corpus if o.character == "egd_rescued"][:10]

    def run():
        direct = sum(1 for o in egd_rescued if is_semi_acyclic(o.sigma))
        simulated = sum(
            1 for o in egd_rescued if get_criterion("SwA").accepts(o.sigma)
        )
        return direct, simulated

    direct, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert direct >= simulated
    assert direct > 0
    write_result(
        "simulation_corpus",
        f"EGD-rescued corpus ontologies (n={len(egd_rescued)}): "
        f"SAC (direct EGD analysis) accepts {direct}; "
        f"SwA-through-simulation accepts {simulated}.",
    )
