"""Table 1: relationships among the CTcq classes for TGDs + EGDs.

Every witness claim is re-verified empirically with the bounded exhaustive
chase explorer; the rendered table lists the relationships and the
evidence.  (Table 1's two equalities — CTcore∀ = CTcore∃, and the
TGD-only collapses — are definitional/deterministic and are covered by the
core-chase unit tests.)
"""

from conftest import write_result

from repro.analysis import render_table1, verify_cases
from repro.data import witness_cases


def run_verification():
    return verify_cases(witness_cases())


def test_bench_table1(benchmark):
    checks = benchmark.pedantic(run_verification, rounds=1, iterations=1)
    failed = [c for c in checks if not c.holds]
    assert not failed, failed
    write_result("table1", render_table1(checks))
