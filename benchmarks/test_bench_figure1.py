"""Figure 1: the chase graph and firing graph of Σ11.

Regenerates both graphs, renders them, and asserts the exact edge sets the
paper draws: the two graphs agree on the incoming edges of the full TGDs
r2 and r3, while the edge r2 → r1 of G(Σ11) is defused in Gf(Σ11).
"""

from conftest import write_result

from repro.data import FIGURE1_CHASE_EDGES, FIGURE1_FIRING_EDGES, sigma_11
from repro.firing import chase_graph, edge_labels, firing_graph, render_graph


def build_both_graphs():
    sigma = sigma_11()
    return chase_graph(sigma), firing_graph(sigma)


def test_bench_figure1(benchmark):
    g, gf = benchmark.pedantic(build_both_graphs, rounds=3, iterations=1)
    assert edge_labels(g) == FIGURE1_CHASE_EDGES
    assert edge_labels(gf) == FIGURE1_FIRING_EDGES
    text = "\n".join(
        [
            "Figure 1 — Σ11 = {r1: N(x)→∃y E(x,y), r2: E(x,y)→N(y), "
            "r3: E(x,y)→E(y,x)}",
            "",
            render_graph(g, "Chase graph G(Σ11)"),
            "",
            render_graph(gf, "Firing graph Gf(Σ11)"),
            "",
            "paper: the edge r2 → r1 of the chase graph is absent from the",
            "firing graph (enforcing r3 first defuses the trigger), so every",
            "strongly connected component of Gf(Σ11) is weakly acyclic:",
            "Σ11 is semi-stratified although it is not stratified.",
        ]
    )
    write_result("figure1", text)
