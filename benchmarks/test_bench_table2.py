"""Table 2: the paper's experimental evaluation over the ontology corpus.

* **2(a)** — corpus structure: number of ontologies and average |Σ| per
  (|Σ∃|, |Σegd|) class.  Our synthetic corpus reproduces the class
  partition and test counts exactly; sizes are scaled (see conftest).
* **2(b)** — cost of Adn∃: |Σµ|/|Σ| ratio and running time per class.
* **2(c)** — expressivity: A+NT and FN per class, against a bounded-chase
  ground truth, plus the FP? column our reproduction adds (accepted but no
  halting chase found — invisible to the paper's methodology).
"""

from conftest import write_result

from repro.analysis.evaluation import render_table2
from repro.generators import TABLE2A_CLASSES, corpus_by_class


def test_bench_table2a(benchmark, corpus):
    groups = benchmark.pedantic(
        lambda: corpus_by_class(corpus), rounds=1, iterations=1
    )
    paper = {c["name"]: c for c in TABLE2A_CLASSES}
    lines = [
        "Table 2(a) — corpus structure (paper vs generated)",
        "",
        f"{'class':<20} {'#tests':>7} {'paper #':>8} {'avg |Σ|':>8} {'paper |Σ|':>10}",
        "-" * 60,
    ]
    for name in sorted(paper):
        onts = groups.get(name, [])
        avg = sum(len(o.sigma) for o in onts) / max(1, len(onts))
        lines.append(
            f"{name:<20} {len(onts):>7} {paper[name]['tests']:>8} "
            f"{avg:>8.0f} {paper[name]['avg_size']:>10}"
        )
        # Class counts must match the paper exactly (structure is exact;
        # sizes are scaled).
        assert len(onts) == paper[name]["tests"]
    lines.append("-" * 60)
    lines.append(f"total ontologies: {len(corpus)} (paper: 178)")
    assert len(corpus) == 178
    write_result("table2a", "\n".join(lines))


def test_bench_table2b(benchmark, corpus_summaries):
    summaries = corpus_summaries

    def project():
        return {
            name: (s.avg_ratio, s.avg_time_ms) for name, s in summaries.items()
        }

    rows = benchmark.pedantic(project, rounds=1, iterations=1)
    paper_b = {
        "E1-10/G1-10": (2.38, 84), "E1-10/G11-100": (3.15, 125),
        "E11-100/G1-10": (2.45, 141), "E11-100/G11-100": (2.83, 275),
        "E101-1000/G1-10": (2.97, 787), "E101-1000/G11-100": (6.16, 22819),
        "E1001-5000/G1-10": (2.82, 712), "E1001-5000/G11-100": (2.82, 1495),
    }
    lines = [
        "Table 2(b) — Adn∃ complexity (paper vs measured; sizes scaled)",
        "",
        f"{'class':<20} {'|Σµ|/|Σ|':>9} {'paper':>7} {'time ms':>9} {'paper ms':>9}",
        "-" * 60,
    ]
    for name in sorted(paper_b):
        ratio, ms = rows[name]
        p_ratio, p_ms = paper_b[name]
        lines.append(
            f"{name:<20} {ratio:>9.2f} {p_ratio:>7.2f} {ms:>9.1f} {p_ms:>9}"
        )
        # Shape: the adorned set stays within a small constant factor of Σ
        # (the paper's ratios are 2.4–6.2).
        assert 1.0 <= ratio <= 10.0, (name, ratio)
    write_result("table2b", "\n".join(lines))


def test_bench_table2c(benchmark, corpus_summaries):
    summaries = benchmark.pedantic(
        lambda: corpus_summaries, rounds=1, iterations=1
    )
    paper_c = {
        "E1-10/G1-10": (50, 0), "E1-10/G11-100": (7, 0),
        "E11-100/G1-10": (15, 0), "E11-100/G11-100": (26, 0),
        "E101-1000/G1-10": (51, 0), "E101-1000/G11-100": (11, 2),
        "E1001-5000/G1-10": (9, 0), "E1001-5000/G11-100": (7, 0),
    }
    lines = [
        "Table 2(c) — expressivity (paper vs measured)",
        "",
        f"{'class':<20} {'A+NT':>5} {'paper':>6} {'FN':>4} {'paper':>6} {'FP?':>4}",
        "-" * 56,
    ]
    total_fn = 0
    for name in sorted(paper_c):
        s = summaries[name]
        p_ant, p_fn = paper_c[name]
        total_fn += s.false_negatives
        lines.append(
            f"{name:<20} {s.a_plus_nt:>5} {p_ant:>6} "
            f"{s.false_negatives:>4} {p_fn:>6} {s.accepted_not_halted:>4}"
        )
    halting = sum(
        s.tests - s.accepted_not_halted - s.not_accepted_not_halted
        for s in summaries.values()
    )
    recognised = sum(
        s.accepted - s.accepted_not_halted for s in summaries.values()
    )
    lines += [
        "-" * 56,
        f"chase-halting ontologies: {halting}; recognised by SAC: {recognised}; "
        f"false negatives: {total_fn}",
        "paper: among 76 halting ontologies only 2 were not semi-acyclic.",
        "",
        "FP? column (not observable with the paper's methodology): SAC",
        "accepted but no chase strategy halted within budget — the literal",
        "Algorithm 1's Dµ analysis merges free symbols using hypothetical",
        "all-bound database facts (DESIGN.md §2, EXPERIMENTS.md).",
        "",
        render_table2(summaries),
    ]
    # Shape assertions: recognition of halting ontologies is near-total.
    # False negatives stem from the θ-merge conflating null generations
    # (several definitions accumulate on one symbol, creating spurious
    # Ω self-loops) — the same mechanism behind the paper's 2/76; our
    # corpus triggers it somewhat more often.
    assert halting > 0
    assert total_fn <= max(4, round(0.15 * halting))
    write_result("table2c", "\n".join(lines))
