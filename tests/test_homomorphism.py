"""Unit tests for the homomorphism finder and satisfaction checks."""

from repro.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
    homomorphically_equivalent,
    instance_maps_into,
    satisfies,
    satisfies_all,
    satisfies_instantiated,
    violations,
)
from repro.model import (
    Atom,
    Constant,
    Instance,
    Null,
    Variable,
    parse_dependencies,
    parse_dependency,
    parse_facts,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")
n1, n2 = Null(1), Null(2)


def E(s, t):
    return Atom("E", (s, t))


class TestFinder:
    def test_single_atom(self):
        h = find_homomorphism([E(x, y)], Instance([E(a, b)]))
        assert h == {x: a, y: b}

    def test_constants_fixed(self):
        assert not has_homomorphism([E(a, y)], Instance([E(b, c)]))
        assert has_homomorphism([E(a, y)], Instance([E(a, c)]))

    def test_join(self):
        target = Instance([E(a, b), E(b, c)])
        h = find_homomorphism([E(x, y), E(y, z)], target)
        assert h == {x: a, y: b, z: c}

    def test_repeated_variable(self):
        assert not has_homomorphism([E(x, x)], Instance([E(a, b)]))
        assert has_homomorphism([E(x, x)], Instance([E(a, a)]))

    def test_enumeration_count(self):
        target = Instance([E(a, b), E(a, c)])
        homs = list(find_homomorphisms([E(x, y)], target, limit=None))
        assert len(homs) == 2

    def test_limit(self):
        target = Instance([E(a, b), E(a, c)])
        assert len(list(find_homomorphisms([E(x, y)], target, limit=1))) == 1

    def test_seed_extension(self):
        target = Instance([E(a, b), E(c, b)])
        homs = list(find_homomorphisms([E(x, y)], target, seed={x: c}, limit=None))
        assert homs == [{x: c, y: b}]

    def test_source_nulls_flexible_by_default(self):
        # Nulls in the source behave like variables (universal-model hom).
        assert has_homomorphism([E(a, n1)], Instance([E(a, b)]))

    def test_frozen_nulls(self):
        assert not has_homomorphism(
            [E(a, n1)], Instance([E(a, b)]), frozen_nulls=True
        )
        assert has_homomorphism(
            [E(a, n1)], Instance([E(a, n1)]), frozen_nulls=True
        )

    def test_empty_source(self):
        assert find_homomorphism([], Instance([E(a, b)])) == {}

    def test_target_as_plain_list(self):
        assert has_homomorphism([E(x, y)], [E(a, b)])


class TestInstanceHomomorphisms:
    def test_example3_universal_model(self):
        # J1 of Example 3 maps into J2 via η1→d, η2→a.
        j1 = parse_facts('P("a","b") Q("c","d") E("a", _1) E(_2, "d")')
        j2 = parse_facts('P("a","b") Q("c","d") E("a", "d")')
        h = instance_maps_into(j1, j2)
        assert h is not None
        assert h[Null(1)] is Constant("d")
        assert h[Null(2)] is Constant("a")
        # But J2 does not map back into J1... actually it does here? No:
        # E(a,d) has no preimage atom with both constants in J1.
        assert instance_maps_into(j2, j1) is None
        assert not homomorphically_equivalent(j1, j2)

    def test_insertion_order_does_not_affect_validity(self):
        # instance_maps_into sorts its source atoms with a structural key
        # (it used to stringify every atom per call); whatever the
        # insertion order, the result must be a valid homomorphism and
        # the same mapping every time.
        import random

        from repro.homomorphism import homomorphic_image

        facts = parse_facts(
            'P("a","b") P("b","c") Q("c","d") E("a", _1) E(_2, "d") '
            'E(_1, _2) R(1) R(2) S(_3, "a", 1)'
        )
        target = parse_facts(
            'P("a","b") P("b","c") Q("c","d") E("a","d") E("d","a") '
            'E("d","d") R(1) R(2) S("d", "a", 1)'
        )
        reference = None
        atoms = list(facts)
        for seed in range(6):
            random.Random(seed).shuffle(atoms)
            shuffled = Instance(atoms)
            h = instance_maps_into(shuffled, target)
            assert h is not None
            assert set(homomorphic_image(shuffled, h)) <= set(target)
            if reference is None:
                reference = h
            else:
                assert h == reference

    def test_structural_key_handles_mixed_constant_types(self):
        # int and str constants in the same position must not raise on
        # comparison inside the sort.
        mixed = parse_facts('R(1) R("one") R(2) R("two")')
        assert instance_maps_into(mixed, mixed) is not None


class TestSatisfaction:
    def setup_method(self):
        self.sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )

    def test_satisfied_database(self):
        inst = parse_facts('N("a") E("a", "a")')
        assert satisfies_all(inst, self.sigma)

    def test_tgd_violation(self):
        inst = parse_facts('N("a")')
        r1 = self.sigma[0]
        v = list(violations(inst, r1))
        assert len(v) == 1 and v[0][Variable("x")] is a

    def test_tgd_satisfied_by_witness(self):
        inst = parse_facts('N("a") E("a", "b")')
        assert satisfies(inst, self.sigma[0])
        # but r2 now violated: N(b) missing
        assert not satisfies(inst, self.sigma[1])

    def test_egd_violation(self):
        inst = parse_facts('E("a", "b")')
        assert not satisfies(inst, self.sigma[2])

    def test_egd_satisfied_when_equal(self):
        inst = parse_facts('E("a", "a")')
        assert satisfies(inst, self.sigma[2])

    def test_violations_limit(self):
        inst = parse_facts('E("a","b") E("b","c")')
        assert len(list(violations(inst, self.sigma[1], limit=1))) == 1


class TestInstantiatedSatisfaction:
    def test_vacuous_when_body_absent(self):
        r = parse_dependency("N(x) -> exists y. E(x, y)")
        inst = parse_facts('E("a", "b")')
        assert satisfies_instantiated(inst, r, {x: a})

    def test_violated_instantiation(self):
        r = parse_dependency("N(x) -> exists y. E(x, y)")
        inst = parse_facts('N("a")')
        assert not satisfies_instantiated(inst, r, {x: a})

    def test_satisfied_instantiation(self):
        r = parse_dependency("N(x) -> exists y. E(x, y)")
        inst = parse_facts('N("a") E("a", "b")')
        assert satisfies_instantiated(inst, r, {x: a})

    def test_egd_instantiated(self):
        r = parse_dependency("E(x, y) -> x = y")
        inst = parse_facts('E("a", "b")')
        assert not satisfies_instantiated(inst, r, {x: a, y: b})
        # Body not in the instance: vacuously satisfied.
        assert satisfies_instantiated(inst, r, {x: b, y: c})
