"""Parser round-trips and error reporting."""

import pytest

from repro.model import (
    EGD,
    TGD,
    Constant,
    Null,
    ParseError,
    Variable,
    parse_dependencies,
    parse_dependency,
    parse_facts,
    to_text,
)


class TestDependencyParsing:
    def test_simple_tgd(self):
        r = parse_dependency("N(x) -> E(x, y)")
        assert isinstance(r, TGD)
        # y does not occur in the body: inferred existential.
        assert [v.name for v in r.existential] == ["y"]

    def test_exists_syntax(self):
        r = parse_dependency("N(x) -> exists y. E(x, y)")
        assert [v.name for v in r.existential] == ["y"]

    def test_exists_multiple(self):
        r = parse_dependency("N(x) -> exists y, z. E(x, y, z)")
        assert [v.name for v in r.existential] == ["y", "z"]

    def test_nested_exists_style(self):
        r = parse_dependency("N(x) -> exists y exists z. E(x, y, z)")
        assert [v.name for v in r.existential] == ["y", "z"]

    def test_unicode_arrow_and_conjunction(self):
        r = parse_dependency("A(x) ∧ B(x) → C(x)")
        assert isinstance(r, TGD) and len(r.body) == 2

    def test_egd(self):
        r = parse_dependency("E(x, y) -> x = y")
        assert isinstance(r, EGD)
        assert r.lhs is Variable("x") and r.rhs is Variable("y")

    def test_label(self):
        r = parse_dependency("r1: N(x) -> N(x)")
        assert r.label == "r1"

    def test_constants_quoted(self):
        r = parse_dependency('P(x) -> Q(x, "c")')
        assert Constant("c") in r.head[0].args

    def test_numeric_constant(self):
        r = parse_dependency("P(x) -> Q(x, 42)")
        assert Constant(42) in r.head[0].args

    def test_comments_and_blank_lines(self):
        sigma = parse_dependencies(
            """
            # a comment
            r1: A(x) -> B(x)
            % another comment
            r2: B(x) -> C(x)
            """
        )
        assert len(sigma) == 2

    def test_error_position(self):
        with pytest.raises(ParseError) as err:
            parse_dependency("A(x) -> ")
        assert "line 1" in str(err.value)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_dependency("A(x) -> B(x) B")

    def test_egd_constant_side_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency('A(x) -> x = "c"')


class TestFactParsing:
    def test_facts(self):
        inst = parse_facts('N("a") E("a", "b")')
        assert len(inst) == 2

    def test_nulls_in_facts(self):
        inst = parse_facts("P(_3)")
        assert Null(3) in next(iter(inst)).args

    def test_variables_rejected_in_facts(self):
        with pytest.raises(ParseError):
            parse_facts("P(x)")


class TestRoundTrip:
    def test_to_text_roundtrip(self):
        text = """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) & N(x) -> N(y)
        r3: E(x, y) -> x = y
        r4: P(x) -> Q(x, "lit", 7)
        """
        sigma = parse_dependencies(text)
        again = parse_dependencies(to_text(sigma))
        assert sigma == again

    def test_roundtrip_escaping(self):
        from repro.model import DependencySet

        r = parse_dependency('P(x) -> Q(x, "a\\"b")')
        again = parse_dependencies(to_text(DependencySet([r])))
        assert r == next(iter(again))
