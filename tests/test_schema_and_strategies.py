"""Unit tests for the schema module and the chase strategies."""

import pytest

from repro.chase import Trigger
from repro.chase.strategies import (
    NAMED_STRATEGIES,
    egd_first,
    existential_first,
    fifo,
    full_first,
    lifo,
    random_strategy,
    resolve_strategy,
)
from repro.model import (
    Constant,
    Schema,
    parse_dependencies,
    parse_dependency,
    parse_facts,
)


class TestSchema:
    def test_from_dependencies(self):
        sigma = parse_dependencies("r: N(x) -> exists y. E(x, y)")
        schema = Schema.from_dependencies(sigma)
        assert schema.arity("N") == 1 and schema.arity("E") == 2
        assert "N" in schema and "missing" not in schema
        assert len(schema) == 2

    def test_from_instance(self):
        schema = Schema.from_instance(parse_facts('E("a","b") N("a")'))
        assert schema.arity("E") == 2

    def test_from_instance_conflict(self):
        from repro.model import Atom, Instance

        inst = Instance([Atom("P", (Constant("a"),))])
        inst.add(Atom("P", (Constant("a"), Constant("b"))))
        with pytest.raises(ValueError):
            Schema.from_instance(inst)

    def test_union(self):
        s1 = Schema({"A": 1})
        s2 = Schema({"B": 2})
        merged = Schema.union(s1, s2)
        assert len(merged) == 2

    def test_union_conflict(self):
        with pytest.raises(ValueError):
            Schema.union(Schema({"A": 1}), Schema({"A": 2}))

    def test_validation(self):
        with pytest.raises(ValueError):
            Schema({"A": -1})
        with pytest.raises(ValueError):
            Schema({"": 1})

    def test_equality_and_iteration(self):
        s = Schema({"B": 2, "A": 1})
        assert list(s) == ["A", "B"]
        assert s == Schema({"A": 1, "B": 2})
        assert hash(s) == hash(Schema({"A": 1, "B": 2}))


def _triggers():
    sigma = parse_dependencies(
        """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> x = y
        """
    )
    a, b = Constant("a"), Constant("b")
    from repro.model import Variable

    x, y = Variable("x"), Variable("y")
    return [
        Trigger.make(sigma[0], {x: a}),              # existential TGD
        Trigger.make(sigma[1], {x: a, y: b}),        # full TGD
        Trigger.make(sigma[2], {x: a, y: b}),        # EGD
    ]


class TestStrategies:
    def test_fifo_lifo(self):
        triggers = _triggers()
        assert fifo(triggers) == 0
        assert lifo(triggers) == len(triggers) - 1

    def test_full_first_prefers_egd(self):
        triggers = _triggers()
        assert triggers[full_first(triggers)].dependency.is_egd

    def test_full_first_prefers_full_tgd_over_existential(self):
        triggers = _triggers()[:2]  # existential, full
        assert triggers[full_first(triggers)].dependency.is_full

    def test_egd_first(self):
        triggers = _triggers()
        assert triggers[egd_first(triggers)].dependency.is_egd
        no_egd = triggers[:2]
        assert egd_first(no_egd) == 0

    def test_existential_first(self):
        triggers = _triggers()
        assert triggers[existential_first(triggers)].dependency.is_existential

    def test_random_strategy_reproducible(self):
        triggers = _triggers()
        s1, s2 = random_strategy(42), random_strategy(42)
        picks1 = [s1(triggers) for _ in range(10)]
        picks2 = [s2(triggers) for _ in range(10)]
        assert picks1 == picks2
        assert all(0 <= p < len(triggers) for p in picks1)

    def test_resolve(self):
        assert resolve_strategy("fifo") is fifo
        assert resolve_strategy(fifo) is fifo
        with pytest.raises(ValueError):
            resolve_strategy("bogus")
        assert set(NAMED_STRATEGIES) >= {"fifo", "lifo", "full_first"}


class TestTrigger:
    def test_key_restriction(self):
        r2 = parse_dependency("E(x, y) -> N(y)")
        from repro.model import Variable

        x, y = Variable("x"), Variable("y")
        t = Trigger.make(r2, {x: Constant("a"), y: Constant("b")})
        assert t.key((y,)) == (r2, (Constant("b"),))

    def test_rewrite(self):
        from repro.model import Null, Variable

        r2 = parse_dependency("E(x, y) -> N(y)")
        x, y = Variable("x"), Variable("y")
        t = Trigger.make(r2, {x: Null(1), y: Constant("b")})
        t2 = t.rewrite(Null(1), Constant("a"))
        assert t2.image_of(x) is Constant("a")
        assert t2.image_of(y) is Constant("b")

    def test_str(self):
        assert "↦" in str(_triggers()[0])
