"""Unit tests for core computation."""

import pytest

from repro.homomorphism import CoreBudgetExceeded, core, is_core
from repro.model import Atom, Constant, Instance, Null, parse_facts

a, b = Constant("a"), Constant("b")
n1, n2, n3 = Null(1), Null(2), Null(3)


def E(s, t):
    return Atom("E", (s, t))


class TestCore:
    def test_database_is_its_own_core(self):
        inst = parse_facts('E("a", "b") E("b", "a")')
        assert core(inst).facts() == inst.facts()
        assert is_core(inst)

    def test_redundant_null_collapses(self):
        # E(a, n1) is subsumed by E(a, b).
        inst = Instance([E(a, b), E(a, n1)])
        assert core(inst).facts() == {E(a, b)}

    def test_chain_collapse(self):
        # E(a, n1), E(a, n2): one of the two nulls suffices.
        inst = Instance([E(a, n1), E(a, n2)])
        result = core(inst)
        assert len(result) == 1

    def test_non_redundant_nulls_kept(self):
        # Example 3's universal model J1 is a core: the two E-atoms are not
        # mutually subsumable (different constant sides).
        j1 = parse_facts('P("a","b") Q("c","d") E("a", _1) E(_2, "d")')
        assert core(j1).facts() == j1.facts()
        assert is_core(j1)

    def test_triangle_vs_loop(self):
        # A 2-cycle of nulls with a self-loop: collapses onto the loop.
        inst = Instance([E(n1, n2), E(n2, n1), E(n3, n3)])
        result = core(inst)
        assert result.facts() == {E(n3, n3)}

    def test_idempotent(self):
        inst = Instance([E(a, b), E(a, n1), E(n1, n2)])
        first = core(inst)
        assert core(first).facts() == first.facts()

    def test_budget_exceeded(self):
        inst = Instance([E(a, n1), E(a, b)])
        with pytest.raises(CoreBudgetExceeded):
            core(inst, budget=0)

    def test_core_preserves_constants(self):
        inst = Instance([E(a, n1), E(b, n1)])
        result = core(inst)
        # Both constant-anchored atoms must survive (n1 is shared and
        # needed by both).
        assert E(a, n1) in result or len(result) == 2
        assert len(result) == 2
