"""Unit tests for atoms and positions."""

import pytest

from repro.model import Atom, Constant, Null, Position, Variable
from repro.model.atoms import atoms_nulls, atoms_terms, atoms_variables

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")
n1 = Null(1)


class TestAtomBasics:
    def test_equality_and_hash(self):
        assert Atom("E", (x, y)) == Atom("E", (x, y))
        assert hash(Atom("E", (x, y))) == hash(Atom("E", (x, y)))
        assert Atom("E", (x, y)) != Atom("E", (y, x))
        assert Atom("E", (x, y)) != Atom("F", (x, y))

    def test_arity(self):
        assert Atom("E", (x, y)).arity == 2
        assert Atom("P", ()).arity == 0

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("E", ("not a term",))

    def test_immutability(self):
        atom = Atom("E", (x, y))
        with pytest.raises(AttributeError):
            atom.predicate = "F"

    def test_str(self):
        assert str(Atom("E", (a, n1))) == 'E("a", η1)'


class TestFactChecks:
    def test_is_fact(self):
        assert Atom("E", (a, n1)).is_fact
        assert not Atom("E", (a, x)).is_fact

    def test_is_ground_with_constants(self):
        assert Atom("E", (a, b)).is_ground_with_constants
        assert not Atom("E", (a, n1)).is_ground_with_constants


class TestApply:
    def test_apply_mapping(self):
        atom = Atom("E", (x, y))
        assert atom.apply({x: a, y: n1}) == Atom("E", (a, n1))

    def test_apply_partial(self):
        atom = Atom("E", (x, y))
        assert atom.apply({x: a}) == Atom("E", (a, y))

    def test_apply_identity_returns_self(self):
        atom = Atom("E", (a, b))
        assert atom.apply({x: b}) is atom

    def test_apply_does_not_touch_constants_unless_mapped(self):
        atom = Atom("E", (a, x))
        out = atom.apply({a: b, x: y})
        assert out == Atom("E", (b, y))


class TestTermSets:
    def test_variables(self):
        assert Atom("E", (x, a)).variables() == {x}
        assert atoms_variables([Atom("E", (x, y)), Atom("N", (x,))]) == {x, y}

    def test_nulls_and_terms(self):
        atoms = [Atom("E", (a, n1))]
        assert atoms_nulls(atoms) == {n1}
        assert atoms_terms(atoms) == {a, n1}


class TestPosition:
    def test_equality_ordering(self):
        assert Position("E", 0) == Position("E", 0)
        assert Position("E", 0) != Position("E", 1)
        assert Position("E", 0) < Position("E", 1) < Position("F", 0)

    def test_str_is_one_based(self):
        assert str(Position("E", 0)) == "E[1]"

    def test_positions_iterator(self):
        pos = list(Atom("E", (x, a)).positions())
        assert pos == [(Position("E", 0), x), (Position("E", 1), a)]
