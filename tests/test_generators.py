"""Corpus generator tests: determinism, class structure, character truth."""

from repro.chase import ChaseStatus, run_chase
from repro.core import is_semi_acyclic
from repro.generators import (
    TABLE2A_CLASSES,
    corpus_by_class,
    generate_corpus,
    random_dependency_set,
    resolve_scale,
    seed_database,
    sparse_database,
)
from repro.model import to_text


class TestCorpusStructure:
    def test_class_counts_match_table2a(self):
        corpus = generate_corpus(scale=0.03)
        groups = corpus_by_class(corpus)
        for cls in TABLE2A_CLASSES:
            assert len(groups[cls["name"]]) == cls["tests"], cls["name"]
        assert len(corpus) == 178

    def test_deterministic(self):
        c1 = generate_corpus(scale=0.03)
        c2 = generate_corpus(scale=0.03)
        assert [to_text(o.sigma) for o in c1[:20]] == [
            to_text(o.sigma) for o in c2[:20]
        ]

    def test_every_ontology_has_existential_and_egd_or_small(self):
        corpus = generate_corpus(scale=0.03)
        for o in corpus[:50]:
            assert len(o.sigma) >= 3
            assert o.sigma.existential or o.character == "mirror"

    def test_max_size_cap(self):
        corpus = generate_corpus(scale=0.06, max_size=40)
        assert all(len(o.sigma) <= 45 for o in corpus)

    def test_scale_resolution(self):
        assert resolve_scale("paper") == 1.0
        assert resolve_scale(0.5) == 0.5
        import pytest

        with pytest.raises(ValueError):
            resolve_scale(3.0)


class TestCharacterGroundTruth:
    """The cycle motifs must actually produce their termination character
    (spot-checked on the first instance of each character)."""

    def _first(self, corpus, character):
        for o in corpus:
            if o.character == character:
                return o
        return None

    def setup_method(self):
        self.corpus = generate_corpus(scale=0.03, tests_scale=0.4)

    def test_acyclic_terminates_and_recognised(self):
        o = self._first(self.corpus, "acyclic")
        assert o is not None
        run = run_chase(seed_database(o.sigma), o.sigma, strategy="full_first",
                        max_steps=2_000)
        assert run.terminated
        assert is_semi_acyclic(o.sigma)

    def test_unguarded_diverges_and_rejected(self):
        o = self._first(self.corpus, "unguarded")
        assert o is not None
        run = run_chase(seed_database(o.sigma), o.sigma, strategy="full_first",
                        max_steps=800)
        assert run.status is ChaseStatus.EXCEEDED
        assert not is_semi_acyclic(o.sigma)

    def test_egd_rescued_terminates_and_recognised(self):
        o = self._first(self.corpus, "egd_rescued")
        assert o is not None
        run = run_chase(seed_database(o.sigma), o.sigma, strategy="full_first",
                        max_steps=2_000)
        assert run.terminated
        assert is_semi_acyclic(o.sigma)


class TestDatabases:
    def test_seed_database_covers_predicates(self):
        sigma = random_dependency_set(3, n_deps=5)
        db = seed_database(sigma)
        assert db.predicates() == set(sigma.predicates())
        assert db.is_database

    def test_sparse_database_nonempty(self):
        sigma = random_dependency_set(3, n_deps=5)
        db = sparse_database(sigma)
        assert len(db) >= 1
        assert db.predicates() <= set(sigma.predicates())


class TestRandomDeps:
    def test_reproducible(self):
        assert to_text(random_dependency_set(9)) == to_text(random_dependency_set(9))

    def test_requested_count_best_effort(self):
        sigma = random_dependency_set(5, n_deps=6)
        assert 1 <= len(sigma) <= 6

    def test_valid_dependencies(self):
        for seed in range(20):
            sigma = random_dependency_set(seed)
            sigma.predicates()  # arity consistency check
