"""Regression tests for the historical `adn_exists` divergence.

Seeds 36, 43 and 166 of ``random_dependency_set(n_deps=3,
egd_fraction=0.3)`` drove the adornment saturation into a livelock: each
driver round the EGD chase step over Dµ merged away the very symbols the
adornment step had just minted, so the state repeated forever *up to
ever-growing symbol numbers* — the record count never grew past the
``max_records`` cap and the ``max_symbol`` cap, once hit, flipped flags
without stopping the loop.  (Found by sweeping seeds 0–499 with a 5s
alarm; these three are the only divergent ones in that range.)

The fix is layered and these tests pin each layer:

* the livelock detector fingerprints the driver state with free symbols
  canonically renumbered and stops on the first repeat — it catches all
  three seeds within a handful of iterations;
* the run budget (steps + wall clock) is a backstop for divergence
  shapes the detector cannot see, and actually terminates the loop;
* the outcome is a *verdict*: ``acyclic=False, exact=False`` with the
  stop reason in ``stats`` — never an exception, never a hang.
"""

import time

import pytest

from repro.budget import Budget, Cancellation
from repro.core import adn_exists, is_semi_acyclic
from repro.core.adornment import AdornmentAlgorithm
from repro.generators import random_dependency_set

#: The divergent seeds found by the 0–499 sweep (5s alarm per seed).
DIVERGENT_SEEDS = [36, 43, 166]


def _divergent_sigma(seed):
    return random_dependency_set(seed, n_deps=3, egd_fraction=0.3)


class TestHistoricalDivergence:
    @pytest.mark.parametrize("seed", DIVERGENT_SEEDS)
    def test_returns_within_default_budget(self, seed):
        """The historical hang is now a fast, explicit non-exact verdict."""
        start = time.perf_counter()
        result = adn_exists(_divergent_sigma(seed))
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0  # the livelock detector fires in milliseconds
        assert not result.exact
        assert not result.acyclic  # conservative verdict, flagged approximate
        assert result.stats["stopped"] is not None

    @pytest.mark.parametrize("seed", DIVERGENT_SEEDS)
    def test_livelock_detector_fires_before_the_budget(self, seed):
        """All three historical seeds are livelocks: the state repeats up
        to a monotone renaming of the free symbols, and the detector sees
        it within a handful of driver iterations."""
        result = adn_exists(_divergent_sigma(seed))
        assert result.stats["stopped"] == "livelock"
        assert result.stats["iterations"] < 50
        assert result.exhausted is None  # detector, not budget

    @pytest.mark.parametrize("seed", DIVERGENT_SEEDS)
    def test_is_semi_acyclic_never_hangs(self, seed):
        assert is_semi_acyclic(_divergent_sigma(seed)) is False


class TestBudgetBackstop:
    def test_wall_clock_budget_stops_without_cycle_check(self):
        """With the livelock detector out of the picture (fingerprinting
        disabled via a subclass), the budget still terminates the run."""

        class NoDetector(AdornmentAlgorithm):
            def _state_fingerprint(self):
                NoDetector.counter += 1
                return NoDetector.counter  # never repeats

        NoDetector.counter = 0
        algo = NoDetector(
            _divergent_sigma(36), budget=Budget(max_ms=500)
        )
        start = time.perf_counter()
        result = algo.run()
        assert time.perf_counter() - start < 10.0
        assert not result.exact
        assert result.stats["stopped"] == "budget"
        assert result.exhausted is not None
        assert result.exhausted.dimension == "wall_ms"

    def test_step_budget_stops(self):
        algo = AdornmentAlgorithm(
            _divergent_sigma(43), budget=Budget(max_steps=2_000)
        )
        result = algo.run()
        assert not result.exact
        assert result.stats["stopped"] in ("budget", "livelock")

    def test_cancellation_stops(self):
        token = Cancellation()
        token.cancel()
        algo = AdornmentAlgorithm(
            _divergent_sigma(36), budget=Budget(cancellation=token)
        )
        result = algo.run()
        assert not result.exact
        assert result.exhausted is not None
        assert result.exhausted.dimension == "cancelled"


class TestConvergentRunsUnaffected:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 11, 19])
    def test_exact_verdicts_stay_exact(self, seed):
        result = adn_exists(_divergent_sigma(seed))
        assert result.exact
        assert result.stats["stopped"] is None
        assert result.exhausted is None
