"""The literal Algorithm 1's soundness corner (EXPERIMENTS.md finding 2).

``Dµ(Σµ)`` contains the all-bound fact for every predicate, so an adorned
EGD with a mixed body (functionality over ``R^{bb} ∧ R^{bf1}``) merges
``f1/b`` using a *hypothetical* database edge.  On databases without such
an edge the chase diverges although SAC accepts — these tests pin the
behaviour so any future deviation from the literal algorithm is a
conscious decision.
"""

from repro.chase import ExplorationVerdict, explore_chase, run_chase
from repro.chase.result import ChaseStatus
from repro.core import adn_exists, is_semi_acyclic
from repro.model import parse_dependencies, parse_facts


def functional_guard_sigma():
    return parse_dependencies(
        """
        r1: A(x) -> exists y. R(x, y) & B(y)
        r2: B(x) -> A(x)
        r3: R(x, y) & R(x, z) -> y = z
        """
    )


class TestFunctionalGuardCorner:
    def test_sac_accepts(self):
        # The literal Dµ analysis merges f1 into b via the hypothetical
        # R(b,b) fact, so Adn∃ reports acyclic.
        result = adn_exists(functional_guard_sigma())
        assert result.acyclic and result.exact

    def test_chase_diverges_without_edge(self):
        # On D = {A(a)} the functionality EGD never fires: every source
        # has exactly one successor, so the A/B cycle runs forever.
        sigma = functional_guard_sigma()
        db = parse_facts('A("a")')
        exploration = explore_chase(db, sigma, max_depth=10, max_states=5_000)
        assert exploration.terminating_paths == 0
        assert exploration.failing_paths == 0

    def test_single_edge_only_rescues_one_step(self):
        # Even with R(a,c) in the database, the merge only grounds the
        # FIRST null: the cycle continues from c, which has no second
        # R-edge, and diverges.  The Dµ reasoning would need a matching
        # edge for *every* A-element the chase ever reaches.
        sigma = functional_guard_sigma()
        db = parse_facts('A("a") R("a", "c")')
        result = run_chase(db, sigma, strategy="full_first", max_steps=300)
        assert result.status is ChaseStatus.EXCEEDED

    def test_semi_stratification_is_sound_here(self):
        # S-Str does NOT share the corner: condition (iv)'s defusal must
        # exhibit the defusing EGD step on the specific witness instance,
        # and the minimal witness K = {B(t)} contains no R-edge — so the
        # r2 → r1 edge survives and the non-WA cycle rejects Σ.
        from repro.core import is_semi_stratified

        sigma = functional_guard_sigma()
        assert not is_semi_stratified(sigma)
        assert is_semi_acyclic(sigma)  # the corner is specific to Dµ


class TestCornerDoesNotLeakToHonestSets:
    def test_sigma1_style_egd_is_genuinely_sound(self):
        # Σ1's reflexivising EGD fires on ANY E-edge, including the chase's
        # own atoms, so there the Dµ merge is justified on every database.
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )
        assert is_semi_acyclic(sigma)
        db = parse_facts('N("a")')
        exploration = explore_chase(db, sigma, max_depth=8, max_states=5_000)
        assert exploration.some_terminating

    def test_unguarded_cycle_still_rejected(self):
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y) & B(y)
            r2: B(x) -> A(x)
            """
        )
        assert not is_semi_acyclic(sigma)
