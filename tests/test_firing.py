"""Firing relation tests: ≺, <, chase graph, firing graph.

Figure 1 of the paper is the primary ground truth; additional cases pin
the defusal semantics (vacuous satisfaction, failing steps, saturation).
"""

from repro.data import (
    FIGURE1_CHASE_EDGES,
    FIGURE1_FIRING_EDGES,
    sigma_1,
    sigma_10,
    sigma_11,
)
from repro.firing import (
    FiringOracle,
    chase_graph,
    decide_fires,
    decide_precedes,
    edge_labels,
    firing_graph,
    oblivious_chase_graph,
    render_graph,
)
from repro.model import parse_dependencies, parse_dependency


class TestFigure1:
    def test_chase_graph_sigma11(self):
        assert edge_labels(chase_graph(sigma_11())) == FIGURE1_CHASE_EDGES

    def test_firing_graph_sigma11(self):
        assert edge_labels(firing_graph(sigma_11())) == FIGURE1_FIRING_EDGES

    def test_r2_r1_edge_defused(self):
        # The paper: "the edge in G(Σ11) from r2 to r1 does not belong to
        # Gf(Σ11), as the firing of r1 because of r2 is blocked by first
        # enforcing r3."
        s = sigma_11()
        r1, r2 = s[0], s[1]
        assert decide_precedes(r2, r1).edge
        assert not decide_fires(r2, r1, s.full).edge

    def test_render_graph_smoke(self):
        text = render_graph(chase_graph(sigma_11()), "chase graph")
        assert "r1" in text and "->" in text


class TestSigma1Firing:
    def test_egd_defuses_existential_edge(self):
        # Same analysis as Σ11 but with the EGD as the defuser.
        s = sigma_1()
        r1, r2 = s[0], s[1]
        assert decide_precedes(r2, r1).edge
        assert not decide_fires(r2, r1, s.full).edge

    def test_edges_into_full_targets_survive(self):
        s = sigma_1()
        edges = edge_labels(firing_graph(s))
        assert ("r1", "r2") in edges and ("r1", "r3") in edges


class TestSigma10Firing:
    def test_cycle_survives_defusal(self):
        # In Σ10 the EGD merges the two existential positions of the SAME
        # atom, so E(t, η, η) matches E(x,y,y) and r2 genuinely re-fires
        # r1: the full deps cannot defuse the r2 → r1 edge.
        s = sigma_10()
        r1, r2 = s[0], s[1]
        assert decide_fires(r2, r1, s.full).edge

    def test_egd_fires_full_tgd(self):
        s = sigma_10()
        r2, r3 = s[1], s[2]
        assert decide_fires(r3, r2, s.full).edge


class TestPrefilter:
    def test_tgd_needs_predicate_overlap(self):
        r1 = parse_dependency("A(x) -> B(x)")
        r2 = parse_dependency("C(x) -> D(x)")
        assert not decide_precedes(r1, r2).edge

    def test_self_firing_full_tgd(self):
        r = parse_dependency("E(x, y) -> E(y, x)")
        # E(b,a) from E(a,b) does not enable a NEW violated trigger whose
        # head is missing: the reverse of the new atom is the old atom.
        assert not decide_precedes(r, r).edge

    def test_transitivity_fires_itself(self):
        r = parse_dependency("E(x, y) & E(y, z) -> E(x, z)")
        assert decide_precedes(r, r).edge


class TestEGDFiring:
    def test_merge_creates_repeated_variable_match(self):
        egd = parse_dependency("E(x, y) -> x = y")
        r = parse_dependency("E(x, x) -> Q(x)")
        assert decide_precedes(egd, r).edge

    def test_merge_can_fire_unrelated_predicate(self):
        # The merged null may occur in any fact; K is free to contain it.
        egd = parse_dependency("E(x, y) -> x = y")
        r = parse_dependency("M(x) -> Q(x)")
        assert decide_precedes(egd, r).edge

    def test_egd_fires_egd(self):
        e1 = parse_dependency("E(x, y) -> x = y")
        e2 = parse_dependency("P(x, y) & P(x, z) -> y = z")
        # Merging can align the P-atoms' first arguments.
        assert decide_precedes(e1, e2).edge


class TestObliviousVariant:
    def test_oblivious_graph_has_more_edges(self):
        # The oblivious step drops the not-already-satisfied applicability
        # condition, so ≺_obl ⊇ ≺ on these sets.
        s = sigma_11()
        std = edge_labels(chase_graph(s))
        obl = edge_labels(oblivious_chase_graph(s))
        assert std <= obl
        # r1 ≺_obl r1 via nothing... r1's head E vs body N: still no
        # overlap; but the self-firing E(x,y)→∃z E(x,z) distinguishes:
        r = parse_dependency("E(x, y) -> exists z. E(x, z)")
        assert not decide_precedes(r, r, step_variant="standard").edge
        assert decide_precedes(r, r, step_variant="oblivious").edge


class TestOracle:
    def test_fireable(self):
        s = sigma_1()
        oracle = FiringOracle(s)
        r1, r2, r3 = s[0], s[1], s[2]
        assert oracle.fireable(r2)   # r1 < r2
        assert oracle.fireable(r3)   # r1 < r3
        assert not oracle.fireable(r1)  # both incoming edges defused

    def test_cache_stability(self):
        s = sigma_11()
        oracle = FiringOracle(s)
        r1, r2 = s[0], s[1]
        first = oracle.fires(r2, r1)
        second = oracle.fires(r2, r1)
        assert first == second == False  # noqa: E712 - explicit both-calls
