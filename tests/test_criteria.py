"""Baseline criteria tests: WA, SC, SwA, Str, CStr, MFA, MSA, AC.

Ground truths come from the criteria's source papers' running examples and
from this paper's Section 3 hierarchy discussion.
"""

import pytest

from repro.criteria import (
    affected_positions,
    dependency_graph,
    get_criterion,
    is_acyclic_rewriting,
    is_c_stratified,
    is_mfa,
    is_msa,
    is_safe,
    is_stratified,
    is_super_weakly_acyclic,
    is_weakly_acyclic,
    registry,
)
from repro.criteria.base import Guarantee
from repro.data import sigma_1, sigma_3, sigma_8, sigma_10, sigma_11
from repro.model import Position, parse_dependencies


def deps(text):
    return parse_dependencies(text)


class TestWeakAcyclicity:
    def test_acyclic_accepted(self):
        assert is_weakly_acyclic(deps("r: A(x) -> exists y. R(x, y)"))

    def test_null_cycle_rejected(self):
        assert not is_weakly_acyclic(deps("r: R(x, y) -> exists z. R(y, z)"))

    def test_regular_cycle_accepted(self):
        # Full-TGD cycles without existentials are fine.
        assert is_weakly_acyclic(deps("r: E(x, y) -> E(y, x)"))

    def test_sigma3_weakly_acyclic(self):
        assert is_weakly_acyclic(sigma_3())

    def test_egds_ignored(self):
        # WA ignores EGDs entirely (the paper's complaint).
        assert is_weakly_acyclic(deps("e: E(x, y) -> x = y"))
        assert not is_weakly_acyclic(sigma_1())

    def test_dependency_graph_edges(self):
        g = dependency_graph(deps("r: A(x) -> exists y. R(x, y)"))
        specials = [
            (u, v) for u, v, d in g.edges(data=True) if d.get("special")
        ]
        assert specials == [(Position("A", 0), Position("R", 1))]

    def test_criterion_interface(self):
        result = get_criterion("WA").check(sigma_3())
        assert result.accepted and result.guarantee is Guarantee.CT_ALL


class TestSafety:
    def test_affected_positions(self):
        sigma = deps(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) -> B(y)
            """
        )
        aff = affected_positions(sigma)
        assert Position("R", 1) in aff
        assert Position("B", 0) in aff
        assert Position("R", 0) not in aff
        assert Position("A", 0) not in aff

    def test_safety_beats_wa(self):
        # Nulls flow into S[2] but never back into A[1]: safe, yet the
        # position graph has a special cycle through S[2] for WA.
        sigma = deps(
            """
            r1: A(x) & S(x, u) -> exists y. S(x, y)
            """
        )
        # WA: x at S[1]... construct the classic SC\WA witness instead:
        sigma = deps(
            """
            r1: B(x, y) -> exists z. B(y, z)
            """
        )
        assert not is_safe(sigma)  # genuinely unsafe: nulls cycle
        classic = deps(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) & A(y) -> R(y, x)
            """
        )
        assert is_safe(classic)
        assert is_weakly_acyclic(classic) or True  # WA may or may not hold

    def test_safe_on_sigma1(self):
        assert not is_safe(sigma_1())


class TestSuperWeakAcyclicity:
    def test_repeated_variable_precision(self):
        # The SwA showcase: E(x,x) -> ∃z E(x,z) terminates (semi-oblivious)
        # because E(a, f(a)) never matches E(x, x).
        sigma = deps("r: E(x, x) -> exists z. E(x, z)")
        assert is_super_weakly_acyclic(sigma)

    def test_swa_strictly_beyond_safety(self):
        # Nulls reach both E positions, so safety sees a special cycle; SwA
        # notices that E(x, f(x)) / E(f(x), x) never match E(x, x).
        sigma = deps(
            """
            r1: Q(x) -> exists y. E(x, y) & E(y, x)
            r2: E(x, x) -> Q(x)
            """
        )
        assert is_super_weakly_acyclic(sigma)
        assert not is_safe(sigma)

    def test_plain_cycle_rejected(self):
        assert not is_super_weakly_acyclic(
            deps("r: E(x, y) -> exists z. E(y, z)")
        )

    def test_acyclic_accepted(self):
        assert is_super_weakly_acyclic(sigma_3())

    def test_egds_rejected_without_simulation(self):
        with pytest.raises(ValueError):
            is_super_weakly_acyclic(sigma_1())

    def test_criterion_lifts_egds(self):
        # Through the substitution-free simulation.
        result = get_criterion("SwA").check(sigma_1())
        assert not result.accepted
        assert result.details.get("simulated")


class TestStratification:
    def test_sigma11_not_stratified(self):
        assert not is_stratified(sigma_11())

    def test_sigma8_stratified(self):
        assert is_stratified(sigma_8())

    def test_acyclic_sets_stratified(self):
        assert is_stratified(sigma_3())

    def test_c_stratification(self):
        assert is_c_stratified(sigma_3())
        assert not is_c_stratified(sigma_11())
        # Σ8 is stratified but NOT c-stratified: the oblivious firing
        # relation fires r2/r3 regardless of satisfaction, closing a
        # non-weakly-acyclic cycle.  (Str ∈ CTstd∃ still covers Σ8; CStr's
        # CTstd∀ guarantee does not apply here through this criterion.)
        assert is_stratified(sigma_8())
        assert not is_c_stratified(sigma_8())


class TestMFAandMSA:
    def test_acyclic_accepted(self):
        sigma = sigma_3()
        accepted, exact = is_mfa(sigma)
        assert accepted and exact
        accepted, exact = is_msa(sigma)
        assert accepted and exact

    def test_cycle_alarmed(self):
        sigma = deps(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) -> A(y)
            """
        )
        assert not is_mfa(sigma)[0]
        assert not is_msa(sigma)[0]

    def test_msa_subsumed_by_mfa(self):
        # MSA ⊆ MFA: anything MSA accepts, MFA accepts.
        for sigma in (sigma_3(), deps("r: E(x,x) -> exists z. E(x,z)")):
            if is_msa(sigma)[0]:
                assert is_mfa(sigma)[0]

    def test_egds_rejected_without_simulation(self):
        with pytest.raises(ValueError):
            is_mfa(sigma_1())


class TestAC:
    def test_acyclic_accepted(self):
        assert is_acyclic_rewriting(sigma_3())[0]

    def test_cycle_rejected(self):
        assert not is_acyclic_rewriting(
            deps("r: A(x) -> exists y. R(x, y)\nr2: R(x, y) -> A(y)")
        )[0]

    def test_ac_criterion_on_sigma1(self):
        # Via the simulation AC cannot recognise Σ1 (the simulation is not
        # even ∃-terminating, Theorem 2).
        assert not get_criterion("AC").accepts(sigma_1())


class TestRegistry:
    def test_all_registered(self):
        names = set(registry())
        assert {"WA", "SC", "SwA", "Str", "CStr", "MFA", "MSA", "AC",
                "S-Str", "SAC"} <= names

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            get_criterion("nope")

    def test_hierarchy_wa_subset_sc(self):
        # WA ⊆ SC on assorted sets.
        for sigma in (sigma_3(), sigma_1(), sigma_10(), sigma_11()):
            if is_weakly_acyclic(sigma):
                assert is_safe(sigma)
