"""The backend-equivalence contract: sqlite ≡ jsonl, record for record.

The JSONL log is the reference semantics ("the log is the truth, later
writes win"); the sqlite backend is an indexed representation of exactly
the same store.  These tests run the real batch engine against both
backends over one corpus and pin:

* cold runs produce verdict-identical ``BatchReport``s (timing aside —
  two cold runs measure different wall clocks);
* warm runs are byte-identical to their own cold runs *and* to each
  other's payloads;
* the persisted artifact layer (firing decisions are deterministic) is
  byte-identical across backends via the JSONL export;
* a legacy JSONL directory opened under the sqlite backend migrates
  itself and serves a fully warm rerun;
* export → import round-trips between backends without loss, and the
  export is a fixpoint (export ∘ import ∘ export is the identity).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.batch import ArtifactStore, BatchConfig, ResultCache, evaluate_corpus
from repro.generators import generate_corpus
from repro.store import export_jsonl, import_jsonl


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(scale=0.03, tests_scale=0.05, max_size=15)


def run(corpus, tmp_path, store, **kwargs):
    kwargs.setdefault("chase_steps", 300)
    return evaluate_corpus(
        corpus, BatchConfig(cache_dir=tmp_path, store=store, **kwargs)
    )


def _strip_timings(value):
    """Drop measured wall-clocks (``*_ms``) at every nesting level."""
    if isinstance(value, dict):
        return {
            k: _strip_timings(v)
            for k, v in value.items()
            if not k.endswith("_ms")
        }
    if isinstance(value, list):
        return [_strip_timings(v) for v in value]
    return value


def payloads(report):
    """The timing-free projection two independent runs must agree on."""
    return [
        (r.name, r.key, _strip_timings(r.record["data"]), r.exhausted)
        for r in report.results
    ]


class TestReportEquivalence:
    def test_cold_reports_agree_in_evaluate_mode(self, corpus, tmp_path):
        sq = run(corpus, tmp_path / "sq", "sqlite")
        js = run(corpus, tmp_path / "js", "jsonl")
        assert payloads(sq) == payloads(js)
        assert [
            _strip_timings(dataclasses.asdict(e)) for e in sq.evaluations()
        ] == [_strip_timings(dataclasses.asdict(e)) for e in js.evaluations()]

    def test_warm_reports_are_identical_across_backends(self, corpus, tmp_path):
        cold_sq = run(corpus, tmp_path / "sq", "sqlite")
        cold_js = run(corpus, tmp_path / "js", "jsonl")
        warm_sq = run(corpus, tmp_path / "sq", "sqlite")
        warm_js = run(corpus, tmp_path / "js", "jsonl")
        assert warm_sq.computed == 0 and warm_js.computed == 0
        assert warm_sq.hits == warm_js.hits
        assert warm_sq.deduplicated == warm_js.deduplicated
        # Each warm run serves its cold run's records verbatim …
        assert [r.record for r in warm_sq.results] == [
            r.record for r in cold_sq.results
        ]
        assert [r.record for r in warm_js.results] == [
            r.record for r in cold_js.results
        ]
        # … so across backends only the measured timings may differ.
        assert payloads(warm_sq) == payloads(warm_js)

    def test_classify_mode_artifacts_are_byte_identical(self, corpus, tmp_path):
        # Chase-probe-backed criteria, so firing decisions are recorded.
        cfg = dict(mode="classify", criteria=["SR", "IR"])
        run(corpus[:6], tmp_path / "sq", "sqlite", **cfg)
        run(corpus[:6], tmp_path / "js", "jsonl", **cfg)
        # Firing decisions are deterministic, so the artifact layer must
        # agree record for record — the export renders both backends to
        # the same normal form.
        _, sq_artifacts, _ = export_jsonl(
            ResultCache(tmp_path / "sq"),
            ArtifactStore(tmp_path / "sq"),
        )
        _, js_artifacts, _ = export_jsonl(
            ResultCache(tmp_path / "js", backend="jsonl"),
            ArtifactStore(tmp_path / "js", backend="jsonl"),
        )
        assert sq_artifacts == js_artifacts
        assert sq_artifacts  # non-vacuous: decisions were recorded


class TestMigration:
    def test_legacy_jsonl_directory_self_migrates(self, corpus, tmp_path):
        cold = run(corpus, tmp_path, "jsonl")
        assert cold.computed > 0
        # Same directory, sqlite backend: first open imports the log.
        cache = ResultCache(tmp_path, backend="sqlite")
        assert cache.stats.imported == len(cache)
        assert cache.stats.imported > 0
        cache.close()
        warm = run(corpus, tmp_path, "sqlite")
        assert warm.computed == 0
        assert payloads(warm) == payloads(cold)

    def test_migration_does_not_rerun_on_reopen(self, corpus, tmp_path):
        run(corpus[:4], tmp_path, "jsonl")
        first = ResultCache(tmp_path, backend="sqlite")
        imported = first.stats.imported
        assert imported > 0
        first.close()
        again = ResultCache(tmp_path, backend="sqlite")
        assert again.stats.imported == 0
        assert again.stats.loaded == imported


class TestPortRoundTrip:
    def test_export_import_preserves_every_record(self, corpus, tmp_path):
        cfg = dict(mode="classify", criteria=["SR", "IR"])
        run(corpus[:6], tmp_path / "src", "sqlite", **cfg)
        src_cache = ResultCache(tmp_path / "src")
        src_store = ArtifactStore(tmp_path / "src")
        results_text, artifacts_text, exported = export_jsonl(
            src_cache, src_store
        )
        dst_cache = ResultCache(tmp_path / "dst", backend="jsonl")
        dst_store = ArtifactStore(tmp_path / "dst", backend="jsonl")
        imported = import_jsonl(
            dst_cache, results_text, dst_store, artifacts_text
        )
        assert exported.artifacts > 0  # non-vacuous on the artifact side
        assert imported.results == exported.results
        assert imported.artifacts == exported.artifacts
        assert imported.skipped == 0
        # The imported store warms a rerun exactly like the original.
        warm = run(corpus[:6], tmp_path / "dst", "jsonl", **cfg)
        assert warm.computed == 0

    def test_export_is_a_fixpoint(self, corpus, tmp_path):
        run(corpus[:5], tmp_path / "src", "sqlite",
            mode="classify", criteria=["SR", "IR"])
        results_text, artifacts_text, _ = export_jsonl(
            ResultCache(tmp_path / "src"), ArtifactStore(tmp_path / "src")
        )
        dst_cache = ResultCache(tmp_path / "dst", backend="jsonl")
        dst_store = ArtifactStore(tmp_path / "dst", backend="jsonl")
        import_jsonl(dst_cache, results_text, dst_store, artifacts_text)
        again_results, again_artifacts, _ = export_jsonl(dst_cache, dst_store)
        assert again_results == results_text
        assert again_artifacts == artifacts_text

    def test_import_skips_stale_and_torn_lines(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        text = (
            '{"schema": 999, "key": "old", "params": "p", "record": {}}\n'
            '{"schema": 1, "key": "good", "params": "p", "record": {"x": 1}}\n'
            '{"schema": 1, "key": "torn'
        )
        report = import_jsonl(cache, text)
        assert report.results == 1
        assert report.skipped == 2
        assert cache.get("good", "p") == {"x": 1}
