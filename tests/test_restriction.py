"""SR / IR criteria tests (Section 3: CStr ⊊ SR ⊊ IR)."""

from repro.criteria import (
    get_criterion,
    is_c_stratified,
    is_inductively_restricted,
    is_safely_restricted,
)
from repro.data import sigma_1, sigma_3, sigma_10, sigma_11
from repro.model import parse_dependencies


class TestSafeRestriction:
    def test_easy_sets_accepted(self):
        assert is_safely_restricted(sigma_3())[0]

    def test_ct_exists_only_sets_rejected(self):
        # SR guarantees CTstd∀, so Σ1 and Σ11 must be rejected.
        assert not is_safely_restricted(sigma_1())[0]
        assert not is_safely_restricted(sigma_11())[0]
        assert not is_safely_restricted(sigma_10())[0]

    def test_cstr_subset_sr(self):
        sets = [
            sigma_3(),
            parse_dependencies("r: A(x) -> B(x)"),
            parse_dependencies(
                "r1: A(x) -> exists y. R(x, y)\nr2: R(x, y) & B(y) -> A(y)"
            ),
        ]
        for sigma in sets:
            if is_c_stratified(sigma):
                assert is_safely_restricted(sigma)[0]

    def test_sr_beyond_cstr(self):
        # The cycle is safe but not weakly acyclic: the guard position is
        # never affected, so nulls cannot cycle, but WA's position graph
        # has the special cycle.  CStr rejects, SR accepts.
        sigma = parse_dependencies(
            """
            r1: A(x) & G(x) -> exists y. R(x, y)
            r2: R(x, y) -> A(y)
            """
        )
        assert not is_c_stratified(sigma)
        assert is_safely_restricted(sigma)[0]


class TestInductiveRestriction:
    def test_sr_subset_ir(self):
        for sigma in (sigma_3(), sigma_1(), sigma_11(), sigma_10()):
            if is_safely_restricted(sigma)[0]:
                assert is_inductively_restricted(sigma)[0]

    def test_registered(self):
        assert get_criterion("SR").accepts(sigma_3())
        assert get_criterion("IR").accepts(sigma_3())
        assert not get_criterion("IR").accepts(sigma_10())
