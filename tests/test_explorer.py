"""Chase sequence explorer tests (bounded exhaustive nondeterminism)."""

from repro.chase import ExplorationVerdict, canonical_key, explore_chase
from repro.model import Atom, Constant, Instance, Null, parse_dependencies, parse_facts

a, b = Constant("a"), Constant("b")


class TestCanonicalKey:
    def test_isomorphic_instances_same_key(self):
        i1 = Instance([Atom("E", (a, Null(1))), Atom("E", (Null(1), Null(2)))])
        i2 = Instance([Atom("E", (a, Null(7))), Atom("E", (Null(7), Null(5)))])
        assert canonical_key(i1) == canonical_key(i2)

    def test_non_isomorphic_distinct(self):
        i1 = Instance([Atom("E", (a, Null(1)))])
        i2 = Instance([Atom("E", (Null(1), a))])
        assert canonical_key(i1) != canonical_key(i2)

    def test_ground_instances(self):
        i1 = parse_facts('E("a","b")')
        i2 = parse_facts('E("a","b")')
        assert canonical_key(i1) == canonical_key(i2)

    def test_many_nulls_fallback(self):
        # Past the permutation cap the greedy relabeling still produces a
        # deterministic key.
        facts = [Atom("E", (Null(i), Null(i + 1))) for i in range(1, 10)]
        assert canonical_key(Instance(facts)) == canonical_key(Instance(facts))


class TestExploration:
    def test_sigma1_some_terminating(self):
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )
        db = parse_facts('N("a")')
        result = explore_chase(db, sigma, max_depth=8, max_states=5_000)
        assert result.verdict is ExplorationVerdict.SOME_TERMINATING
        assert result.terminating_paths >= 1
        assert result.capped_paths >= 1  # the r1/r2 alternation

    def test_all_terminating(self):
        sigma = parse_dependencies("r: A(x) -> B(x)")
        db = parse_facts('A("a")')
        result = explore_chase(db, sigma, max_depth=5)
        assert result.verdict is ExplorationVerdict.ALL_TERMINATING

    def test_none_found(self):
        # Σ10: no terminating standard sequence exists (Example 10).
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y, z. E(x, y, z)
            r2: E(x, y, y) -> N(y)
            r3: E(x, y, z) -> y = z
            """
        )
        db = parse_facts('N("a")')
        result = explore_chase(db, sigma, max_depth=9, max_states=8_000)
        assert result.verdict is ExplorationVerdict.NONE_FOUND
        assert result.terminating_paths == 0

    def test_failing_paths_count_as_terminating(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        db = parse_facts('E("a", "b")')
        result = explore_chase(db, sigma, max_depth=3)
        assert result.failing_paths == 1
        assert result.some_terminating

    def test_oblivious_exploration(self):
        # Σ6 under the oblivious chase has no terminating sequence.
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = explore_chase(
            db, sigma, variant="oblivious", max_depth=6, max_states=2_000
        )
        assert result.terminating_paths == 0

    def test_semi_oblivious_exploration(self):
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = explore_chase(
            db, sigma, variant="semi_oblivious", max_depth=6, max_states=2_000
        )
        assert result.verdict is ExplorationVerdict.ALL_TERMINATING


class TestCanonicalKeyColourRefinement:
    """The colour-refined canonical key (DESIGN.md §5 / ISSUE 4 satellite):
    isomorphic states beyond the old 6-null permutation cap must merge."""

    @staticmethod
    def _cycle(labels):
        """E-facts forming a directed cycle over ``Null(l)`` for l in labels."""
        return [
            Atom("E", (Null(labels[i]), Null(labels[(i + 1) % len(labels)])))
            for i in range(len(labels))
        ]

    @staticmethod
    def _legacy_greedy_key(facts_in_order):
        """The seed's >cap fallback: facts sorted by null-blind shape (a
        tie for every fact here — the explicit input order stands in for
        the set-iteration order the seed depended on), nulls relabeled by
        first occurrence."""
        relabel = {}
        for f in facts_in_order:
            for t in f.args:
                if isinstance(t, Null) and t not in relabel:
                    relabel[t] = len(relabel)
        key = []
        for f in facts_in_order:
            key.append(
                (f.predicate,)
                + tuple(
                    ("η", relabel[t]) if isinstance(t, Null) else ("c", str(t))
                    for t in f.args
                )
            )
        return tuple(sorted(key))

    def test_legacy_fallback_is_order_sensitive(self):
        # Eight nulls — past the old PERMUTATION_CAP — in a single cycle.
        # Walking the cycle vs interleaving opposite edges are two
        # set-iteration orders of the *same* instance, yet the legacy
        # first-occurrence relabeling keys them differently: the very
        # failure mode that made isomorphic states fail to merge.
        facts = self._cycle([1, 2, 3, 4, 5, 6, 7, 8])
        walk = facts
        interleaved = [facts[0], facts[4], facts[1], facts[5], facts[2], facts[6], facts[3], facts[7]]
        assert self._legacy_greedy_key(walk) != self._legacy_greedy_key(interleaved)

    def test_isomorphic_eight_null_states_merge(self):
        # The same 8-cycle under a scrambled null labelling: the legacy
        # relabeling (above) could key these apart; the colour-refined
        # canonical key must not.
        i1 = Instance(self._cycle([1, 2, 3, 4, 5, 6, 7, 8]))
        i2 = Instance(self._cycle([31, 17, 25, 12, 40, 23, 9, 38]))
        assert canonical_key(i1) == canonical_key(i2)

    def test_isomorphic_states_with_anchors_merge(self):
        # An asymmetric 9-null structure (anchored chain + spokes): colour
        # refinement separates every null, so the key is exact with a
        # single relabeling.
        def build(perm):
            n = [None] + [Null(p) for p in perm]
            facts = [Atom("S", (a, n[1]))]
            facts += [Atom("E", (n[i], n[i + 1])) for i in range(1, 9)]
            facts += [Atom("M", (n[3],)), Atom("M", (n[7],))]
            return Instance(facts)

        i1 = build(range(1, 10))
        i2 = build([14, 3, 77, 20, 5, 61, 8, 42, 19])
        assert canonical_key(i1) == canonical_key(i2)

    def test_wl_hard_pair_stays_distinct(self):
        # C8 vs C4 ⊎ C4: colour refinement alone cannot tell these apart
        # (the classic 1-WL-hard pair) — soundness must come from the key
        # being the *whole* relabeled fact set, not the colours.
        c8 = Instance(self._cycle([1, 2, 3, 4, 5, 6, 7, 8]))
        c44 = Instance(self._cycle([1, 2, 3, 4]) + self._cycle([5, 6, 7, 8]))
        assert canonical_key(c8) != canonical_key(c44)


class TestSnapshotBackendDifferential:
    """Savepoint-backed DFS vs copy-backed DFS: byte-identical results."""

    def _assert_identical(self, db, sigma, variant, **kw):
        before = db.facts()
        r_sp = explore_chase(db, sigma, variant=variant, snapshots="savepoint", **kw)
        r_cp = explore_chase(db, sigma, variant=variant, snapshots="copy", **kw)
        assert r_sp == r_cp
        assert db.facts() == before  # neither backend mutates the input
        return r_sp

    def test_differential_on_witness_cases(self):
        from repro.data.witnesses import witness_cases

        for case in witness_cases():
            for variant in ("standard", "oblivious", "semi_oblivious"):
                self._assert_identical(
                    case.database, case.sigma, variant,
                    max_depth=6, max_states=400,
                )

    def test_differential_on_random_programs(self):
        from repro.generators.random_deps import random_dependency_set
        from repro.generators.databases import seed_database

        for seed in range(12):
            sigma = random_dependency_set(seed)
            db = seed_database(sigma)
            for variant in ("standard", "oblivious", "semi_oblivious"):
                self._assert_identical(
                    db, sigma, variant, max_depth=4, max_states=250,
                )

    def test_unknown_backend_rejected(self):
        import pytest

        sigma = parse_dependencies("r: A(x) -> B(x)")
        with pytest.raises(ValueError):
            explore_chase(parse_facts('A("a")'), sigma, snapshots="fork")
