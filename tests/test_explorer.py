"""Chase sequence explorer tests (bounded exhaustive nondeterminism)."""

from repro.chase import ExplorationVerdict, canonical_key, explore_chase
from repro.model import Atom, Constant, Instance, Null, parse_dependencies, parse_facts

a, b = Constant("a"), Constant("b")


class TestCanonicalKey:
    def test_isomorphic_instances_same_key(self):
        i1 = Instance([Atom("E", (a, Null(1))), Atom("E", (Null(1), Null(2)))])
        i2 = Instance([Atom("E", (a, Null(7))), Atom("E", (Null(7), Null(5)))])
        assert canonical_key(i1) == canonical_key(i2)

    def test_non_isomorphic_distinct(self):
        i1 = Instance([Atom("E", (a, Null(1)))])
        i2 = Instance([Atom("E", (Null(1), a))])
        assert canonical_key(i1) != canonical_key(i2)

    def test_ground_instances(self):
        i1 = parse_facts('E("a","b")')
        i2 = parse_facts('E("a","b")')
        assert canonical_key(i1) == canonical_key(i2)

    def test_many_nulls_fallback(self):
        # Past the permutation cap the greedy relabeling still produces a
        # deterministic key.
        facts = [Atom("E", (Null(i), Null(i + 1))) for i in range(1, 10)]
        assert canonical_key(Instance(facts)) == canonical_key(Instance(facts))


class TestExploration:
    def test_sigma1_some_terminating(self):
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )
        db = parse_facts('N("a")')
        result = explore_chase(db, sigma, max_depth=8, max_states=5_000)
        assert result.verdict is ExplorationVerdict.SOME_TERMINATING
        assert result.terminating_paths >= 1
        assert result.capped_paths >= 1  # the r1/r2 alternation

    def test_all_terminating(self):
        sigma = parse_dependencies("r: A(x) -> B(x)")
        db = parse_facts('A("a")')
        result = explore_chase(db, sigma, max_depth=5)
        assert result.verdict is ExplorationVerdict.ALL_TERMINATING

    def test_none_found(self):
        # Σ10: no terminating standard sequence exists (Example 10).
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y, z. E(x, y, z)
            r2: E(x, y, y) -> N(y)
            r3: E(x, y, z) -> y = z
            """
        )
        db = parse_facts('N("a")')
        result = explore_chase(db, sigma, max_depth=9, max_states=8_000)
        assert result.verdict is ExplorationVerdict.NONE_FOUND
        assert result.terminating_paths == 0

    def test_failing_paths_count_as_terminating(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        db = parse_facts('E("a", "b")')
        result = explore_chase(db, sigma, max_depth=3)
        assert result.failing_paths == 1
        assert result.some_terminating

    def test_oblivious_exploration(self):
        # Σ6 under the oblivious chase has no terminating sequence.
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = explore_chase(
            db, sigma, variant="oblivious", max_depth=6, max_states=2_000
        )
        assert result.terminating_paths == 0

    def test_semi_oblivious_exploration(self):
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = explore_chase(
            db, sigma, variant="semi_oblivious", max_depth=6, max_states=2_000
        )
        assert result.verdict is ExplorationVerdict.ALL_TERMINATING
