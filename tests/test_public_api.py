"""Public-API surface tests: imports, __all__ hygiene, version."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.model",
    "repro.homomorphism",
    "repro.chase",
    "repro.firing",
    "repro.criteria",
    "repro.simulation",
    "repro.core",
    "repro.generators",
    "repro.analysis",
    "repro.batch",
    "repro.data",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", MODULES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    for entry in getattr(mod, "__all__", []):
        assert hasattr(mod, entry), f"{name}.__all__ lists missing {entry}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_registry_contains_all_criteria():
    from repro.criteria import registry

    assert set(registry()) == {
        "WA", "SC", "SwA", "AC", "LS", "MSA", "MFA", "CStr", "SR", "IR",
        "Str", "S-Str", "SAC",
    }


def test_top_level_workflow():
    """The README quickstart, verbatim."""
    from repro import classify, parse_dependencies, parse_facts, run_chase

    sigma = parse_dependencies(
        """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> x = y
        """
    )
    report = classify(sigma)
    assert "SAC" in report.accepted_by
    result = run_chase(parse_facts('N("a")'), sigma, strategy="full_first")
    assert result.successful
