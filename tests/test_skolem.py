"""Skolemisation and Skolem-chase saturation tests."""

import pytest

from repro.chase.skolem import (
    SkolemTerm,
    critical_instance,
    saturate,
    skolemise,
)
from repro.model import Constant, parse_dependencies, parse_facts


class TestSkolemTerm:
    def test_interning(self):
        a = Constant("a")
        assert SkolemTerm("f", (a,)) is SkolemTerm("f", (a,))

    def test_nesting_and_depth(self):
        a = Constant("a")
        t1 = SkolemTerm("f", (a,))
        t2 = SkolemTerm("g", (t1,))
        assert t2.depth() == 2
        assert t1.depth() == 1

    def test_cyclic_detection(self):
        a = Constant("a")
        f_a = SkolemTerm("f", (a,))
        g_f = SkolemTerm("g", (f_a,))
        f_g_f = SkolemTerm("f", (g_f,))
        assert not f_a.is_cyclic
        assert not g_f.is_cyclic
        assert f_g_f.is_cyclic  # f occurs inside its own argument


class TestSkolemise:
    def test_oblivious_uses_all_body_vars(self):
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        [rule] = skolemise(sigma, variant="oblivious")
        (_, _, args) = rule.functors[0]
        assert [v.name for v in args] == ["x", "y"]

    def test_semi_oblivious_uses_frontier(self):
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        [rule] = skolemise(sigma, variant="semi_oblivious")
        (_, _, args) = rule.functors[0]
        assert [v.name for v in args] == ["x"]

    def test_egds_rejected(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        with pytest.raises(ValueError):
            skolemise(sigma)


class TestSaturation:
    def test_terminating_fixpoint(self):
        sigma = parse_dependencies("r: A(x) -> exists y. R(x, y)")
        rules = skolemise(sigma)
        result = saturate(parse_facts('A("a")'), rules)
        assert result.saturated and not result.alarmed
        assert len(result.instance) == 2

    def test_cyclic_alarm(self):
        # A(x) -> ∃y R(x,y);  R(x,y) -> A(y): f nests inside f.
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) -> A(y)
            """
        )
        rules = skolemise(sigma)
        result = saturate(parse_facts('A("a")'), rules)
        assert result.alarmed
        assert result.cyclic_term is not None and result.cyclic_term.is_cyclic

    def test_repeated_variable_blocks_refiring(self):
        # E(x,x) -> ∃z E(x,z): the new fact never matches the body again.
        sigma = parse_dependencies("r: E(x, x) -> exists z. E(x, z)")
        rules = skolemise(sigma)
        result = saturate(parse_facts('E("a","a")'), rules)
        assert result.saturated and not result.alarmed


class TestCriticalInstance:
    def test_star_facts(self):
        sigma = parse_dependencies("r: A(x) -> exists y. R(x, y)")
        inst = critical_instance(sigma)
        preds = {f.predicate for f in inst}
        assert preds == {"A", "R"}
        star = Constant("*")
        assert all(star in f.args for f in inst)

    def test_constants_included(self):
        sigma = parse_dependencies('r: A(x) -> B(x, "c")')
        inst = critical_instance(sigma)
        assert any(Constant("c") in f.args for f in inst)
