"""Unit tests for terms: interning, immutability, factories."""

import pickle

import pytest

from repro.model import Constant, Null, NullFactory, Variable, constants, fresh_null, variables


class TestInterning:
    def test_constants_interned(self):
        assert Constant("a") is Constant("a")
        assert Constant(1) is Constant(1)

    def test_distinct_constants(self):
        assert Constant("a") is not Constant("b")
        assert Constant("1") is not Constant(1)

    def test_nulls_interned(self):
        assert Null(3) is Null(3)
        assert Null(3) is not Null(4)

    def test_variables_interned(self):
        assert Variable("x") is Variable("x")
        assert Variable("x") is not Variable("y")

    def test_cross_kind_distinct(self):
        # Same payload, different sorts: never equal.
        assert Constant("x") != Variable("x")
        assert Null(1) != Constant(1)


class TestImmutability:
    def test_constant_frozen(self):
        with pytest.raises(AttributeError):
            Constant("a").value = "b"

    def test_null_frozen(self):
        with pytest.raises(AttributeError):
            Null(1).label = 2

    def test_variable_frozen(self):
        with pytest.raises(AttributeError):
            Variable("x").name = "y"


class TestKinds:
    def test_kind_flags(self):
        assert Constant("a").is_constant
        assert not Constant("a").is_null
        assert Null(1).is_null
        assert not Null(1).is_variable
        assert Variable("x").is_variable
        assert not Variable("x").is_constant


class TestFactories:
    def test_null_factory_sequence(self):
        f = NullFactory(start=5)
        assert f.fresh() is Null(5)
        assert f.fresh() is Null(6)

    def test_fresh_many(self):
        f = NullFactory(start=1)
        ns = f.fresh_many(3)
        assert [n.label for n in ns] == [1, 2, 3]

    def test_global_fresh_null_distinct(self):
        assert fresh_null() is not fresh_null()

    def test_variables_helper(self):
        x, y, z = variables("x y z")
        assert x is Variable("x") and z is Variable("z")

    def test_constants_helper(self):
        a, b = constants("a b")
        assert a is Constant("a") and b is Constant("b")


class TestSerialisation:
    def test_pickle_roundtrip_preserves_interning(self):
        for t in (Constant("a"), Null(7), Variable("v")):
            assert pickle.loads(pickle.dumps(t)) is t


class TestDisplay:
    def test_str_forms(self):
        assert str(Constant("a")) == '"a"'
        assert str(Constant(3)) == "3"
        assert str(Null(2)) == "η2"
        assert str(Variable("x")) == "x"
