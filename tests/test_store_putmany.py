"""put_many ≡ looped put, record for record, on both store backends.

The batched write path is a pure representation optimisation: one
transaction (sqlite) or one fsync (jsonl) per batch instead of per
record.  These tests pin that the two paths are indistinguishable to
every reader — same entries, same last-write-wins resolution, same
write order — and that the ``stats()`` hook reports the observable
store state on both backends.
"""

from __future__ import annotations

import pytest

from repro.batch.cache import ResultCache

BACKENDS = ("sqlite", "jsonl")


def fill_looped(cache, items):
    for key, params, record in items:
        cache.put(key, params, record)


def fill_batched(cache, items):
    cache.put_many(list(items))


def sample_items(n=12):
    items = [
        (f"{i:02d}" * 8, f"params-{i % 3}", {"data": {"verdict": f"v{i}"}})
        for i in range(n)
    ]
    # Duplicate keys inside one batch: last write must win, exactly as
    # it does when the same sequence goes through put one at a time.
    items.append((items[0][0], "params-x", {"data": {"verdict": "rewritten"}}))
    return items


@pytest.mark.parametrize("backend", BACKENDS)
class TestPutManyEquivalence:
    def test_entries_identical_to_looped_put(self, tmp_path, backend):
        items = sample_items()
        with ResultCache(tmp_path / "loop", backend=backend) as loop:
            fill_looped(loop, items)
            looped = loop.entries()
        with ResultCache(tmp_path / "batch", backend=backend) as batch:
            fill_batched(batch, items)
            batched = batch.entries()
        assert [e for _, e in looped] == [e for _, e in batched]
        assert len(batched) == len(items) - 1  # the rewrite collapsed

    def test_reload_sees_batched_writes(self, tmp_path, backend):
        items = sample_items()
        with ResultCache(tmp_path, backend=backend) as cache:
            cache.put_many(items)
        with ResultCache(tmp_path, backend=backend) as cache:
            assert len(cache) == len(items) - 1
            key, params, record = items[-1]
            assert cache.get(key, params) == record
            for key, params, record in items[1:-1]:
                assert cache.get(key, params) == record

    def test_empty_batch_is_a_noop(self, tmp_path, backend):
        with ResultCache(tmp_path, backend=backend) as cache:
            cache.put_many([])
            assert len(cache) == 0

    def test_get_after_put_many_counts_hits(self, tmp_path, backend):
        items = sample_items(4)[:4]
        with ResultCache(tmp_path, backend=backend) as cache:
            cache.put_many(items)
            for key, params, record in items:
                assert cache.get(key, params) == record
            assert cache.stats.hits == 4
            assert cache.get("absent" * 8, "p") is None
            assert cache.stats.misses == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestStats:
    def test_stats_snapshot_shape(self, tmp_path, backend):
        items = sample_items(5)[:5]
        with ResultCache(tmp_path, backend=backend) as cache:
            cache.put_many(items)
            cache.get(items[0][0], items[0][1])
            cache.get("absent" * 8, "p")
            snap = cache.stats_snapshot()
        assert snap["entries"] == 5
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        store = snap["store"]
        assert store["backend"] == backend
        assert store["tables"]["results"] == 5
        assert store["file_bytes"] > 0
        if backend == "jsonl":
            assert store["wal_bytes"] is None
        else:
            assert isinstance(store["wal_bytes"], int)
