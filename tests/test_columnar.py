"""ColumnarInstance contract tests (DESIGN.md §10).

The columnar fact store must honour the full ``Instance`` contract:
value-equality, add/discard/merge_terms, the savepoint/rollback/release
undo log in O(changes), the delta log with both the ``Atom`` boundary
(``added_since``) and the zero-materialisation row-handle surface
(``added_rows_since``/``row_live``).  The randomized sections mirror
every operation on a plain ``Instance`` and compare observable state
after each step — the same differential style the transactional suite
uses for savepoints.

The metamorphic half extends the tid-churn suite: canonical keys stay
tid-free (burning the interned-term counter between builds changes
nothing), and savepoint/rollback round-trips restore columns, bitmap,
index, rowmap *and* tick exactly under counter churn.

The ISSUE 10 sections cover the typed-buffer rebuild (DESIGN.md §11):
copy-on-write forks (children share segments until first write, never
mutate the parent's, survive the parent's rollback), threshold
compaction on fork, random nested-savepoint/fork scripts held against
the list-backed ``Instance`` reference, and the vectorised kernels —
pure-Python vs numpy on random inputs, and the generated vector branch
vs the inline scalar loop through the same compiled plans.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.chase import canonical_key
from repro.model import Atom, ColumnarInstance, Constant, Instance, Null
from repro.model import kernels

a, b, c = Constant("a"), Constant("b"), Constant("c")


def sample_facts():
    return [
        Atom("E", (a, b)),
        Atom("E", (b, Null(901))),
        Atom("E", (Null(901), Null(902))),
        Atom("G", (a,)),
        Atom("T", (a, b, c)),
    ]


def random_fact(rng, pool):
    pred, ar = rng.choice([("E", 2), ("G", 1), ("T", 3)])
    return Atom(pred, tuple(rng.choice(pool) for _ in range(ar)))


class TestBasicContract:
    def test_construction_and_queries(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        ref = Instance(facts)
        assert len(col) == len(ref)
        assert set(col) == set(ref)
        assert col.facts() == ref.facts()
        assert col.frozen() == ref.frozen()
        for f in facts:
            assert f in col
        assert Atom("E", (b, a)) not in col
        assert col.predicates() == ref.predicates()
        assert col.domain() == ref.domain()
        assert col.nulls() == ref.nulls()
        assert col.constants() == ref.constants()
        assert col.is_database == ref.is_database
        assert col.with_predicate("E") == ref.with_predicate("E")
        assert col.with_predicate("missing") == frozenset()
        assert col.with_term(Null(901)) == ref.with_term(Null(901))
        assert col.with_term(a) == ref.with_term(a)

    def test_add_discard_return_values(self):
        col = ColumnarInstance()
        f = Atom("E", (a, b))
        assert col.add(f) is True
        assert col.add(f) is False
        assert col.discard(f) is True
        assert col.discard(f) is False
        assert len(col) == 0
        assert col.add(f) is True  # re-add after discard gets a fresh row
        assert f in col

    def test_add_rejects_non_facts(self):
        from repro.model import Variable

        with pytest.raises(ValueError):
            ColumnarInstance().add(Atom("E", (a, Variable("x"))))

    def test_equality_across_representations(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        ref = Instance(facts)
        assert col == ColumnarInstance(facts)
        assert col == ref
        assert ref == col  # reflected through NotImplemented
        assert col == set(facts)
        assert col == frozenset(facts)
        col2 = ColumnarInstance(facts)
        col2.discard(facts[0])
        assert col != col2
        assert col != "not an instance"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ColumnarInstance())

    def test_copy_is_independent(self):
        col = ColumnarInstance(sample_facts())
        dup = col.copy()
        assert dup == col
        assert dup.tick == 0  # the copy's delta log starts empty
        dup.add(Atom("G", (b,)))
        col.discard(Atom("G", (a,)))
        assert Atom("G", (b,)) not in col
        assert Atom("G", (a,)) in dup

    def test_apply_and_null_free_part(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        ref = Instance(facts)
        mapping = {Null(901): a, Null(902): Null(903)}
        assert col.apply(mapping) == ref.apply(mapping)
        assert isinstance(col.apply(mapping), ColumnarInstance)
        assert col.null_free_part() == ref.null_free_part()
        assert isinstance(col.null_free_part(), ColumnarInstance)

    def test_merge_terms_differential(self):
        for seed in range(40):
            rng = random.Random(seed)
            pool = [a, b, c, Null(910), Null(911), Null(912)]
            facts = [random_fact(rng, pool) for _ in range(12)]
            col = ColumnarInstance(facts)
            ref = Instance(facts)
            for old in (Null(910), Null(911)):
                new = rng.choice([t for t in pool if t is not old])
                col.merge_terms(old, new)
                ref.merge_terms(old, new)
                assert col == ref, f"seed={seed} {old}->{new}"
                assert col.domain() == ref.domain()

    def test_merge_terms_rejects_constants(self):
        with pytest.raises(TypeError):
            ColumnarInstance([Atom("E", (a, b))]).merge_terms(a, b)


class TestDeltaLog:
    def test_added_since_materialises_log_order(self):
        col = ColumnarInstance()
        facts = sample_facts()
        t0 = col.tick
        for f in facts:
            col.add(f)
        assert list(col.added_since(t0)) == facts
        t1 = col.tick
        col.add(Atom("G", (b,)))
        assert list(col.added_since(t1)) == [Atom("G", (b,))]
        assert list(col.added_since(col.tick)) == []

    def test_row_handles_and_liveness(self):
        col = ColumnarInstance()
        t0 = col.tick
        col.add(Atom("E", (a, b)))
        col.add(Atom("E", (b, c)))
        handles = col.added_rows_since(t0)
        assert len(handles) == 2
        assert all(col.row_live(h) for h in handles)
        col.discard(Atom("E", (a, b)))
        assert not col.row_live(handles[0])
        assert col.row_live(handles[1])
        # The dead row still materialises through the Atom boundary
        # (rolled-over deltas stay readable), matching Instance.
        assert list(col.added_since(t0)) == [Atom("E", (a, b)), Atom("E", (b, c))]

    def test_rows_rewritten_by_merge_reenter_the_log(self):
        n = Null(920)
        col = ColumnarInstance([Atom("E", (a, n)), Atom("E", (n, b))])
        t = col.tick
        col.merge_terms(n, c)
        fresh = [h for h in col.added_rows_since(t) if col.row_live(h)]
        assert len(fresh) == 2
        assert col == Instance([Atom("E", (a, c)), Atom("E", (c, b))])

    def test_compact_log_resets_tick(self):
        col = ColumnarInstance(sample_facts())
        assert col.tick == len(sample_facts())
        col.compact_log()
        assert col.tick == 0
        sp = col.savepoint()
        with pytest.raises(RuntimeError):
            col.compact_log()
        col.release(sp)


def snapshot(col):
    """The full internal state of a columnar instance, deep-copied."""
    return {
        skey: (
            [list(cl) for cl in st.cols],
            dict(st.rowmap),
            [{tid: set(rows) for tid, rows in cell.items()} for cell in st.index],
            bytes(st.live),
            st.nlive,
            st.nrows,
        )
        for skey, st in col._stores.items()
    }, col.tick


class TestSavepoints:
    def test_rollback_restores_exact_state(self):
        col = ColumnarInstance(sample_facts())
        before = snapshot(col)
        sp = col.savepoint()
        col.add(Atom("E", (c, c)))
        col.add(Atom("H", (a, a)))  # creates a store
        col.discard(Atom("G", (a,)))
        col.discard(Atom("E", (a, b)))
        col.add(Atom("E", (a, b)))  # re-add after discard
        col.merge_terms(Null(901), c)
        col.rollback(sp)
        assert snapshot(col) == before
        assert ("H", 2) not in col._stores  # created store removed again

    def test_rollback_differential_random_ops(self):
        for seed in range(30):
            rng = random.Random(seed)
            pool = [a, b, c, Null(930), Null(931)]
            base = [random_fact(rng, pool) for _ in range(10)]
            col = ColumnarInstance(base)
            ref = Instance(base)
            sp_c, sp_r = col.savepoint(), ref.savepoint()
            for _ in range(25):
                op = rng.random()
                f = random_fact(rng, pool)
                if op < 0.55:
                    assert col.add(f) == ref.add(f)
                elif op < 0.9:
                    assert col.discard(f) == ref.discard(f)
                else:
                    live_nulls = sorted(col.nulls(), key=lambda n: n.label)
                    if live_nulls:
                        old = rng.choice(live_nulls)
                        new = rng.choice([t for t in pool if t is not old])
                        col.merge_terms(old, new)
                        ref.merge_terms(old, new)
                assert col == ref, f"seed={seed} mid-transaction"
            col.rollback(sp_c)
            ref.rollback(sp_r)
            assert col == ref, f"seed={seed} after rollback"
            assert col == Instance(base), f"seed={seed}"
            assert col.tick == ref.tick, f"seed={seed}"

    def test_nested_savepoints(self):
        col = ColumnarInstance([Atom("E", (a, b))])
        sp1 = col.savepoint()
        col.add(Atom("E", (b, c)))
        sp2 = col.savepoint()
        col.add(Atom("E", (c, a)))
        col.rollback(sp2)
        assert col == Instance([Atom("E", (a, b)), Atom("E", (b, c))])
        assert col.in_transaction
        col.rollback(sp1)
        assert col == Instance([Atom("E", (a, b))])
        assert not col.in_transaction

    def test_release_keeps_changes(self):
        col = ColumnarInstance([Atom("E", (a, b))])
        sp = col.savepoint()
        col.add(Atom("E", (b, c)))
        col.release(sp)
        assert not col.in_transaction
        assert Atom("E", (b, c)) in col

    def test_rollback_through_inner_savepoint(self):
        col = ColumnarInstance()
        sp1 = col.savepoint()
        col.add(Atom("E", (a, b)))
        col.savepoint()  # inner, never consumed explicitly
        col.add(Atom("E", (b, c)))
        col.rollback(sp1)
        assert len(col) == 0
        assert not col.in_transaction

    def test_stale_savepoint_rejected(self):
        col = ColumnarInstance()
        sp = col.savepoint()
        col.rollback(sp)
        with pytest.raises(ValueError):
            col.rollback(sp)
        with pytest.raises(ValueError):
            col.release(sp)
        other = ColumnarInstance()
        with pytest.raises(ValueError):
            other.rollback(other.savepoint() and sp)


class TestMetamorphicTidChurn:
    """§9/§10: interned term ids never leak into canonical state, and the
    undo log restores the columnar representation exactly no matter how
    far the process-global tid counter has advanced in between."""

    def test_canonical_key_tid_free_on_columnar(self):
        for seed in range(20):
            rng = random.Random(seed)
            pool = [a, b, Null(940 + seed), Null(970 + seed)]
            facts = [random_fact(rng, pool) for _ in range(8)]
            before = canonical_key(ColumnarInstance(facts))
            assert before == canonical_key(Instance(facts))
            # Burn the tid counter, then rebuild with brand-new nulls:
            # the key is a function of structure, not of interned ids.
            churn = [Null(600_000 + seed * 100 + i) for i in range(60)]
            assert churn
            relabel = {
                Null(940 + seed): Null(700_000 + seed),
                Null(970 + seed): Null(800_000 + seed),
            }
            twin = ColumnarInstance(f.apply(relabel) for f in facts)
            assert canonical_key(twin) == before, f"seed={seed}"

    def test_savepoint_roundtrip_exact_under_churn(self):
        for seed in range(10):
            rng = random.Random(seed)
            pool = [a, b, c, Null(950), Null(951)]
            col = ColumnarInstance(random_fact(rng, pool) for _ in range(10))
            before = snapshot(col)
            sp = col.savepoint()
            # Advance the global counter mid-transaction; fresh terms
            # entering and leaving must not disturb restored state.
            fresh = [Null(900_000 + seed * 100 + i) for i in range(40)]
            for n in fresh[:5]:
                col.add(Atom("E", (a, n)))
            col.merge_terms(fresh[0], b)
            for f in [random_fact(rng, pool) for _ in range(6)]:
                col.add(f)
                col.discard(f)
            col.rollback(sp)
            assert snapshot(col) == before, f"seed={seed}"


class TestCowForks:
    """§11: ``copy()`` is a copy-on-write fork — segments are shared
    until a side's first write, and neither side can ever observe the
    other's mutations."""

    def test_child_mutations_never_touch_parent(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        before = snapshot(col)
        child = col.copy()
        child.add(Atom("E", (c, c)))
        child.add(Atom("H", (a, a)))
        child.discard(facts[0])
        child.merge_terms(Null(901), c)
        assert snapshot(col) == before
        assert col == Instance(facts)

    def test_parent_mutations_never_touch_child(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        child = col.copy()
        before = snapshot(child)
        col.add(Atom("E", (c, c)))
        col.discard(facts[0])
        col.merge_terms(Null(901), c)
        assert snapshot(child) == before
        assert child == Instance(facts)

    def test_fork_shares_segments_until_first_write(self):
        col = ColumnarInstance(sample_facts())  # no dead rows: no compaction
        child = col.copy()
        for skey, st in col._stores.items():
            assert child._stores[skey] is st  # shared, not copied
        g_orig = col._stores[("G", 1)]
        child.add(Atom("E", (c, a)))
        assert child._stores[("E", 2)] is not col._stores[("E", 2)]
        assert child._stores[("G", 1)] is g_orig  # untouched: still shared
        col.add(Atom("G", (b,)))
        assert col._stores[("G", 1)] is not g_orig  # parent un-shares too
        assert child._stores[("G", 1)] is g_orig

    def test_fork_mid_transaction_survives_parent_rollback(self):
        # The witness engine forks inside active savepoints and rolls the
        # parent back afterwards; the child must keep the pre-rollback
        # state and stay fully usable as its own transaction scope.
        col = ColumnarInstance([Atom("E", (a, b))])
        sp = col.savepoint()
        col.add(Atom("E", (b, c)))
        child = col.copy()
        col.rollback(sp)
        assert col == Instance([Atom("E", (a, b))])
        assert child == Instance([Atom("E", (a, b)), Atom("E", (b, c))])
        csp = child.savepoint()
        child.add(Atom("E", (c, a)))
        child.rollback(csp)
        assert child == Instance([Atom("E", (a, b)), Atom("E", (b, c))])

    def test_eager_copy_matches_cow_fork(self):
        facts = sample_facts()
        col = ColumnarInstance(facts)
        eager = col.copy(cow=False)
        assert eager == col == col.copy()
        for skey, st in col._stores.items():
            assert eager._stores[skey] is not st  # detached up front
        eager.add(Atom("E", (c, c)))
        col.discard(facts[0])
        assert Atom("E", (c, c)) not in col
        assert facts[0] in eager

    def test_copy_compacts_dead_rows(self):
        col = ColumnarInstance()
        for i in range(20):
            col.add(Atom("G", (Constant(f"g{i}"),)))
        for i in range(10):
            col.discard(Atom("G", (Constant(f"g{i}"),)))
        st = col._stores[("G", 1)]
        assert (st.nrows, st.nlive) == (20, 10)
        child = col.copy()
        cst = child._stores[("G", 1)]
        assert (cst.nrows, cst.nlive) == (10, 10)  # tombstones dropped
        assert st.nrows == 20  # the parent keeps its row ids
        assert child == col
        # Below the dead-fraction threshold the store is shared verbatim.
        col2 = ColumnarInstance(Atom("G", (Constant(f"h{i}"),)) for i in range(20))
        col2.discard(Atom("G", (Constant("h0"),)))
        assert col2.copy()._stores[("G", 1)] is col2._stores[("G", 1)]


class TestRandomScriptsWithForks:
    def test_nested_savepoint_fork_scripts_differential(self):
        """Random scripts of add/discard/merge, nested savepoint push /
        rollback / release, and mid-script COW forks (mutated on the
        side, then dropped), held step-for-step against ``Instance``."""
        for seed in range(12):
            rng = random.Random(1000 + seed)
            pool = [a, b, c, Null(960), Null(961), Null(962)]
            base = [random_fact(rng, pool) for _ in range(8)]
            col, ref = ColumnarInstance(base), Instance(base)
            stack = []
            for step in range(120):
                r = rng.random()
                f = random_fact(rng, pool)
                if r < 0.40:
                    assert col.add(f) == ref.add(f)
                elif r < 0.62:
                    assert col.discard(f) == ref.discard(f)
                elif r < 0.70:
                    live = sorted(col.nulls(), key=lambda n: n.label)
                    if live:
                        old = rng.choice(live)
                        new = rng.choice([t for t in pool if t is not old])
                        col.merge_terms(old, new)
                        ref.merge_terms(old, new)
                elif r < 0.80:
                    stack.append((col.savepoint(), ref.savepoint()))
                elif r < 0.88:
                    if stack:
                        sc, sr = stack.pop()
                        col.rollback(sc)
                        ref.rollback(sr)
                elif r < 0.94:
                    if stack:
                        sc, sr = stack.pop()
                        col.release(sc)
                        ref.release(sr)
                else:
                    # Fork both sides (possibly mid-transaction), mutate
                    # only the children, compare, drop them.
                    cc, cr = col.copy(), ref.copy()
                    for g in [random_fact(rng, pool) for _ in range(4)]:
                        assert cc.add(g) == cr.add(g)
                    assert cc.discard(f) == cr.discard(f)
                    assert cc == cr, f"seed={seed} step={step} fork"
                assert col == ref, f"seed={seed} step={step}"
            while stack:
                sc, sr = stack.pop()
                col.rollback(sc)
                ref.rollback(sr)
            assert col == ref, f"seed={seed} unwound"
            assert col.tick == ref.tick, f"seed={seed}"


def random_kernel_case(rng):
    """A random (pool, live, eqs, pairs) kernel input over 3 columns."""
    nrows = rng.randrange(1, 120)
    ncols = 3
    cols = [
        array("q", (rng.randrange(0, 6) for _ in range(nrows)))
        for _ in range(ncols)
    ]
    live = bytearray(rng.randrange(0, 2) for _ in range(nrows))
    pool = array("q", (rng.randrange(0, nrows) for _ in range(rng.randrange(0, 90))))
    eqs = tuple(
        (cols[i], None if rng.random() < 0.05 else rng.randrange(0, 6))
        for i in range(rng.randrange(0, ncols))
    )
    pairs = tuple(
        (cols[i], cols[j])
        for i, j in [rng.sample(range(ncols), 2)]
        if rng.random() < 0.5
    )
    return pool, live, eqs, pairs


class TestKernels:
    def test_selection_invariants(self):
        assert kernels.filter_rows in (
            kernels.filter_rows_python,
            kernels.filter_rows_numpy,
        )
        assert kernels.VECTORISED == (kernels._np is not None)
        assert isinstance(kernels.describe(), str)

    def test_python_numpy_kernels_differential(self):
        if kernels._np is None:
            pytest.skip("numpy not installed")
        for seed in range(80):
            case = random_kernel_case(random.Random(seed))
            assert kernels.filter_rows_python(*case) == kernels.filter_rows_numpy(
                *case
            ), f"seed={seed}"

    def test_generated_vector_branch_matches_scalar_path(self, monkeypatch):
        """The same compiled plan, run once through the inline scalar
        loop and once through the vectorised branch (forced on with the
        portable kernel, so this holds with or without numpy), must
        enumerate identical homomorphisms — and the branch must actually
        run."""
        from repro.matching import plans
        from repro.model import Variable

        rng = random.Random(7)
        pool = [a, b, c] + [Constant(f"k{i}") for i in range(5)]
        facts = [random_fact(rng, pool) for _ in range(400)]
        col = ColumnarInstance(facts)
        x, y = Variable("x"), Variable("y")
        bodies = [
            [Atom("E", (a, x))],                      # rigid probe at step 0
            [Atom("E", (x, x))],                      # within-atom pair check
            [Atom("T", (x, y, b)), Atom("E", (y, x))],
            [Atom("G", (x,)), Atom("E", (x, y))],
        ]

        def enumerate_all():
            return [
                {frozenset(m.items()) for m in plans.match(body, col, limit=None)}
                for body in bodies
            ]

        plans.clear_cache()
        scalar = enumerate_all()

        calls = 0

        def counting_filter(pool, live, eqs, pairs):
            nonlocal calls
            calls += 1
            return kernels.filter_rows_python(pool, live, eqs, pairs)

        monkeypatch.setattr(kernels, "VECTORISED", True)
        monkeypatch.setattr(kernels, "MIN_VECTOR_ROWS", 1)
        monkeypatch.setattr(kernels, "filter_rows", counting_filter)
        plans.clear_cache()  # regenerate with the vector branch emitted
        try:
            vectorised = enumerate_all()
        finally:
            plans.clear_cache()  # drop branch-forced code for later tests
        assert vectorised == scalar
        assert calls > 0  # the vector branch really executed
