"""Unit tests for TGDs, EGDs, and dependency sets."""

import pytest

from repro.model import EGD, TGD, Atom, Constant, DependencySet, Position, Variable
from repro.model import parse_dependencies, parse_dependency

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def tgd(body, head, **kw):
    return TGD(body, head, **kw)


class TestTGD:
    def test_existential_inference(self):
        r = TGD([Atom("N", (x,))], [Atom("E", (x, y))])
        assert r.existential == (y,)
        assert r.is_existential and not r.is_full

    def test_full_tgd(self):
        r = TGD([Atom("E", (x, y))], [Atom("N", (y,))])
        assert r.existential == ()
        assert r.is_full

    def test_existential_order_follows_head(self):
        r = TGD([Atom("N", (x,))], [Atom("E", (x, z, y))])
        # z appears before y in the head.
        assert r.existential == (z, y)

    def test_declared_existential_mismatch(self):
        with pytest.raises(ValueError):
            TGD([Atom("N", (x,))], [Atom("E", (x, y))], existential=[z])

    def test_frontier(self):
        r = TGD([Atom("E", (x, y))], [Atom("F", (x, z))])
        assert r.frontier() == {x}

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            TGD([], [Atom("N", (x,))])

    def test_positions_of(self):
        r = TGD([Atom("E", (x, x))], [Atom("N", (x,))])
        assert r.body_positions_of(x) == [Position("E", 0), Position("E", 1)]
        assert r.head_positions_of(x) == [Position("N", 0)]

    def test_rename_variables(self):
        r = TGD([Atom("N", (x,))], [Atom("E", (x, y))])
        renamed = r.rename_variables("7")
        assert renamed.body[0] == Atom("N", (Variable("x#7"),))
        assert renamed.existential == (Variable("y#7"),)
        assert renamed != r

    def test_equality_ignores_label(self):
        r1 = TGD([Atom("N", (x,))], [Atom("E", (x, y))], label="a")
        r2 = TGD([Atom("N", (x,))], [Atom("E", (x, y))], label="b")
        assert r1 == r2


class TestEGD:
    def test_basic(self):
        e = EGD([Atom("E", (x, y))], x, y)
        assert e.is_full and e.is_egd and not e.is_tgd

    def test_requires_body_variables(self):
        with pytest.raises(ValueError):
            EGD([Atom("E", (x, y))], x, z)

    def test_rejects_trivial(self):
        with pytest.raises(ValueError):
            EGD([Atom("E", (x, y))], x, x)

    def test_rejects_constants(self):
        with pytest.raises(TypeError):
            EGD([Atom("E", (x, y))], x, Constant("a"))

    def test_rename(self):
        e = EGD([Atom("E", (x, y))], x, y)
        renamed = e.rename_variables("1")
        assert renamed.lhs is Variable("x#1")


class TestDependencySet:
    def setup_method(self):
        self.sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )

    def test_partitions(self):
        assert len(self.sigma.tgds) == 2
        assert len(self.sigma.egds) == 1
        # Σ∀ holds full TGDs and all EGDs; Σ∃ the existential TGDs.
        assert {d.label for d in self.sigma.full} == {"r2", "r3"}
        assert {d.label for d in self.sigma.existential} == {"r1"}

    def test_predicates(self):
        assert self.sigma.predicates() == {"N": 1, "E": 2}

    def test_positions(self):
        assert len(self.sigma.positions()) == 3

    def test_arity_conflict_detected(self):
        bad = DependencySet(
            [
                TGD([Atom("P", (x,))], [Atom("Q", (x,))]),
                TGD([Atom("P", (x, y))], [Atom("Q", (x,))]),
            ]
        )
        with pytest.raises(ValueError):
            bad.predicates()

    def test_dedup(self):
        r = parse_dependency("E(x, y) -> N(y)")
        s = DependencySet([r, r])
        assert len(s) == 1

    def test_restricted_to(self):
        sub = self.sigma.restricted_to([self.sigma[0]])
        assert len(sub) == 1

    def test_relabel(self):
        relabelled = self.sigma.relabel("d")
        assert [d.label for d in relabelled] == ["d1", "d2", "d3"]

    def test_tgds_only(self):
        assert len(self.sigma.tgds_only()) == 2
        assert not self.sigma.tgds_only().egds
