"""CLI tests: every command end-to-end via main()."""

import pathlib

import pytest

from repro.cli import main

SIGMA1 = """
r1: N(x) -> exists y. E(x, y)
r2: E(x, y) -> N(y)
r3: E(x, y) -> x = y
"""

SIGMA3 = """
r1: P(x, y) -> exists z. E(x, z)
r2: Q(x, y) -> exists z. E(z, y)
"""


@pytest.fixture
def sigma1_file(tmp_path):
    p = tmp_path / "sigma1.deps"
    p.write_text(SIGMA1)
    return str(p)


@pytest.fixture
def sigma3_file(tmp_path):
    p = tmp_path / "sigma3.deps"
    p.write_text(SIGMA3)
    return str(p)


class TestClassify:
    def test_accepting_exit_code(self, sigma1_file, capsys):
        assert main(["classify", sigma1_file]) == 0
        out = capsys.readouterr().out
        assert "SAC" in out and "terminating" in out

    def test_criteria_subset(self, sigma1_file, capsys):
        assert main(["classify", sigma1_file, "--criteria", "WA,SAC"]) == 0
        out = capsys.readouterr().out
        assert "SwA" not in out

    def test_rejecting_exit_code(self, tmp_path, capsys):
        p = tmp_path / "bad.deps"
        p.write_text(
            "r1: N(x) -> exists y, z. E(x, y, z)\n"
            "r2: E(x, y, y) -> N(y)\n"
            "r3: E(x, y, z) -> y = z\n"
        )
        assert main(["classify", str(p)]) == 1

    def test_stats_flag(self, sigma3_file, capsys):
        assert main(["classify", sigma3_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "backend: shared" in out
        assert "artifacts:" in out and "firing decisions:" in out

    def test_backend_flag(self, sigma3_file, capsys):
        assert main(["classify", sigma3_file, "--backend", "standalone",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "backend: standalone" in out
        assert "artifacts:" not in out  # no shared context to report on

    def test_hierarchy_flag(self, sigma3_file, capsys):
        # WA accepts Σ3, so the contained criteria are filled in.
        assert main(["classify", sigma3_file, "--hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "(⇐ WA)" in out


class TestClassifyPortfolio:
    """The portfolio flags: --jobs, --budget-steps, --budget-ms,
    --short-circuit, and the chase-style 0/1/2 exit codes."""

    REJECTED = (
        "r1: A(x) -> exists y. R(x, y)\n"
        "r2: R(x, y) -> A(y)\n"
    )

    @pytest.fixture
    def rejected_file(self, tmp_path):
        p = tmp_path / "rejected.deps"
        p.write_text(self.REJECTED)
        return str(p)

    def test_jobs_same_verdict_as_sequential(self, sigma1_file, capsys):
        assert main(["classify", sigma1_file]) == 0
        seq = capsys.readouterr().out
        assert main(["classify", sigma1_file, "--jobs", "4"]) == 0
        par = capsys.readouterr().out
        # Same criteria, same marks (timings differ).
        strip = lambda out: [line.split("  ")[1] for line in out.splitlines()[1:-1]]
        assert strip(seq) == strip(par)

    def test_trusted_rejection_exits_1(self, rejected_file):
        assert main(["classify", rejected_file]) == 1

    def test_budget_exhaustion_exits_2(self, rejected_file, capsys):
        code = main(["classify", rejected_file, "--budget-steps", "20"])
        assert code == 2
        assert "[budget]" in capsys.readouterr().out

    def test_budget_ms_accepting_still_exits_0(self, sigma1_file):
        # Acceptance is sound regardless of other criteria's budgets.
        assert main(["classify", sigma1_file, "--budget-ms", "60000"]) == 0

    def test_short_circuit_skips_and_keeps_verdict(self, sigma1_file, capsys):
        code = main(["classify", sigma1_file, "--jobs", "2", "--short-circuit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "terminating" in out

    def test_help_documents_portfolio_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["classify", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--jobs", "--budget-steps", "--budget-ms", "--short-circuit"):
            assert flag in out


class TestChase:
    def test_inline_facts(self, sigma1_file, capsys):
        code = main(
            ["chase", sigma1_file, "--data", 'N("a")', "--strategy", "full_first"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success" in out and 'E("a", "a")' in out

    def test_facts_file(self, sigma1_file, tmp_path, capsys):
        facts = tmp_path / "db.facts"
        facts.write_text('N("a")')
        assert main(["chase", sigma1_file, "--data", str(facts)]) == 0

    def test_exceeded_exit_code(self, sigma1_file, capsys):
        code = main(
            [
                "chase", sigma1_file, "--data", 'N("a")',
                "--strategy", "existential_first", "--max-steps", "20",
            ]
        )
        assert code == 2


class TestAdorn:
    def test_acyclic(self, sigma1_file, capsys):
        assert main(["adorn", sigma1_file]) == 0
        out = capsys.readouterr().out
        assert "Acyc = True" in out and "E^bb" in out

    def test_cyclic(self, tmp_path, capsys):
        p = tmp_path / "cyc.deps"
        p.write_text("r1: A(x) -> exists y. R(x, y)\nr2: R(x, y) -> A(y)\n")
        assert main(["adorn", str(p)]) == 1
        assert "Acyc = False" in capsys.readouterr().out


class TestGraph:
    def test_text(self, sigma1_file, capsys):
        assert main(["graph", sigma1_file]) == 0
        out = capsys.readouterr().out
        assert "Chase graph" in out and "Firing graph" in out

    def test_dot(self, sigma1_file, capsys):
        assert main(["graph", sigma1_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph chase_graph" in out
        assert '"r1" -> "r2"' in out


class TestExplore:
    def test_some_terminating(self, sigma1_file, capsys):
        code = main(
            ["explore", sigma1_file, "--data", 'N("a")', "--max-depth", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "terminating leaves: 1" in out

    def test_none_terminating(self, tmp_path, capsys):
        p = tmp_path / "sigma10.deps"
        p.write_text(
            "r1: N(x) -> exists y, z. E(x, y, z)\n"
            "r2: E(x, y, y) -> N(y)\n"
            "r3: E(x, y, z) -> y = z\n"
        )
        code = main(
            ["explore", str(p), "--data", 'N("a")', "--max-depth", "7"]
        )
        assert code == 1
