"""Chase engine tests: steps, variants, strategies, failure.

The ground truth comes from the paper's Examples 1, 4, 5, 6 and 7.
"""

import pytest

from repro.chase import (
    ChaseStatus,
    Trigger,
    apply_step,
    core_chase,
    egd_substitution,
    run_chase,
)
from repro.homomorphism import is_model, satisfies_all
from repro.model import (
    Atom,
    Constant,
    Instance,
    Null,
    NullFactory,
    Variable,
    parse_dependencies,
    parse_dependency,
    parse_facts,
)

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")


@pytest.fixture
def sigma1():
    return parse_dependencies(
        """
        r1: N(x) -> exists y. E(x, y)
        r2: E(x, y) -> N(y)
        r3: E(x, y) -> x = y
        """
    )


class TestChaseStep:
    def test_tgd_step_adds_fresh_null(self):
        r1 = parse_dependency("N(x) -> exists y. E(x, y)")
        inst = parse_facts('N("a")')
        trigger = Trigger.make(r1, {x: a})
        outcome = apply_step(inst, trigger, NullFactory(start=1))
        assert outcome.added == [Atom("E", (a, Null(1)))]
        assert outcome.created_nulls == [Null(1)]
        assert outcome.gamma is None

    def test_egd_step_merges(self):
        r3 = parse_dependency("E(x, y) -> x = y")
        inst = Instance([Atom("E", (a, Null(1)))])
        trigger = Trigger.make(r3, {x: a, y: Null(1)})
        outcome = apply_step(inst, trigger, NullFactory())
        assert outcome.gamma is not None
        assert outcome.gamma.old is Null(1) and outcome.gamma.new is a
        assert inst.facts() == {Atom("E", (a, a))}

    def test_egd_step_fails_on_two_constants(self):
        r3 = parse_dependency("E(x, y) -> x = y")
        inst = parse_facts('E("a", "b")')
        trigger = Trigger.make(r3, {x: a, y: b})
        outcome = apply_step(inst, trigger, NullFactory())
        assert outcome.failed

    def test_egd_substitution_direction(self):
        # Definition 1: the null side is replaced; if x1 is a null it goes.
        r3 = parse_dependency("E(x, y) -> x = y")
        s = egd_substitution(r3, {x: Null(1), y: Null(2)})
        assert s.old is Null(1) and s.new is Null(2)
        s = egd_substitution(r3, {x: a, y: Null(2)})
        assert s.old is Null(2) and s.new is a


class TestStandardChase:
    def test_example1_terminating_sequence(self, sigma1):
        db = parse_facts('N("a")')
        result = run_chase(db, sigma1, strategy="full_first", max_steps=50)
        assert result.status is ChaseStatus.SUCCESS
        assert result.instance.facts() == parse_facts('N("a") E("a","a")').facts()
        # 2 steps: r1 then r3, exactly the sequence of Example 5.
        assert result.step_count == 2

    def test_example1_nonterminating_strategy(self, sigma1):
        db = parse_facts('N("a")')
        result = run_chase(
            db, sigma1, strategy="existential_first", max_steps=60
        )
        assert result.status is ChaseStatus.EXCEEDED

    def test_result_is_model(self, sigma1):
        db = parse_facts('N("a")')
        result = run_chase(db, sigma1, strategy="full_first")
        assert is_model(result.instance, db, sigma1)

    def test_satisfied_database_empty_sequence(self):
        # Example 6: the only standard chase sequence of Σ6 is empty.
        sigma6 = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = run_chase(db, sigma6, max_steps=10)
        assert result.status is ChaseStatus.SUCCESS
        assert result.step_count == 0

    def test_failing_chase(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        db = parse_facts('E("a", "b")')
        result = run_chase(db, sigma)
        assert result.status is ChaseStatus.FAILURE
        assert result.failed and result.terminated and not result.successful

    def test_input_not_modified(self, sigma1):
        db = parse_facts('N("a")')
        run_chase(db, sigma1, strategy="full_first")
        assert db.facts() == parse_facts('N("a")').facts()

    def test_merge_enables_repeated_variable_body(self):
        # After merging E(a,η)→E(a,a), the body E(x,x) matches: the runner
        # must treat rewritten facts as new for trigger discovery.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. E(x, y)
            r2: E(x, y) -> x = y
            r3: E(x, x) -> Q(x)
            """
        )
        db = parse_facts('P("a")')
        result = run_chase(db, sigma, strategy="fifo", max_steps=50)
        assert result.status is ChaseStatus.SUCCESS
        assert Atom("Q", (a,)) in result.instance


class TestObliviousAndSemiOblivious:
    def test_example6_semi_oblivious_terminates(self):
        sigma6 = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = run_chase(db, sigma6, variant="semi_oblivious", max_steps=50)
        assert result.status is ChaseStatus.SUCCESS
        # Exactly one step: the trigger key is x=a; the new fact E(a, η)
        # has the same frontier key.
        assert result.step_count == 1
        assert len(result.instance) == 2

    def test_example6_oblivious_diverges(self):
        sigma6 = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = run_chase(db, sigma6, variant="oblivious", max_steps=30)
        assert result.status is ChaseStatus.EXCEEDED

    def test_oblivious_fires_satisfied_triggers(self):
        sigma = parse_dependencies("r: E(x, y) -> exists z. E(y, z)")
        db = parse_facts('E("a", "b") E("b", "c")')
        std = run_chase(db, sigma, max_steps=100)
        # standard: only b-with-no-successor... E(b,c) gives b a successor;
        # only c lacks one initially.
        sobl = run_chase(db, sigma, variant="semi_oblivious", max_steps=100)
        assert sobl.step_count > std.step_count or sobl.status is ChaseStatus.EXCEEDED

    def test_oblivious_key_composition_with_egd(self, sigma1):
        # Σ1 under the oblivious chase: enforcing r3 merges η1 into a, and
        # the already-fired r1 trigger (x=a) must not fire again after the
        # merge (the γ-composition of Section 2's definition).
        db = parse_facts('N("a")')
        result = run_chase(db, sigma1, variant="oblivious",
                           strategy="full_first", max_steps=50)
        assert result.status is ChaseStatus.SUCCESS
        assert result.instance.facts() == parse_facts('N("a") E("a","a")').facts()


class TestCoreChase:
    def test_example7_empty_sequence(self):
        sigma6 = parse_dependencies("r: E(x, y) -> exists z. E(x, z)")
        db = parse_facts('E("a", "b")')
        result = core_chase(db, sigma6, max_rounds=5)
        assert result.successful
        assert result.instance.facts() == db.facts()

    def test_core_chase_computes_universal_model(self, sigma1):
        db = parse_facts('N("a")')
        result = core_chase(db, sigma1, max_rounds=10)
        assert result.successful
        assert satisfies_all(result.instance, sigma1)
        assert result.instance.facts() == parse_facts('N("a") E("a","a")').facts()

    def test_core_chase_failure(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        db = parse_facts('E("a", "b")')
        result = core_chase(db, sigma)
        assert result.failed

    def test_core_chase_divergence_capped(self):
        sigma10 = parse_dependencies(
            """
            r1: N(x) -> exists y, z. E(x, y, z)
            r2: E(x, y, y) -> N(y)
            r3: E(x, y, z) -> y = z
            """
        )
        db = parse_facts('N("a")')
        result = core_chase(db, sigma10, max_rounds=6)
        assert result.status is ChaseStatus.EXCEEDED
