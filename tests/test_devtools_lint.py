"""Tests for ``repro.devtools.lint`` — the DESIGN.md invariant checker.

Each rule gets a flagging fixture *and* a passing fixture, written into a
tmp tree that mirrors the real layout (``src/repro/chase/...``) so the
rules' path scoping is exercised, not bypassed.  On top of that:
suppression parsing, the baseline round-trip, CLI exit codes, the JSON
format, and the meta-test that the checked-in tree itself lints clean.
"""

from __future__ import annotations

import json
import os
import pathlib
import textwrap
from collections import Counter

import pytest

from repro.cli import main
from repro.devtools.lint import (
    all_rules,
    load_baseline,
    render_json,
    run_lint,
    save_baseline,
)
from repro.devtools.lint.framework import BASELINE_VERSION

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, actual: str) -> None:
    """Same regenerate-with-REPRO_REGEN_GOLDEN=1 contract as test_cli_batch."""
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
    assert path.exists(), f"golden file {name} missing; regenerate with " \
        "REPRO_REGEN_GOLDEN=1"
    assert actual == path.read_text(), f"{name} drifted from its golden"


def lint_tree(tmp_path, files, **kwargs):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    paths = kwargs.pop("paths", sorted(files))
    return run_lint(tmp_path, paths, **kwargs)


def rules_of(report):
    return sorted(f.rule for f in report.findings)


# ---------------------------------------------------------------------------
# budget-loop (§2)
# ---------------------------------------------------------------------------


class TestBudgetLoop:
    PATH = "src/repro/chase/fixture.py"

    def test_flags_unbudgeted_while(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending):
                while pending:
                    pending.pop()
            """})
        assert rules_of(report) == ["budget-loop"]
        assert report.findings[0].line == 2

    def test_passes_while_that_charges(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, budget):
                while pending:
                    if not budget.charge():
                        break
                    pending.pop()
            """})
        assert report.clean

    def test_passes_while_that_polls_cancellation(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, token):
                while pending:
                    if token.cancelled:
                        break
                    pending.pop()
            """})
        assert report.clean

    def test_flags_recursive_function_without_poll(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def descend(node):
                for child in node.children:
                    descend(child)
            """})
        assert rules_of(report) == ["budget-loop"]
        assert "recursive function 'descend'" in report.findings[0].message

    def test_passes_recursive_method_that_charges(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            class Walker:
                def descend(self, node):
                    if not self.budget.charge():
                        return
                    for child in node.children:
                        self.descend(child)
            """})
        assert report.clean

    def test_closure_poll_does_not_vouch_for_outer_loop(self, tmp_path):
        # A budget poll inside a nested function is not executed by the
        # enclosing while loop, so it must not satisfy the rule.
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, budget):
                def helper():
                    return budget.charge()
                while pending:
                    pending.pop()
            """})
        assert rules_of(report) == ["budget-loop"]

    def test_passes_hoisted_bound_charge_helper(self, tmp_path):
        # Plan-compiled hot loops hoist the bound method out of the loop
        # (``charge = budget.charge``); the bare-name call still polls.
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, budget):
                charge = budget.charge
                while pending:
                    if not charge():
                        break
                    pending.pop()
            """})
        assert report.clean

    def test_passes_hoisted_private_charge_facts_helper(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, budget):
                _charge_facts = budget.charge_facts
                while pending:
                    if not _charge_facts(3):
                        break
                    pending.pop()
            """})
        assert report.clean

    def test_unrelated_bare_call_does_not_vouch(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending, advance):
                while pending:
                    advance()
                    pending.pop()
            """})
        assert rules_of(report) == ["budget-loop"]

    def test_out_of_scope_module_is_not_patrolled(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/util.py": """\
            def spin(pending):
                while pending:
                    pending.pop()
            """})
        assert report.clean


# ---------------------------------------------------------------------------
# swallowed-control-exception (§2)
# ---------------------------------------------------------------------------


class TestSwallowedControlException:
    PATH = "src/repro/anywhere.py"

    def test_flags_pass_swallow_of_control_exception(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except BudgetExhausted:
                    pass
            """})
        assert rules_of(report) == ["swallowed-control-exception"]

    def test_passes_reraise(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except BudgetExhausted:
                    cleanup()
                    raise
            """})
        assert report.clean

    def test_passes_verdict_conversion(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except BudgetExhausted:
                    return Verdict.budget_exhausted()
            """})
        assert report.clean

    def test_flags_broad_except_without_reraise(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except Exception as exc:
                    log(exc)
            """})
        assert rules_of(report) == ["swallowed-control-exception"]

    def test_passes_broad_except_with_reraise(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except BaseException:
                    rollback()
                    raise
            """})
        assert report.clean

    def test_narrow_domain_exception_is_fine(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def f():
                try:
                    work()
                except ValueError:
                    pass
            """})
        assert report.clean


# ---------------------------------------------------------------------------
# instance-encapsulation (§1/§5)
# ---------------------------------------------------------------------------


class TestInstanceEncapsulation:
    def test_flags_foreign_private_access(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/chase/peek.py": """\
            def cheat(instance):
                return instance._facts
            """})
        assert rules_of(report) == ["instance-encapsulation"]
        assert "_facts" in report.findings[0].message

    def test_self_access_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/chase/own.py": """\
            class Thing:
                def size(self):
                    return len(self._facts)
            """})
        assert report.clean

    def test_instances_module_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/model/instances.py": """\
            def rebuild(instance):
                return instance._by_predicate
            """})
        assert report.clean

    def test_matching_engine_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/matching/engine.py": """\
            def probe(instance, pred):
                return instance._pred_bucket(pred)
            """})
        assert report.clean

    def test_tests_are_not_patrolled(self, tmp_path):
        report = lint_tree(tmp_path, {"tests/test_peek.py": """\
            def test_internal(instance):
                assert instance._facts
            """})
        assert report.clean


# ---------------------------------------------------------------------------
# fork-safety (§7)
# ---------------------------------------------------------------------------


class TestForkSafety:
    def test_flags_connect_outside_store(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/chase/db.py": """\
            import sqlite3

            def snapshot(path):
                return sqlite3.connect(path)
            """})
        assert rules_of(report) == ["fork-safety"]

    def test_passes_lazy_connect_inside_store(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/store/sqlite.py": """\
            import sqlite3

            def _open(path):
                return sqlite3.connect(path)
            """})
        assert report.clean

    def test_flags_module_level_connect_even_in_store(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/store/sqlite.py": """\
            import sqlite3

            CONN = sqlite3.connect("store.sqlite")
            """})
        assert rules_of(report) == ["fork-safety"]
        assert "module-level" in report.findings[0].message

    def test_flags_module_level_connect_in_class_body(self, tmp_path):
        # Class bodies execute at import time, so a connection there is
        # just as fork-shared as a plain module-level one.
        report = lint_tree(tmp_path, {"src/repro/store/sqlite.py": """\
            import sqlite3

            class Registry:
                conn = sqlite3.connect("store.sqlite")
            """})
        assert rules_of(report) == ["fork-safety"]


# ---------------------------------------------------------------------------
# determinism (§4/§6)
# ---------------------------------------------------------------------------


class TestDeterminism:
    PATH = "src/repro/batch/fingerprint.py"

    def test_flags_unsorted_set_into_sink(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def key(xs):
                return stable_hash(set(xs))
            """})
        assert rules_of(report) == ["determinism"]

    def test_passes_sorted_set_into_sink(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def key(xs):
                return stable_hash(sorted(set(xs)))
            """})
        assert report.clean

    def test_flags_loop_over_set_driving_sink(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def keys(inst, out):
                for null in inst.nulls():
                    out.append(stable_hash(null))
            """})
        assert rules_of(report) == ["determinism"]

    def test_flags_time_random_hash_id(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            import random
            import time

            def key(x):
                return (time.time(), random.random(), hash(x), id(x))
            """})
        assert rules_of(report) == ["determinism"] * 4

    def test_unscoped_module_is_not_patrolled(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/chase/runner2.py": """\
            def key(xs):
                return stable_hash(set(xs))
            """})
        assert report.clean


# ---------------------------------------------------------------------------
# bare-except (repo-wide)
# ---------------------------------------------------------------------------


class TestBareExcept:
    def test_flags_everywhere_including_tests(self, tmp_path):
        report = lint_tree(tmp_path, {"tests/test_x.py": """\
            def f():
                try:
                    work()
                except:
                    pass
            """})
        assert rules_of(report) == ["bare-except"]

    def test_named_handler_passes(self, tmp_path):
        report = lint_tree(tmp_path, {"tests/test_x.py": """\
            def f():
                try:
                    work()
                except (ValueError, KeyError):
                    pass
            """})
        assert report.clean


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    PATH = "src/repro/chase/fixture.py"

    def test_trailing_suppression_covers_its_line(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending):
                while pending:  # repro-lint: disable=budget-loop -- pops one item per iteration
                    pending.pop()
            """})
        assert report.clean
        assert report.suppressed == 1

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending):
                # repro-lint: disable=budget-loop -- pops one item per iteration
                while pending:
                    pending.pop()
            """})
        assert report.clean
        assert report.suppressed == 1

    def test_justification_is_mandatory(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending):
                while pending:  # repro-lint: disable=budget-loop
                    pending.pop()
            """})
        # The naked suppression does not suppress, and is itself reported.
        assert rules_of(report) == ["budget-loop", "invalid-suppression"]

    def test_suppression_only_covers_named_rules(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: """\
            def run(pending):
                while pending:  # repro-lint: disable=bare-except -- wrong rule named
                    pending.pop()
            """})
        assert rules_of(report) == ["budget-loop"]

    def test_multiple_rules_one_comment(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/chase/z.py": """\
            def cheat(instance, pending):
                # repro-lint: disable=budget-loop,instance-encapsulation -- fixture exercising the list form
                while instance._facts:
                    pending.pop()
            """})
        assert report.clean
        assert report.suppressed == 2

    def test_marker_inside_string_literal_is_inert(self, tmp_path):
        report = lint_tree(tmp_path, {self.PATH: '''\
            MARKER = "# repro-lint: disable=budget-loop -- not a real comment"

            def run(pending):
                while pending:
                    pending.pop()
            '''})
        assert rules_of(report) == ["budget-loop"]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

_DIRTY = {
    "src/repro/chase/old.py": """\
        def run(pending):
            while pending:
                pending.pop()
        """,
}


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        report = lint_tree(tmp_path, _DIRTY)
        assert not report.clean
        baseline_path = tmp_path / "lint-baseline.json"
        save_baseline(baseline_path, report)

        again = lint_tree(tmp_path, _DIRTY, baseline=load_baseline(baseline_path))
        assert again.clean
        assert [f.rule for f in again.baselined] == ["budget-loop"]
        assert again.exit_code() == 0

    def test_line_drift_keeps_baseline_valid(self, tmp_path):
        report = lint_tree(tmp_path, _DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        save_baseline(baseline_path, report)
        # Prepend code: the finding moves to another line, same text.
        target = tmp_path / "src/repro/chase/old.py"
        target.write_text("import os\n\n" + target.read_text())

        again = run_lint(tmp_path, ["src"], baseline=load_baseline(baseline_path))
        assert again.clean and len(again.baselined) == 1

    def test_touching_the_line_invalidates_baseline(self, tmp_path):
        report = lint_tree(tmp_path, _DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        save_baseline(baseline_path, report)
        target = tmp_path / "src/repro/chase/old.py"
        target.write_text(target.read_text().replace(
            "while pending:", "while pending is not None:"))

        again = run_lint(tmp_path, ["src"], baseline=load_baseline(baseline_path))
        assert rules_of(again) == ["budget-loop"]
        assert not again.baselined

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "lint-baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(bad)


# ---------------------------------------------------------------------------
# framework odds and ends
# ---------------------------------------------------------------------------


class TestFramework:
    def test_syntax_error_is_a_parse_error_finding(self, tmp_path):
        report = lint_tree(tmp_path, {"src/repro/broken.py": "def f(:\n"})
        assert rules_of(report) == ["parse-error"]

    def test_unknown_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint(tmp_path, ["no-such-dir"])

    def test_render_json_carries_counts(self, tmp_path):
        report = lint_tree(tmp_path, _DIRTY)
        payload = json.loads(render_json(report))
        assert payload["version"] == BASELINE_VERSION
        assert payload["counts"] == {
            "findings": 1, "baselined": 0, "suppressed": 0}
        assert payload["findings"][0]["rule"] == "budget-loop"

    def test_every_rule_names_a_design_section(self):
        rules = all_rules()
        assert len(rules) >= 6
        for rule in rules:
            assert rule.name and rule.section.startswith("§") and rule.summary


# ---------------------------------------------------------------------------
# CLI and the tree itself
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean").mkdir()
        (tmp_path / "clean/ok.py").write_text("x = 1\n")
        code = main(["lint", "--root", str(tmp_path), "clean"])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        p = tmp_path / "src/repro/chase"
        p.mkdir(parents=True)
        (p / "bad.py").write_text("def f(xs):\n    while xs:\n        xs.pop()\n")
        code = main(["lint", "--root", str(tmp_path), "src"])
        assert code == 1
        assert "budget-loop" in capsys.readouterr().out

    def test_exit_two_on_bad_baseline(self, tmp_path, capsys):
        (tmp_path / "lint-baseline.json").write_text("{\"version\": 99}")
        (tmp_path / "src").mkdir()
        code = main(["lint", "--root", str(tmp_path), "src"])
        assert code == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = main(["lint", "--root", str(tmp_path), "nowhere"])
        assert code == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        p = tmp_path / "src/repro/chase"
        p.mkdir(parents=True)
        (p / "bad.py").write_text("def f(xs):\n    while xs:\n        xs.pop()\n")
        assert main(["lint", "--root", str(tmp_path), "src",
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--root", str(tmp_path), "src"]) == 0
        assert "(1 baselined" in capsys.readouterr().out

    def test_text_output_matches_golden(self, tmp_path, capsys):
        """Pins the human report format: findings, a baselined line, the
        suppressed count, the summary.  Paths in the output are relative
        to --root, so the report is tmp-dir independent."""
        files = {
            "src/repro/chase/old.py": """\
                def drain(pending):
                    while pending:
                        pending.pop()
                """,
            "src/repro/chase/fresh.py": """\
                def cheat(instance, pending):
                    while pending:  # repro-lint: disable=budget-loop -- pops one item per iteration
                        pending.pop()
                    return instance._facts
                """,
        }
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(src))
        # Grandfather old.py only, then lint the whole fixture tree.
        assert main(["lint", "--root", str(tmp_path), "src/repro/chase/old.py",
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--root", str(tmp_path), "src"]) == 1
        check_golden("lint_fixture.txt", capsys.readouterr().out)

    def test_checked_in_tree_is_clean(self):
        """The acceptance criterion: the repository lints clean against
        its committed (empty) baseline."""
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        report = run_lint(REPO_ROOT, ["src", "tests", "benchmarks"],
                          baseline=baseline)
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert not report.baselined, "baseline should stay empty"


# ---------------------------------------------------------------------------
# static typing (setup.cfg [mypy]; the CI lint job runs the real thing)
# ---------------------------------------------------------------------------


def _unannotated_defs(path: pathlib.Path) -> list[str]:
    import ast as _ast

    out = []
    for node in _ast.walk(_ast.parse(path.read_text())):
        if not isinstance(node, (_ast.FunctionDef, _ast.AsyncFunctionDef)):
            continue
        a = node.args
        missing = [
            arg.arg
            for arg in a.posonlyargs + a.args + a.kwonlyargs
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        for var in (a.vararg, a.kwarg):
            if var is not None and var.annotation is None:
                missing.append(var.arg)
        if missing:
            out.append(f"{path.name}:{node.lineno} {node.name}: {missing}")
    return out


class TestTyping:
    def test_strict_modules_have_fully_annotated_defs(self):
        """AST-level stand-in for mypy's disallow_untyped_defs over the
        strict modules (setup.cfg), so the guarantee holds even where
        mypy is not installed."""
        strict = [REPO_ROOT / "src/repro/budget.py"]
        strict += sorted((REPO_ROOT / "src/repro/store").glob("*.py"))
        strict += sorted((REPO_ROOT / "src/repro/batch").glob("*.py"))
        problems = [line for p in strict for line in _unannotated_defs(p)]
        assert not problems, "\n".join(problems)

    def test_mypy_strict_modules(self):
        """The real checker, when available (CI installs it)."""
        import shutil
        import subprocess

        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed; the CI lint job runs it")
        proc = subprocess.run(
            ["mypy", "src/repro/budget.py", "src/repro/store",
             "src/repro/batch"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
