"""CLI golden-file tests for ``repro batch``: both output formats and the
0/1/2 exit-code contract.

Timings are the only nondeterminism in the output, so goldens are
compared after masking them (table) or stripping them (jsonl); everything
else — keys, verdicts, cache provenance, summary counts — must match
byte-for-byte.  Regenerate after an intentional output change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_cli_batch.py
"""

from __future__ import annotations

import json
import os
import pathlib
import re

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

SIGMA_OK = """
r1: N(x) -> exists y. E(x, y)
r2: E(x, y) -> N(y)
r3: E(x, y) -> x = y
"""

SIGMA_PLAIN = """
r1: P(x, y) -> exists z. E(x, z)
"""


@pytest.fixture
def deps_files(tmp_path):
    one = tmp_path / "sigma_ok.deps"
    one.write_text(SIGMA_OK)
    two = tmp_path / "sigma_plain.deps"
    two.write_text(SIGMA_PLAIN)
    return [str(one), str(two)]


def mask_table(text: str) -> str:
    """Mask the wall-clock column (the one nondeterministic field).

    The surrounding padding is swallowed too: a timing crossing a power
    of ten (9.9 → 10.2 ms on a slower machine) changes the column's
    digit count, and the golden must not care.
    """
    return re.sub(r"\s*\d+\.\d", " #.#", text)


def strip_jsonl(text: str) -> list[dict]:
    """Parse records and drop the volatile timing fields."""
    out = []
    for line in text.strip().splitlines():
        record = json.loads(line)
        record.pop("elapsed_ms", None)
        record.get("data", {}).pop("adn_ms", None)
        out.append(record)
    return out


def check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
    assert path.exists(), f"golden file {name} missing; regenerate with " \
        "REPRO_REGEN_GOLDEN=1"
    assert actual == path.read_text(), f"{name} drifted from its golden"


class TestFormats:
    def test_table_golden(self, deps_files, capsys):
        assert main(["batch", *deps_files]) == 0
        check_golden("batch_table.txt", mask_table(capsys.readouterr().out))

    def test_table_golden_warm(self, deps_files, capsys, tmp_path):
        """The cache column flips to 'cache' on the warm run — pinned by
        its own golden so provenance reporting cannot silently regress."""
        cache = str(tmp_path / "cache")
        assert main(["batch", *deps_files, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", *deps_files, "--cache-dir", cache]) == 0
        check_golden(
            "batch_table_warm.txt", mask_table(capsys.readouterr().out)
        )

    def test_jsonl_golden(self, deps_files, capsys):
        assert main(["batch", "--format", "jsonl", *deps_files]) == 0
        records = strip_jsonl(capsys.readouterr().out)
        actual = "\n".join(
            json.dumps(r, sort_keys=True) for r in records
        ) + "\n"
        check_golden("batch_jsonl.txt", actual)

    def test_jsonl_summary_goes_to_stderr(self, deps_files, capsys):
        main(["batch", "--format", "jsonl", *deps_files])
        captured = capsys.readouterr()
        assert "programs" in captured.err
        for line in captured.out.strip().splitlines():
            json.loads(line)  # stdout is pure JSONL

    def test_classify_mode_table_golden(self, deps_files, capsys):
        assert main([
            "batch", *deps_files, "--mode", "classify",
            "--criteria", "WA,SC,SwA",
        ]) == 0
        check_golden(
            "batch_classify_table.txt", mask_table(capsys.readouterr().out)
        )


class TestExitCodes:
    """0 — complete and trusted; 1 — incomplete; 2 — budget-tainted."""

    def test_zero_on_clean_run(self, deps_files):
        assert main(["batch", *deps_files]) == 0

    def test_two_on_budget_exhaustion(self, deps_files, capsys):
        code = main([
            "batch", deps_files[0], "--mode", "classify", "--budget-steps", "1",
        ])
        assert code == 2
        assert "[budget]" in capsys.readouterr().out

    def test_two_survives_the_cache(self, deps_files, tmp_path):
        """A warm rerun of a budget-tainted corpus must still exit 2:
        exhaustion is part of the cached record, not of the run."""
        cache = str(tmp_path / "cache")
        args = ["batch", deps_files[0], "--mode", "classify",
                "--budget-steps", "1", "--cache-dir", cache]
        assert main(args) == 2
        assert main(args) == 2

    def test_one_on_interrupted_run(self, deps_files, capsys, monkeypatch):
        """SIGINT mid-run surfaces as exit 1 (resume with the same
        cache).  The drain itself is engine behaviour (tested with a
        cancellation token in test_batch_cache.py); here the KeyboardInterrupt
        is injected at the first evaluation to pin the CLI contract."""
        import repro.batch.engine as engine

        def boom(payload):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine, "_evaluate_payload", boom)
        assert main(["batch", *deps_files]) == 1
        assert "INTERRUPTED" in capsys.readouterr().out

    def test_shard_runs_subset_and_exits_zero(self, deps_files, capsys):
        assert main(["batch", *deps_files, "--shard", "0/2"]) == 0
        assert main(["batch", *deps_files, "--shard", "1/2"]) == 0
        out = capsys.readouterr().out
        assert "in other shards" in out


class TestArgumentValidation:
    def test_files_and_corpus_are_exclusive(self, deps_files):
        with pytest.raises(SystemExit):
            main(["batch", *deps_files, "--corpus"])
        with pytest.raises(SystemExit):
            main(["batch"])

    def test_bad_shard_spec(self, deps_files):
        with pytest.raises(SystemExit):
            main(["batch", *deps_files, "--shard", "3"])
        with pytest.raises(SystemExit):
            main(["batch", *deps_files, "--shard", "2/2"])  # index ∉ [0, 2)

    def test_corpus_flag_smoke(self, capsys):
        assert main([
            "batch", "--corpus", "--corpus-scale", "0.03",
            "--corpus-tests-scale", "0.02", "--corpus-classes", "E1-10/G1-10",
            "--chase-steps", "300",
        ]) == 0
        assert "E1-10/G1-10#1" in capsys.readouterr().out
