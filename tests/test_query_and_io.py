"""Tests for the query (certain answers) and io (JSON) modules."""

import pytest

from repro.data import db_1, sigma_1, sigma_10
from repro.io import (
    SerialisationError,
    dependencies_from_json,
    dependencies_to_json,
    dumps,
    loads,
)
from repro.model import (
    Atom,
    Constant,
    Instance,
    Null,
    Variable,
    parse_dependencies,
    parse_facts,
)
from repro.query import (
    ChaseDidNotTerminate,
    ConjunctiveQuery,
    InconsistentTheory,
    UnionQuery,
    certain_answers,
    universal_model,
)

x, y = Variable("qx"), Variable("qy")
a = Constant("a")


class TestConjunctiveQuery:
    def test_evaluate(self):
        q = ConjunctiveQuery.make([Atom("E", (x, y))], [x, y])
        inst = parse_facts('E("a","b") E("b","c")')
        assert len(q.evaluate(inst)) == 2

    def test_join_query(self):
        q = ConjunctiveQuery.make(
            [Atom("E", (x, y)), Atom("N", (y,))], [x]
        )
        inst = parse_facts('E("a","b") N("b") E("c","d")')
        assert q.evaluate(inst) == {(Constant("b"),)} or q.evaluate(inst) == {(Constant("a"),)}
        # x is the E-source whose target is in N:
        assert q.evaluate(inst) == {(Constant("a"),)}

    def test_null_free_projection(self):
        q = ConjunctiveQuery.make([Atom("E", (x, y))], [y])
        inst = Instance([Atom("E", (a, Null(1))), Atom("E", (a, Constant("b")))])
        assert q.evaluate_null_free(inst) == {(Constant("b"),)}
        assert len(q.evaluate(inst)) == 2

    def test_boolean_query(self):
        q = ConjunctiveQuery.make([Atom("N", (x,))], [])
        assert q.is_boolean
        assert q.evaluate(parse_facts('N("a")')) == {()}
        assert q.evaluate(parse_facts('E("a","b")')) == set()

    def test_answer_var_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery.make([Atom("N", (x,))], [y])

    def test_str(self):
        q = ConjunctiveQuery.make([Atom("N", (x,))], [x], name="Members")
        assert str(q).startswith("Members(qx)")


class TestUnionQuery:
    def test_union(self):
        q1 = ConjunctiveQuery.make([Atom("A", (x,))], [x])
        q2 = ConjunctiveQuery.make([Atom("B", (x,))], [x])
        u = UnionQuery((q1, q2))
        inst = parse_facts('A("a") B("b")')
        assert u.evaluate(inst) == {(Constant("a"),), (Constant("b"),)}

    def test_arity_mismatch(self):
        q1 = ConjunctiveQuery.make([Atom("A", (x,))], [x])
        q2 = ConjunctiveQuery.make([Atom("E", (x, y))], [x, y])
        with pytest.raises(ValueError):
            UnionQuery((q1, q2))


class TestCertainAnswers:
    def test_sigma1_certain_answers(self):
        # The universal model of (D, Σ1) is {N(a), E(a,a)}: everything is
        # certain because the EGD grounded the null.
        q = ConjunctiveQuery.make([Atom("E", (x, y))], [x, y])
        answers = certain_answers(q, db_1(), sigma_1())
        assert answers == {(a, a)}

    def test_nulls_are_not_certain(self):
        sigma = parse_dependencies("r: P(x) -> exists y. E(x, y)")
        db = parse_facts('P("a")')
        q_pairs = ConjunctiveQuery.make([Atom("E", (x, y))], [x, y])
        assert certain_answers(q_pairs, db, sigma) == set()
        # ... but the boolean projection IS certain.
        q_bool = ConjunctiveQuery.make([Atom("E", (x, y))], [])
        assert certain_answers(q_bool, db, sigma) == {()}

    def test_nontermination_raises(self):
        q = ConjunctiveQuery.make([Atom("N", (x,))], [x])
        with pytest.raises(ChaseDidNotTerminate):
            certain_answers(q, parse_facts('N("a")'), sigma_10(), max_steps=200)

    def test_inconsistency_raises(self):
        sigma = parse_dependencies("r: E(x, y) -> x = y")
        with pytest.raises(InconsistentTheory):
            universal_model(parse_facts('E("a","b")'), sigma)


class TestJsonRoundTrip:
    def test_dependency_set_roundtrip(self):
        sigma = sigma_1()
        again = loads(dumps(sigma))
        assert again == sigma
        assert [d.label for d in again] == [d.label for d in sigma]

    def test_instance_roundtrip(self):
        inst = Instance(
            [Atom("E", (a, Null(3))), Atom("N", (Constant(7),))]
        )
        again = loads(dumps(inst))
        assert again.facts() == inst.facts()

    def test_existential_order_preserved(self):
        sigma = parse_dependencies("r: N(x) -> exists z, y. E(x, z, y)")
        again = dependencies_from_json(dependencies_to_json(sigma))
        assert again[0].existential == sigma[0].existential

    def test_bad_payloads(self):
        with pytest.raises(SerialisationError):
            loads('{"nope": []}')
        with pytest.raises(SerialisationError):
            dependencies_from_json({"dependencies": [{"kind": "what"}]})
        from repro.io import term_from_json

        with pytest.raises(SerialisationError):
            term_from_json({"var": "x", "const": 1})
