"""Property suite for the paper's criterion containment hierarchy.

Every edge of :data:`repro.analysis.classify.HIERARCHY_IMPLIES` (WA ⇒
SC/Str/CStr, SC ⇒ SR, CStr ⇒ SR, SR ⇒ IR, AC ⇒ LS, MSA ⇒ MFA) is checked
empirically on random programs, the paper's dependency sets and corpus
programs: whenever the implying criterion accepts *exactly*, the implied
criterion must accept.  This is the oracle that keeps the portfolio's
hierarchy-aware scheduling honest — the scheduler fills in exactly these
implications without running the implied criteria, so a violation here
would mean a fabricated verdict there.
"""

from __future__ import annotations

import pytest

from repro.analysis import classify
from repro.analysis.classify import HIERARCHY_IMPLIES, IMPLIES_CLOSURE
from repro.data import all_paper_sets
from repro.generators import generate_corpus, random_dependency_set

RANDOM_SEEDS = range(0, 60)


def _assert_containments(sigma, label):
    report = classify(sigma)  # full portfolio, no budgets: exact verdicts
    results = report.results
    for source, implied in HIERARCHY_IMPLIES.items():
        src = results[source]
        if not (src.accepted and src.exact):
            continue
        for target in implied:
            tgt = results[target]
            assert tgt.accepted, (
                f"{label}: {source} accepted (exactly) but {target} "
                f"rejected — containment {source} ⊆ {target} violated"
            )
    return report


class TestContainments:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_programs(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        _assert_containments(sigma, f"seed {seed}")

    def test_paper_sets(self):
        for name, sigma in all_paper_sets().items():
            _assert_containments(sigma, name)

    def test_corpus_programs(self):
        corpus = generate_corpus(scale=0.02, tests_scale=0.04, max_size=12)
        for ont in corpus[:10]:
            _assert_containments(ont.sigma, ont.name)


class TestClosure:
    def test_closure_is_transitive_and_irreflexive(self):
        for name, reachable in IMPLIES_CLOSURE.items():
            assert name not in reachable
            for mid in reachable:
                for far in IMPLIES_CLOSURE.get(mid, ()):
                    assert far in reachable, f"{name} ⇒ {mid} ⇒ {far} not closed"

    def test_wa_reaches_the_restriction_chain(self):
        assert {"SC", "SR", "IR", "Str", "CStr"} <= set(IMPLIES_CLOSURE["WA"])


class TestHierarchyScheduling:
    """Scheduling must only ever *fill in* what the full run would say."""

    @pytest.mark.parametrize("seed", [0, 2, 3, 7, 9, 36, 43])
    def test_hierarchy_run_matches_full_run(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        full = classify(sigma)
        scheduled = classify(sigma, hierarchy=True)
        assert [(n, r.accepted) for n, r in scheduled.results.items()] == [
            (n, r.accepted) for n, r in full.results.items()
        ]

    def test_implied_results_are_marked(self):
        from repro.data import sigma_3

        report = classify(sigma_3(), hierarchy=True)  # WA accepts Σ3
        assert report.results["WA"].accepted
        implied = [
            n for n, r in report.results.items() if "implied_by" in r.details
        ]
        assert "SC" in implied and "IR" in implied
        assert report.details["implied"] == len(implied)
        for name in implied:
            assert report.results[name].accepted
            assert report.results[name].elapsed_ms == 0.0

    def test_refutation_direction(self):
        # A program where IR rejects exactly: everything implying IR
        # (WA, SC, CStr, SR) must reject too, and a portfolio running IR
        # first fills them in as refuted.
        from repro.data import sigma_10

        full = classify(sigma_10())
        assert not full.results["IR"].accepted and full.results["IR"].exact
        scheduled = classify(
            sigma_10(), criteria=["IR", "WA", "SC", "SR"], hierarchy=True
        )
        for name in ("WA", "SC", "SR"):
            assert not scheduled.results[name].accepted
            assert scheduled.results[name].details.get("refuted_by") == "IR"

    def test_parallel_hierarchy_matches(self):
        sigma = random_dependency_set(3, n_deps=3, egd_fraction=0.3)
        full = classify(sigma)
        scheduled = classify(sigma, jobs=4, hierarchy=True)
        assert [(n, r.accepted) for n, r in scheduled.results.items()] == [
            (n, r.accepted) for n, r in full.results.items()
        ]
